//! Property-based tests on the core data structures and physical invariants,
//! spanning the floorplan, thermal, and metric crates.

use proptest::prelude::*;

use hotgauge_core::analysis::{AnalysisConfig, FrameAnalyzer};
use hotgauge_core::detect::{detect_hotspots, detect_hotspots_naive, HotspotParams};
use hotgauge_core::mltd::{mltd_field, mltd_field_naive};
use hotgauge_core::pipeline::{run_sim, SimConfig};
use hotgauge_core::series::{percentile, rms, BoxStats};
use hotgauge_core::severity::{peak_severity, SeverityParams};
use hotgauge_floorplan::grid::FloorplanGrid;
use hotgauge_floorplan::skylake::SkylakeProxy;
use hotgauge_floorplan::tech::TechNode;
use hotgauge_floorplan::unit::UnitKind;
use hotgauge_thermal::frame::ThermalFrame;
use hotgauge_thermal::model::ThermalModel;
use hotgauge_thermal::solver::CgConfig;
use hotgauge_thermal::stack::StackDescription;
use hotgauge_thermal::warmup::Warmup;

fn arb_node() -> impl Strategy<Value = TechNode> {
    prop_oneof![
        Just(TechNode::N14),
        Just(TechNode::N10),
        Just(TechNode::N7),
        Just(TechNode::N5),
    ]
}

fn arb_unit_kind() -> impl Strategy<Value = UnitKind> {
    prop::sample::select(UnitKind::CORE_KINDS.to_vec())
}

/// Deterministic xorshift temperature field `base + U[0, amp)`, so fields
/// with `base < 80 < base + amp` straddle the paper's `T_th`.
fn random_frame(nx: usize, ny: usize, seed: u64, base: f64, amp: f64) -> ThermalFrame {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let temps = (0..nx * ny)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            base + (x % 10_000) as f64 / 10_000.0 * amp
        })
        .collect();
    ThermalFrame::new(nx, ny, 100e-6, temps)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn floorplan_valid_under_any_scaling(
        node in arb_node(),
        kind in arb_unit_kind(),
        factor in 1.0f64..12.0,
        ic in 1.0f64..3.0,
    ) {
        let fp = SkylakeProxy::new(node)
            .scale_unit(kind, factor)
            .ic_area_factor(ic)
            .build();
        prop_assert!(fp.validate().is_ok());
        prop_assert_eq!(fp.core_count(), 7);
        // The scaled unit exists in every core.
        prop_assert_eq!(fp.units_of_kind(kind).count(), 7);
    }

    #[test]
    fn rasterized_power_is_conserved(
        node in arb_node(),
        cell_um in 120.0f64..600.0,
        seed in 0u64..1000,
    ) {
        let fp = SkylakeProxy::new(node).build();
        let grid = FloorplanGrid::rasterize(&fp, cell_um);
        let powers: Vec<f64> = (0..fp.units.len())
            .map(|i| ((i as u64 * 2654435761 + seed) % 100) as f64 / 50.0)
            .collect();
        let map = grid.power_map(&powers);
        let input: f64 = powers.iter().sum();
        let output: f64 = map.iter().sum();
        prop_assert!((input - output).abs() < 1e-6 * input.max(1.0));
        prop_assert!(map.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn severity_is_bounded_and_monotone(
        t in -20.0f64..200.0,
        m in 0.0f64..120.0,
        dt in 0.0f64..30.0,
        dm in 0.0f64..30.0,
    ) {
        let p = SeverityParams::cpu_default();
        let s = p.severity(t, m);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!(p.severity(t + dt, m) >= s - 1e-12);
        prop_assert!(p.severity(t, m + dm) >= s - 1e-12);
    }

    #[test]
    fn mltd_implementations_agree(
        nx in 5usize..30,
        ny in 5usize..30,
        r_cells in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut temps = Vec::with_capacity(nx * ny);
        for _ in 0..nx * ny {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            temps.push(40.0 + (x % 6000) as f64 / 100.0);
        }
        let frame = ThermalFrame::new(nx, ny, 100e-6, temps);
        let radius = r_cells as f64 * 100e-6;
        let a = mltd_field(&frame, radius);
        let b = mltd_field_naive(&frame, radius);
        for i in 0..a.len() {
            prop_assert!((a[i] - b[i]).abs() < 1e-9, "cell {}: {} vs {}", i, a[i], b[i]);
        }
        prop_assert!(a.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn thermal_steady_state_superposition(
        seed in 0u64..1000,
        scale in 0.1f64..4.0,
    ) {
        // Linearity: T(a·P) − T_amb = a · (T(P) − T_amb).
        let stack = StackDescription::client_cpu_with_border(8, 8, 500.0, 1e-3);
        let ambient = stack.ambient_c;
        let model = ThermalModel::new(stack);
        let mut x = seed | 1;
        let p1: Vec<f64> = (0..64)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 100) as f64 / 1000.0
            })
            .collect();
        let p2: Vec<f64> = p1.iter().map(|v| v * scale).collect();
        let cfg = CgConfig { tolerance: 1e-11, max_iterations: 100_000 };
        let (t1, s1) = model.steady_state(&p1, &cfg);
        let (t2, s2) = model.steady_state(&p2, &cfg);
        prop_assert!(s1.converged && s2.converged);
        for (a, b) in t1.iter().zip(&t2) {
            let rise1 = a - ambient;
            let rise2 = b - ambient;
            prop_assert!((rise2 - scale * rise1).abs() < 1e-4 * rise1.abs().max(1e-3));
        }
    }

    #[test]
    fn thermal_maximum_principle(seed in 0u64..1000) {
        // With non-negative power every node sits at or above ambient, and
        // the hottest node is in the heated (active) layer.
        let stack = StackDescription::client_cpu_with_border(8, 8, 500.0, 1e-3);
        let ambient = stack.ambient_c;
        let model = ThermalModel::new(stack);
        let mut x = seed | 1;
        let p: Vec<f64> = (0..64)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x % 50) as f64 / 500.0
            })
            .collect();
        let (t, stats) = model.steady_state(&p, &CgConfig::default());
        prop_assert!(stats.converged);
        prop_assert!(t.iter().all(|&v| v >= ambient - 1e-6));
        let frame = model.die_frame_of(&t);
        let global_max = t.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((frame.max() - global_max).abs() < 1e-6);
    }

    #[test]
    fn percentile_and_box_stats_are_order_statistics(
        mut data in prop::collection::vec(-1e3f64..1e3, 1..50),
    ) {
        let b = BoxStats::of(&data);
        data.sort_by(f64::total_cmp);
        prop_assert_eq!(b.min, data[0]);
        prop_assert_eq!(b.max, *data.last().unwrap());
        prop_assert!(b.min <= b.q1 && b.q1 <= b.median);
        prop_assert!(b.median <= b.q3 && b.q3 <= b.max);
        let p50 = percentile(&data, 50.0);
        prop_assert!(p50 >= b.min && p50 <= b.max);
    }

    #[test]
    fn rms_bounds(data in prop::collection::vec(0.0f64..1.0, 1..50)) {
        let r = rms(&data);
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let max = data.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(r >= mean - 1e-12, "RMS {} below mean {}", r, mean);
        prop_assert!(r <= max + 1e-12, "RMS {} above max {}", r, max);
    }

    #[test]
    fn fused_analysis_is_bit_identical_to_references(
        nx in 8usize..40,
        ny in 8usize..40,
        r_cells in 0usize..6,
        seed in 0u64..10_000,
        base in 55.0f64..79.0,
        amp in 2.0f64..60.0,
    ) {
        // Fields straddle 80 °C whenever base + amp crosses it, so both
        // prefilter branches and partially-hot frames are exercised.
        let frame = random_frame(nx, ny, seed, base, amp);
        let radius = r_cells as f64 * 100e-6;
        let params = HotspotParams { radius_m: radius, ..HotspotParams::paper_default() };
        let sev = SeverityParams::cpu_default();
        let mut az = FrameAnalyzer::new(params, sev, 1);
        let a = az.analyze(&frame);

        // MLTD field: bitwise against both the deque reference and the
        // naive disc scan (all three take the min over the same multiset).
        let fast = mltd_field(&frame, radius);
        let naive = mltd_field_naive(&frame, radius);
        prop_assert_eq!(az.mltd(), &fast[..]);
        for (i, (f, n)) in az.mltd().iter().zip(&naive).enumerate() {
            prop_assert!(
                f.to_bits() == n.to_bits(),
                "cell {}: fused {} vs naive {}", i, f, n
            );
        }

        // Hotspots: bitwise against the candidate detector, and every fused
        // hotspot appears bit-for-bit in the all-pixel naive sweep (which is
        // a superset: it does not apply the local-maximum candidate filter).
        let reference = detect_hotspots(&frame, &params, &sev);
        prop_assert_eq!(&a.hotspots, &reference);
        let naive_spots = detect_hotspots_naive(&frame, &params, &sev);
        for h in &a.hotspots {
            prop_assert!(
                naive_spots.iter().any(|n| n.ix == h.ix
                    && n.iy == h.iy
                    && n.temp_c.to_bits() == h.temp_c.to_bits()
                    && n.mltd_c.to_bits() == h.mltd_c.to_bits()
                    && n.severity.to_bits() == h.severity.to_bits()),
                "fused hotspot at ({}, {}) missing from the naive sweep", h.ix, h.iy
            );
        }

        // Folds: bitwise against the unfused full-grid reductions.
        let max_m = fast.iter().cloned().fold(0.0f64, f64::max);
        prop_assert_eq!(a.max_mltd_c.to_bits(), max_m.to_bits());
        let ps = peak_severity(&sev, &frame.temps, &fast);
        prop_assert_eq!(a.peak_severity.to_bits(), ps.to_bits());
    }

    #[test]
    fn sharded_analysis_is_bit_identical_to_serial(
        seed in 0u64..10_000,
        threads in 2usize..5,
        base in 60.0f64..85.0,
    ) {
        // 110×96 = 10 560 cells clears the sharding floor, so an explicit
        // thread request genuinely splits the rows even on small machines.
        let frame = random_frame(110, 96, seed, base, 40.0);
        let params = HotspotParams::paper_default();
        let sev = SeverityParams::cpu_default();
        let mut serial = FrameAnalyzer::new(params, sev, 1);
        let mut sharded = FrameAnalyzer::new(params, sev, threads);
        let a = serial.analyze(&frame);
        let b = sharded.analyze(&frame);
        prop_assert_eq!(a, b);
        prop_assert_eq!(serial.mltd(), sharded.mltd());
    }

    #[test]
    fn prefilter_is_exact_for_hotspot_detection(
        nx in 8usize..30,
        ny in 8usize..30,
        r_cells in 0usize..5,
        seed in 0u64..10_000,
        base in 50.0f64..90.0,
    ) {
        let frame = random_frame(nx, ny, seed, base, 25.0);
        let frame_max = frame.temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let params = HotspotParams {
            radius_m: r_cells as f64 * 100e-6,
            ..HotspotParams::paper_default()
        };
        let sev = SeverityParams::cpu_default();
        let mut az = FrameAnalyzer::new(params, sev, 1);
        let a = az.analyze_with_max(&frame, frame_max, true);
        if a.prefiltered {
            // Skipping is only legal when Definition 1 guarantees emptiness.
            prop_assert!(frame_max <= params.t_threshold_c);
            prop_assert!(a.hotspots.is_empty());
            prop_assert!(detect_hotspots(&frame, &params, &sev).is_empty());
        } else {
            prop_assert!(frame_max > params.t_threshold_c);
            let mut full = FrameAnalyzer::new(params, sev, 1);
            prop_assert_eq!(a, full.analyze(&frame));
        }
    }
}

proptest! {
    // Run-level parity is expensive (two full co-simulations per case).
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn overlapped_cosim_reproduces_serial_run_exactly(
        seed in 0u64..64,
        bench in prop::sample::select(vec!["hmmer", "povray", "gcc"]),
    ) {
        let mut serial = SimConfig::new(TechNode::N7, bench);
        serial.cell_um = 400.0;
        serial.border_mm = 1.0;
        serial.substeps = 1;
        serial.sample_instrs = 4_000;
        serial.max_time_s = 1e-3;
        serial.seed = seed;
        serial.warmup = Warmup::Cold;
        serial.analysis = AnalysisConfig { threads: 1, overlap: false, prefilter: true };
        let mut overlapped = serial.clone();
        overlapped.analysis = AnalysisConfig { threads: 2, overlap: true, prefilter: true };
        let a = run_sim(serial);
        let b = run_sim(overlapped);
        prop_assert_eq!(&a.records, &b.records);
        prop_assert_eq!(a.tuh_s, b.tuh_s);
        prop_assert_eq!(&a.census, &b.census);
        prop_assert_eq!(&a.sev_series, &b.sev_series);
        prop_assert_eq!(&a.final_frame, &b.final_frame);
        prop_assert_eq!(a.total_instructions, b.total_instructions);
    }
}
