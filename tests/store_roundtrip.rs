//! Differential snapshot suite for the content-addressed result store.
//!
//! The contract under test (`hotgauge-store`): a persisted run reads back
//! **bit-identically** through a freshly opened store; content keys are a
//! pure function of the value tree (invariant under field reordering and
//! re-serialization, stable across processes — pinned by golden literals);
//! any single-field mutation of the simulation input changes the key (no
//! collisions over the mutation corpus); and a tampered snapshot is never
//! served — it is quarantined and counted as a miss.

use std::collections::HashSet;
use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use hotgauge_core::pipeline::{run_sim, RunResult, SimConfig};
use hotgauge_floorplan::tech::TechNode;
use hotgauge_store::{canonical_string, key_of_value, run_key, ResultStore};
use hotgauge_thermal::warmup::Warmup;
use serde::Value;

/// A scratch store root unique to this test process and tag.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hotgauge-rt-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Full bit-level equality of two runs, config included (`SimConfig` has no
/// `PartialEq`; its canonical JSON form is compared instead).
fn assert_same_run(a: &RunResult, b: &RunResult) {
    assert_eq!(
        serde_json::to_string(&a.config).unwrap(),
        serde_json::to_string(&b.config).unwrap()
    );
    assert_eq!(a.records, b.records);
    assert_eq!(a.tuh_s, b.tuh_s);
    assert_eq!(a.census, b.census);
    assert_eq!(a.delta_hist, b.delta_hist);
    assert_eq!(a.total_instructions, b.total_instructions);
    assert_eq!(a.final_frame, b.final_frame);
    assert_eq!(a.sev_series, b.sev_series);
}

/// The fully pinned config behind the golden key literal: every field the
/// mutation corpus touches is set explicitly, so the corpus mutates known
/// base values.
fn pinned_cfg() -> SimConfig {
    let mut c = SimConfig::new(TechNode::N7, "hmmer");
    c.cell_um = 300.0;
    c.border_mm = 1.0;
    c.substeps = 1;
    c.sample_instrs = 8_000;
    c.max_time_s = 5e-4;
    c.warmup = Warmup::Cold;
    c.seed = 7;
    c.target_core = 2;
    c
}

fn with(base: &SimConfig, f: impl FnOnce(&mut SimConfig)) -> SimConfig {
    let mut c = base.clone();
    f(&mut c);
    c
}

/// Cheap config variety for the proptest cases (all at the fast fidelity
/// the sweep-equivalence suite uses).
fn cfg_from_entropy(bits: u64) -> SimConfig {
    let benches = ["hmmer", "povray", "gcc"];
    let mut c = pinned_cfg();
    c.benchmark = benches[(bits % 3) as usize].to_owned();
    c.seed = (bits >> 2) % 8;
    c.target_core = ((bits >> 5) % 3) as usize;
    c.cell_um = [300.0, 360.0][((bits >> 7) % 2) as usize];
    c.node = if (bits >> 8) & 1 == 0 {
        TechNode::N7
    } else {
        TechNode::N10
    };
    c
}

/// Recursively reverses the entry order of every JSON object in the tree —
/// the adversarial re-serialization canonicalization must undo.
fn reverse_maps(v: &Value) -> Value {
    match v {
        Value::Map(entries) => Value::Map(
            entries
                .iter()
                .rev()
                .map(|(k, val)| (k.clone(), reverse_maps(val)))
                .collect(),
        ),
        Value::Seq(items) => Value::Seq(items.iter().map(reverse_maps).collect()),
        other => other.clone(),
    }
}

proptest! {
    // Each case simulates one run; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(3))]

    // The headline roundtrip: persist a real simulation result, reopen the
    // store (a fresh process, as far as the on-disk state can tell), and
    // read the run back bit-for-bit under full verification.
    #[test]
    fn store_roundtrip_is_bit_identical(bits in 0u64..u64::MAX) {
        let cfg = cfg_from_entropy(bits);
        let want = run_sim(cfg.clone());
        let key = run_key(&cfg);
        // The recorded config must key identically to the submitted one,
        // or verification on read-back would quarantine our own writes.
        prop_assert_eq!(run_key(&want.config), key.clone());

        let root = scratch(&format!("roundtrip-{bits:x}"));
        let mut store = ResultStore::open(&root).unwrap();
        store.put(&key, &want).unwrap();
        store.flush().unwrap();
        prop_assert_eq!(store.stats().writes, 1);
        drop(store);

        let mut reopened = ResultStore::open(&root).unwrap();
        prop_assert!(reopened.contains(&key), "flushed index must list the key");
        let got = reopened.get(&key).expect("a verified snapshot must be served");
        assert_same_run(&got, &want);
        let stats = reopened.stats();
        prop_assert_eq!((stats.hits, stats.misses, stats.quarantined), (1, 0, 0));
        let _ = fs::remove_dir_all(&root);
    }

    // Keys are a pure function of the value: re-serializing through text
    // and reversing every object's field order never changes them.
    #[test]
    fn key_is_invariant_under_reserialization_and_field_order(bits in 0u64..u64::MAX) {
        let cfg = cfg_from_entropy(bits);
        let v = serde_json::to_value(&cfg);
        let k = key_of_value(&v);
        let text = serde_json::to_string(&cfg).unwrap();
        let reparsed: Value = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(key_of_value(&reparsed), k.clone());
        let reversed = reverse_maps(&v);
        prop_assert_eq!(key_of_value(&reversed), k.clone());
        // And the full run key (domain + config + profile) is deterministic.
        prop_assert_eq!(run_key(&cfg), run_key(&cfg.clone()));
    }
}

/// Every single-field mutation of the simulation input must move the key,
/// and no two mutations may collide — a stale snapshot served after any of
/// these edits would be a wrong result, not a slow one.
#[test]
fn single_field_mutations_all_change_the_key() {
    let base = pinned_cfg();
    let mutations: Vec<(&str, SimConfig)> = vec![
        (
            "benchmark",
            with(&base, |c| c.benchmark = "povray".to_owned()),
        ),
        ("node", with(&base, |c| c.node = TechNode::N10)),
        ("target_core", with(&base, |c| c.target_core = 3)),
        ("warmup", with(&base, |c| c.warmup = Warmup::Idle)),
        ("cell_um", with(&base, |c| c.cell_um = 320.0)),
        ("border_mm", with(&base, |c| c.border_mm = 1.5)),
        ("substeps", with(&base, |c| c.substeps = 2)),
        ("sample_instrs", with(&base, |c| c.sample_instrs = 9_000)),
        (
            "max_instructions",
            with(&base, |c| c.max_instructions = 1_000_000),
        ),
        ("max_time_s", with(&base, |c| c.max_time_s = 6e-4)),
        ("seed", with(&base, |c| c.seed = 8)),
        ("ic_area_factor", with(&base, |c| c.ic_area_factor = 1.5)),
        (
            "stop_at_first_hotspot",
            with(&base, |c| c.stop_at_first_hotspot = true),
        ),
        (
            "background_idle",
            with(&base, |c| c.background_idle = !c.background_idle),
        ),
        (
            "detect.t_threshold_c",
            with(&base, |c| c.detect.t_threshold_c = 75.0),
        ),
        (
            "detect.mltd_threshold_c",
            with(&base, |c| c.detect.mltd_threshold_c = 9.0),
        ),
        ("analysis.threads", with(&base, |c| c.analysis.threads = 5)),
        ("solver_threads", with(&base, |c| c.solver_threads = 3)),
        (
            "track_units",
            with(&base, |c| c.track_units.push("L2".to_owned())),
        ),
    ];
    let base_key = run_key(&base);
    let mut seen: HashSet<String> = HashSet::new();
    seen.insert(base_key.as_hex().to_owned());
    for (name, mutated) in &mutations {
        let key = run_key(mutated);
        assert_ne!(key, base_key, "mutating {name} did not change the key");
        assert!(
            seen.insert(key.as_hex().to_owned()),
            "key collision on mutation {name}"
        );
    }
    assert_eq!(seen.len(), mutations.len() + 1);
}

/// Golden canonical-text and key literals for a fixed value tree: the key
/// derivation (canonicalization + 128-bit FNV-1a) must produce these exact
/// strings in every process on every platform. A mismatch means the
/// derivation changed — bump [`hotgauge_store::KEY_DOMAIN`] and re-pin.
#[test]
fn golden_value_key_is_pinned() {
    let v = Value::Map(vec![
        ("zeta".to_owned(), Value::F64(5.0)),
        (
            "alpha".to_owned(),
            Value::Seq(vec![Value::I64(-1), Value::Null]),
        ),
        ("mid".to_owned(), Value::Str("a\"b".to_owned())),
        ("tiny".to_owned(), Value::F64(1.25e-4)),
        ("neg".to_owned(), Value::F64(-0.0)),
    ]);
    assert_eq!(
        canonical_string(&v),
        r#"{"alpha":[-1,null],"mid":"a\"b","neg":0,"tiny":0.000125,"zeta":5}"#
    );
    assert_eq!(
        key_of_value(&v).as_hex(),
        "49545647d618fd3d7d03c2cb3b4dcf64"
    );
}

/// Golden run-key literal for the fully pinned config: cross-process key
/// stability is the property that lets one machine's store serve another
/// machine's sweep. A mismatch here means either the key derivation or the
/// config/profile schema changed; both legitimately invalidate old stores,
/// so re-pin after bumping [`hotgauge_store::KEY_DOMAIN`].
#[test]
fn golden_run_key_is_pinned() {
    assert_eq!(
        run_key(&pinned_cfg()).as_hex(),
        "521f003a2db7132dadad30db7ea2636a"
    );
}

/// A snapshot whose embedded config was tampered with on disk fails the
/// recomputed-key check: it is quarantined, never served, and the lookup
/// counts as a miss — corruption costs a re-simulation, never correctness.
#[test]
fn tampered_snapshot_is_quarantined_not_served() {
    let cfg = pinned_cfg();
    let want = run_sim(cfg.clone());
    let key = run_key(&cfg);
    let root = scratch("tamper");
    let mut store = ResultStore::open(&root).unwrap();
    store.put(&key, &want).unwrap();
    store.flush().unwrap();
    let path = store.object_path(&key);
    drop(store);

    // Flip the stored seed: the object still parses and still sits at its
    // addressed path, so only the recomputed content key can catch it.
    let text = fs::read_to_string(&path).unwrap();
    let tampered = text.replacen("\"seed\": 7", "\"seed\": 8", 1);
    assert_ne!(tampered, text, "tamper target not found in snapshot text");
    fs::write(&path, tampered).unwrap();

    let mut reopened = ResultStore::open(&root).unwrap();
    assert!(
        reopened.get(&key).is_none(),
        "a tampered snapshot was served"
    );
    let stats = reopened.stats();
    assert_eq!((stats.hits, stats.misses, stats.quarantined), (0, 1, 1));
    assert!(
        !path.exists(),
        "tampered object must leave the objects tree"
    );
    assert!(
        root.join("quarantine").join(format!("{key}.json")).exists(),
        "tampered object must land in quarantine/"
    );
    let _ = fs::remove_dir_all(&root);
}
