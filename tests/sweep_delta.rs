//! Differential delta-sweep suite for the store-fronted executor.
//!
//! The contract under test (`hotgauge_store::run_many_stored_with`): a
//! sweep over a warm store serves every unchanged run from disk and the
//! served results are **bit-identical** to a storeless sweep; delta mode
//! re-simulates *exactly* the keys outside the basis (asserted through the
//! store's hit/miss/write counters) and never serves a key the basis does
//! not contain, even when the store happens to hold it; and a torn
//! snapshot is detected, quarantined, and re-simulated, leaving the final
//! results bit-identical to a from-scratch run.
//!
//! All tests share one process-wide gate: the telemetry recorder is global,
//! so the counter-mirror check must not interleave with other store
//! traffic in this binary.

use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use hotgauge_core::pipeline::{RunResult, SimConfig};
use hotgauge_core::run_many_batched_with;
use hotgauge_floorplan::tech::TechNode;
use hotgauge_store::{run_many_stored_with, sweep_key, DeltaBasis, ResultStore, RunSource};
use hotgauge_thermal::warmup::Warmup;

static GATE: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

const THREADS: usize = 2;
const BATCH: usize = 4;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hotgauge-delta-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The sweep grid every test runs: two benchmarks × two seeds at the fast
/// fidelity the sweep-equivalence suite uses, in a fixed order
/// `[hmmer/0, hmmer/1, gcc/0, gcc/1]` the subset assertions index into.
fn grid() -> Vec<SimConfig> {
    let mut cfgs = Vec::new();
    for (b, core) in [("hmmer", 0usize), ("gcc", 2)] {
        for seed in [0u64, 1] {
            let mut c = SimConfig::new(TechNode::N7, b);
            c.cell_um = 300.0;
            c.border_mm = 1.0;
            c.substeps = 1;
            c.sample_instrs = 8_000;
            c.max_time_s = 5e-4;
            c.warmup = Warmup::Cold;
            c.target_core = core;
            c.seed = seed;
            cfgs.push(c);
        }
    }
    cfgs
}

/// Full bit-level equality of two runs, config included (`SimConfig` has no
/// `PartialEq`; its canonical JSON form is compared instead).
fn assert_same_run(a: &RunResult, b: &RunResult) {
    assert_eq!(
        serde_json::to_string(&a.config).unwrap(),
        serde_json::to_string(&b.config).unwrap()
    );
    assert_eq!(a.records, b.records);
    assert_eq!(a.tuh_s, b.tuh_s);
    assert_eq!(a.census, b.census);
    assert_eq!(a.delta_hist, b.delta_hist);
    assert_eq!(a.total_instructions, b.total_instructions);
    assert_eq!(a.final_frame, b.final_frame);
    assert_eq!(a.sev_series, b.sev_series);
}

/// The headline differential: a fresh store misses (and persists) every
/// run; a second pass through a *reopened* store — all the next process
/// would see is the on-disk state — serves every run, bit-identical to the
/// storeless executor.
#[test]
fn warm_store_serves_every_run_bit_identically() {
    let _g = lock();
    let cfgs = grid();
    let want = run_many_batched_with(cfgs.clone(), THREADS, BATCH, None);

    let root = scratch("warm");
    let mut store = ResultStore::open(&root).unwrap();
    let pass1 = run_many_stored_with(cfgs.clone(), THREADS, BATCH, &mut store, None, None).unwrap();
    let s1 = pass1.stats;
    assert_eq!(
        (s1.hits, s1.misses, s1.writes, s1.quarantined),
        (0, 4, 4, 0)
    );
    assert!(pass1.sources.iter().all(|&s| s == RunSource::Simulated));
    for (g, w) in pass1.results.iter().zip(&want) {
        assert_same_run(g, w);
    }
    drop(store);

    let mut store = ResultStore::open(&root).unwrap();
    assert_eq!(store.len(), 4, "flushed index must list every run");
    let pass2 = run_many_stored_with(cfgs.clone(), THREADS, BATCH, &mut store, None, None).unwrap();
    let s2 = pass2.stats;
    assert_eq!(
        (s2.hits, s2.misses, s2.writes, s2.quarantined),
        (4, 0, 0, 0)
    );
    assert!(pass2.sources.iter().all(|&s| s == RunSource::Store));
    for (g, w) in pass2.results.iter().zip(&want) {
        assert_same_run(g, w);
    }
    // Keys are stable across the two store sessions and match the
    // effective-config keys the sweep layer derives.
    assert_eq!(pass1.keys, pass2.keys);
    for (key, cfg) in pass1.keys.iter().zip(&cfgs) {
        assert_eq!(key, &sweep_key(cfg, THREADS));
    }
    let _ = fs::remove_dir_all(&root);
}

/// Delta mode re-simulates exactly the mutated subset: after mutating a
/// strict subset of the grid, a delta sweep against the previous index
/// serves the unchanged runs and re-simulates the mutated ones — counted
/// exactly by hits/misses/writes — and the merged results are bit-identical
/// to a from-scratch sweep of the mutated grid.
#[test]
fn delta_resimulates_exactly_the_mutated_subset() {
    let _g = lock();
    let cfgs = grid();
    let root = scratch("subset");
    let mut store = ResultStore::open(&root).unwrap();
    run_many_stored_with(cfgs.clone(), THREADS, BATCH, &mut store, None, None).unwrap();
    drop(store);

    let basis = DeltaBasis::from_index_file(&root).unwrap();
    assert_eq!(basis.len(), 4);

    // Mutate runs 1 and 3 (one per benchmark); 0 and 2 stay unchanged.
    let mut mutated = cfgs.clone();
    mutated[1].seed += 10;
    mutated[3].seed += 10;
    let want = run_many_batched_with(mutated.clone(), THREADS, BATCH, None);

    let mut store = ResultStore::open(&root).unwrap();
    let outcome = run_many_stored_with(
        mutated.clone(),
        THREADS,
        BATCH,
        &mut store,
        Some(&basis),
        None,
    )
    .unwrap();
    let s = outcome.stats;
    assert_eq!((s.hits, s.misses, s.writes, s.quarantined), (2, 2, 2, 0));
    assert_eq!(
        outcome.sources,
        vec![
            RunSource::Store,
            RunSource::Simulated,
            RunSource::Store,
            RunSource::Simulated,
        ]
    );
    for (g, w) in outcome.results.iter().zip(&want) {
        assert_same_run(g, w);
    }
    // The mutated keys left the basis (that is *why* they re-simulated).
    assert!(basis.contains(&outcome.keys[0]) && basis.contains(&outcome.keys[2]));
    assert!(!basis.contains(&outcome.keys[1]) && !basis.contains(&outcome.keys[3]));
    let _ = fs::remove_dir_all(&root);
}

/// Delta mode never serves a key outside the basis even when the store
/// holds a perfectly valid snapshot for it: those runs re-simulate (and
/// re-persist), keeping "what the previous sweep covered" authoritative.
#[test]
fn delta_ignores_stored_keys_outside_the_basis() {
    let _g = lock();
    let cfgs = grid();
    let root = scratch("outside");
    let mut store = ResultStore::open(&root).unwrap();
    let full = run_many_stored_with(cfgs.clone(), THREADS, BATCH, &mut store, None, None).unwrap();

    // A basis covering only the first two keys, though the store has all 4.
    let basis = DeltaBasis::from_keys(full.keys[..2].iter().cloned());
    let outcome =
        run_many_stored_with(cfgs.clone(), THREADS, BATCH, &mut store, Some(&basis), None).unwrap();
    let s = outcome.stats;
    assert_eq!((s.hits, s.misses, s.writes, s.quarantined), (2, 2, 2, 0));
    assert_eq!(
        outcome.sources,
        vec![
            RunSource::Store,
            RunSource::Store,
            RunSource::Simulated,
            RunSource::Simulated,
        ]
    );
    for (g, w) in outcome.results.iter().zip(&full.results) {
        assert_same_run(g, w);
    }
    let _ = fs::remove_dir_all(&root);
}

/// Crash safety: a torn (truncated) snapshot is detected on read, moved to
/// quarantine, re-simulated, and re-persisted — and the sweep's results
/// stay bit-identical to the first pass throughout.
#[test]
fn torn_snapshot_is_quarantined_and_resimulated() {
    let _g = lock();
    let cfgs = grid();
    let root = scratch("torn");
    let mut store = ResultStore::open(&root).unwrap();
    let pass1 = run_many_stored_with(cfgs.clone(), THREADS, BATCH, &mut store, None, None).unwrap();

    // Tear run 2's snapshot in half, as a crash mid-write (without the
    // atomic rename protocol) would have.
    let victim = pass1.keys[2].clone();
    let path = store.object_path(&victim);
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    drop(store);

    let mut store = ResultStore::open(&root).unwrap();
    let pass2 = run_many_stored_with(cfgs.clone(), THREADS, BATCH, &mut store, None, None).unwrap();
    let s = pass2.stats;
    assert_eq!((s.hits, s.misses, s.writes, s.quarantined), (3, 1, 1, 1));
    assert_eq!(
        pass2.sources,
        vec![
            RunSource::Store,
            RunSource::Store,
            RunSource::Simulated,
            RunSource::Store,
        ]
    );
    for (g, w) in pass2.results.iter().zip(&pass1.results) {
        assert_same_run(g, w);
    }
    assert!(
        root.join("quarantine")
            .join(format!("{victim}.json"))
            .exists(),
        "the torn object must land in quarantine/"
    );

    // The re-persisted snapshot verifies: a third session serves it again.
    drop(store);
    let mut store = ResultStore::open(&root).unwrap();
    let healed = store
        .get(&victim)
        .expect("re-persisted snapshot must serve");
    assert_same_run(&healed, &pass1.results[2]);
    let _ = fs::remove_dir_all(&root);
}

/// The `store.*` telemetry counters mirror the session's `StoreStats`
/// exactly across a miss pass and a hit pass.
// hotgauge-lint: allow(L002, "this test reads the recorder's snapshot API directly, which only exists under the feature; the facade macros cannot gate a whole #[test] fn")
#[cfg(feature = "telemetry")]
#[test]
fn store_counters_mirror_session_stats() {
    let _g = lock();
    let cfgs: Vec<SimConfig> = grid().into_iter().take(2).collect();
    let root = scratch("counters");
    let before = hotgauge_telemetry::snapshot();
    let mut store = ResultStore::open(&root).unwrap();
    run_many_stored_with(cfgs.clone(), THREADS, BATCH, &mut store, None, None).unwrap();
    run_many_stored_with(cfgs, THREADS, BATCH, &mut store, None, None).unwrap();
    let after = hotgauge_telemetry::snapshot();

    let total = |snap: &hotgauge_telemetry::Snapshot, label: &str| {
        snap.counter(label).map_or(0.0, |c| c.total)
    };
    let delta = |label: &str| total(&after, label) - total(&before, label);
    let stats = store.stats();
    assert_eq!(
        (stats.hits, stats.misses, stats.writes, stats.quarantined),
        (2, 2, 2, 0)
    );
    assert_eq!(delta("store.hits"), stats.hits as f64);
    assert_eq!(delta("store.misses"), stats.misses as f64);
    assert_eq!(delta("store.writes"), stats.writes as f64);
    assert_eq!(delta("store.quarantined"), 0.0);
    let _ = fs::remove_dir_all(&root);
}
