//! End-to-end integration tests: the full perf → power → thermal → metrics
//! pipeline across crates, at reduced fidelity.

use hotgauge_core::pipeline::{run_many, run_sim, SimConfig};
use hotgauge_floorplan::tech::TechNode;
use hotgauge_thermal::warmup::Warmup;

fn tiny(node: TechNode, bench: &str) -> SimConfig {
    let mut cfg = SimConfig::new(node, bench);
    cfg.cell_um = 300.0;
    cfg.border_mm = 1.5;
    cfg.substeps = 1;
    cfg.sample_instrs = 8_000;
    cfg.max_time_s = 2e-3;
    cfg.warmup = Warmup::Idle;
    cfg
}

#[test]
fn seven_nm_runs_hotter_than_fourteen() {
    let r14 = run_sim(tiny(TechNode::N14, "povray"));
    let r7 = run_sim(tiny(TechNode::N7, "povray"));
    let max14 = r14.records.iter().map(|r| r.max_temp_c).fold(0.0, f64::max);
    let max7 = r7.records.iter().map(|r| r.max_temp_c).fold(0.0, f64::max);
    assert!(
        max7 > max14 + 5.0,
        "7nm should run much hotter: {max7} vs {max14}"
    );
    let mltd14 = r14.records.iter().map(|r| r.max_mltd_c).fold(0.0, f64::max);
    let mltd7 = r7.records.iter().map(|r| r.max_mltd_c).fold(0.0, f64::max);
    assert!(mltd7 > mltd14, "7nm MLTD should exceed 14nm");
}

#[test]
fn compute_dense_workload_beats_memory_bound_on_severity() {
    // Both may saturate to severity 1.0 at 7 nm eventually, so compare the
    // RMS of the severity series (the paper's own whole-run summary).
    let hot = run_sim(tiny(TechNode::N7, "povray"));
    let cold = run_sim(tiny(TechNode::N7, "lbm"));
    assert!(
        hot.rms_severity() > cold.rms_severity(),
        "povray {} vs lbm {}",
        hot.rms_severity(),
        cold.rms_severity()
    );
}

#[test]
fn total_power_is_physically_plausible() {
    // Chip power at the turbo operating point should be tens of watts — in
    // the neighborhood of the Table IV TDPs — not zero and not kilowatts.
    for node in [TechNode::N14, TechNode::N7] {
        let r = run_sim(tiny(node, "bzip2"));
        let p = r.records.last().unwrap().power_w;
        assert!((10.0..120.0).contains(&p), "{node:?}: {p} W");
    }
}

#[test]
fn leakage_feedback_grows_power_as_die_heats() {
    let mut cfg = tiny(TechNode::N7, "hmmer");
    cfg.max_time_s = 3e-3;
    cfg.warmup = Warmup::Cold;
    let r = run_sim(cfg);
    let first = r.records.first().unwrap().power_w;
    let last = r.records.last().unwrap().power_w;
    assert!(
        last > first,
        "temperature-dependent leakage should raise power: {first} -> {last}"
    );
}

#[test]
fn instruction_budget_counts_up() {
    let r = run_sim(tiny(TechNode::N7, "gcc"));
    // 10 windows of 1M cycles at IPC ~0.3-2 -> millions of instructions.
    assert!(r.total_instructions > 500_000);
    assert!(r.total_instructions < 50_000_000);
}

#[test]
fn stop_at_first_hotspot_truncates_run() {
    let mut cfg = tiny(TechNode::N7, "povray");
    cfg.max_time_s = 20e-3;
    cfg.stop_at_first_hotspot = true;
    let r = run_sim(cfg.clone());
    if let Some(tuh) = r.tuh_s {
        let last = r.records.last().unwrap().time_s;
        assert!(
            (last - tuh).abs() < 1e-9,
            "run should end at the first hotspot: {last} vs {tuh}"
        );
    }
}

#[test]
fn tuh_is_the_first_detection_time() {
    let mut cfg = tiny(TechNode::N7, "namd");
    cfg.max_time_s = 5e-3;
    let r = run_sim(cfg);
    match r.tuh_s {
        Some(tuh) => {
            let first_with_hotspot = r
                .records
                .iter()
                .find(|rec| rec.hotspot_count > 0)
                .expect("tuh implies a hotspot record");
            assert!((first_with_hotspot.time_s - tuh).abs() < 1e-12);
            // No earlier record has hotspots.
            for rec in &r.records {
                if rec.time_s < tuh {
                    assert_eq!(rec.hotspot_count, 0);
                }
            }
        }
        None => {
            assert!(r.records.iter().all(|rec| rec.hotspot_count == 0));
        }
    }
}

#[test]
fn severity_series_matches_records() {
    let r = run_sim(tiny(TechNode::N7, "sjeng"));
    assert_eq!(r.sev_series.len(), r.records.len());
    for (rec, (&t, &v)) in r
        .records
        .iter()
        .zip(r.sev_series.times_s.iter().zip(&r.sev_series.values))
    {
        assert_eq!(rec.time_s, t);
        assert_eq!(rec.peak_severity, v);
        assert!((0.0..=1.0).contains(&v));
    }
}

#[test]
fn parked_background_is_cooler_than_idle_background() {
    let mut idle = tiny(TechNode::N7, "gcc");
    idle.max_time_s = 1e-3;
    let mut parked = idle.clone();
    parked.background_idle = false;
    let ri = run_sim(idle);
    let rp = run_sim(parked);
    assert!(
        ri.records.last().unwrap().mean_temp_c > rp.records.last().unwrap().mean_temp_c,
        "background tasks should warm the die"
    );
}

#[test]
fn run_many_equals_sequential_runs() {
    let cfgs = vec![tiny(TechNode::N7, "hmmer"), tiny(TechNode::N14, "hmmer")];
    let parallel = run_many(cfgs.clone(), 2);
    let sequential: Vec<_> = cfgs.into_iter().map(run_sim).collect();
    for (p, s) in parallel.iter().zip(&sequential) {
        assert_eq!(p.records.len(), s.records.len());
        assert_eq!(
            p.records.last().unwrap().max_temp_c,
            s.records.last().unwrap().max_temp_c
        );
    }
}

#[test]
fn different_cores_give_different_thermal_outcomes() {
    let mut a = tiny(TechNode::N7, "gobmk");
    a.max_time_s = 3e-3;
    let mut b = a.clone();
    b.target_core = 3;
    let ra = run_sim(a);
    let rb = run_sim(b);
    // Core 0 (die corner) vs core 3 (die center) must not be identical.
    let ta = ra.records.last().unwrap().max_temp_c;
    let tb = rb.records.last().unwrap().max_temp_c;
    assert!(
        (ta - tb).abs() > 0.05,
        "core placement should matter: {ta} vs {tb}"
    );
}
