//! Differential sweep-equivalence suite for the work-stealing executor.
//!
//! The contract under test (`hotgauge_core::sweep`): running a batch of
//! configurations through the pooled executor — at any pool width, any
//! lockstep batch width, with any arena state — produces **bit-identical,
//! order-preserving** results to running each configuration through the
//! serial `run_sim` path, with the sweep's serial-forcing rule applied to
//! `AnalysisConfig` whenever more than one thread is requested. Proptest
//! generates heterogeneous batches (mixed benchmarks, nodes, grid
//! geometries, seeds, analysis strategies) so the arenas see both cache
//! hits and geometry churn, and the lockstep grouper sees full batches,
//! stragglers, and singleton geometries that fall back to the per-run path.
//!
//! All tests share one process-wide gate: the telemetry recorder is global,
//! so the counter-invariant checks must not interleave with other sweeps in
//! this binary.

use std::fs;
use std::io::Cursor;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

use proptest::prelude::*;

use hotgauge_core::analysis::AnalysisConfig;
use hotgauge_core::experiments::Fidelity;
use hotgauge_core::pipeline::{run_many, run_sim, RunResult, SimConfig};
use hotgauge_core::{run_many_batched_with, run_sim_in, SweepArena};
use hotgauge_floorplan::tech::TechNode;
use hotgauge_store::{
    run_many_keyed_with, run_many_stored_with, serve, DeltaBasis, ResultStore, RunSource,
    ServeOptions, SweepRow, ROW_SCHEMA_VERSION,
};
use hotgauge_thermal::warmup::Warmup;
use serde::Value;

static GATE: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Full bit-level equality of two runs, config included (`SimConfig` has no
/// `PartialEq`; its canonical JSON form is compared instead).
fn assert_same_run(a: &RunResult, b: &RunResult) {
    assert_eq!(
        serde_json::to_string(&a.config).unwrap(),
        serde_json::to_string(&b.config).unwrap()
    );
    assert_eq!(a.records, b.records);
    assert_eq!(a.tuh_s, b.tuh_s);
    assert_eq!(a.census, b.census);
    assert_eq!(a.delta_hist, b.delta_hist);
    assert_eq!(a.total_instructions, b.total_instructions);
    assert_eq!(a.final_frame, b.final_frame);
    assert_eq!(a.sev_series, b.sev_series);
}

fn base_cfg(benchmark: &str) -> SimConfig {
    let mut c = SimConfig::new(TechNode::N7, benchmark);
    c.cell_um = 300.0;
    c.border_mm = 1.0;
    c.substeps = 1;
    c.sample_instrs = 8_000;
    c.max_time_s = 5e-4;
    c.warmup = Warmup::Cold;
    c
}

/// Heterogeneous sweep entries: SPEC proxies and server traces over several
/// geometries (so arenas hit, miss, and evict), varying seeds, target cores,
/// substep counts, and analysis strategies (so serial-forcing matters).
/// Every dimension is sliced deterministically out of one entropy word.
fn cfg_from_entropy(bits: u64) -> SimConfig {
    let benches = ["hmmer", "povray", "gcc", "server_web", "server_kv"];
    let mut c = base_cfg(benches[(bits % 5) as usize]);
    c.cell_um = [300.0, 360.0, 420.0][((bits >> 3) % 3) as usize];
    c.node = if (bits >> 5) & 1 == 0 {
        TechNode::N7
    } else {
        TechNode::N10
    };
    c.seed = (bits >> 8) % 8;
    c.target_core = ((bits >> 11) % 3) as usize;
    c.substeps = 1 + ((bits >> 13) % 2) as usize;
    c.analysis = AnalysisConfig {
        threads: 2,
        overlap: (bits >> 15) & 1 == 1,
        prefilter: true,
    };
    // Triangular-sweep shard budget: results are bit-identical at every
    // setting, so the differential references below stay valid whichever
    // value a case draws (0 = auto).
    c.solver_threads = [1, 0, 2, 4][((bits >> 17) % 4) as usize];
    c
}

proptest! {
    // Each case runs every config five times (two references + three pool
    // widths); keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(3))]

    // The headline differential: old-path serial reference vs the pool at
    // widths 1, 2, and 8, on proptest-generated heterogeneous batches.
    #[test]
    fn pool_matches_serial_reference_at_all_widths(
        entropy in prop::collection::vec(0u64..u64::MAX, 2..5),
    ) {
        let _g = lock();
        let cfgs: Vec<SimConfig> = entropy.into_iter().map(cfg_from_entropy).collect();
        // Width 1 never serial-forces, wider pools always do (the rule keys
        // on the requested budget); both references come from the serial
        // `run_sim` path the executor replaced.
        let ref_plain: Vec<RunResult> = cfgs.iter().cloned().map(run_sim).collect();
        let ref_serial: Vec<RunResult> = cfgs
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.analysis = c.analysis.serial();
                run_sim(c)
            })
            .collect();
        for width in [1usize, 2, 8] {
            let got = run_many(cfgs.clone(), width);
            let want = if width == 1 { &ref_plain } else { &ref_serial };
            prop_assert_eq!(got.len(), cfgs.len());
            for (g, w) in got.iter().zip(want) {
                assert_same_run(g, w);
            }
        }
    }

    // The lockstep differential: explicit batch widths (full batches,
    // stragglers, singleton-geometry fallbacks — whatever the generated
    // geometry mix produces) against the same serial `run_sim` reference.
    // `threads = 1` exercises batching *without* the serial-forcing rule,
    // the path the existing width sweep above never takes.
    #[test]
    fn lockstep_batches_match_serial_reference_at_all_widths(
        entropy in prop::collection::vec(0u64..u64::MAX, 2..5),
    ) {
        let _g = lock();
        let cfgs: Vec<SimConfig> = entropy.into_iter().map(cfg_from_entropy).collect();
        let ref_plain: Vec<RunResult> = cfgs.iter().cloned().map(run_sim).collect();
        for batch in [2usize, 3, 8] {
            let got = run_many_batched_with(cfgs.clone(), 1, batch, None);
            prop_assert_eq!(got.len(), cfgs.len());
            for (g, w) in got.iter().zip(&ref_plain) {
                assert_same_run(g, w);
            }
        }
    }

    // The solver-threads differential: the level-scheduled triangular
    // sweeps (and their CG-fallback bypass) must leave every run bitwise
    // unchanged at any shard budget, serial reference at 1.
    #[test]
    fn solver_threads_never_change_results(
        entropy in prop::collection::vec(0u64..u64::MAX, 1..3),
    ) {
        let _g = lock();
        for bits in entropy {
            let mut cfg = cfg_from_entropy(bits);
            cfg.solver_threads = 1;
            let want = run_sim(cfg.clone());
            for threads in [0usize, 2, 4] {
                let mut c = cfg.clone();
                c.solver_threads = threads;
                let got = run_sim(c);
                // The config JSON differs only in the knob itself; compare
                // the physics outputs bit-for-bit.
                prop_assert_eq!(&got.records, &want.records);
                prop_assert_eq!(got.tuh_s, want.tuh_s);
                prop_assert_eq!(&got.final_frame, &want.final_frame);
                prop_assert_eq!(got.total_instructions, want.total_instructions);
            }
        }
    }

    // A dirty arena (random geometry churn from preceding runs) never
    // changes a result: every run equals the same run on a fresh arena.
    #[test]
    fn dirty_arena_is_bitwise_equal_to_fresh_arena(
        entropy in prop::collection::vec(0u64..u64::MAX, 3..6),
    ) {
        let _g = lock();
        let cfgs: Vec<SimConfig> = entropy.into_iter().map(cfg_from_entropy).collect();
        let mut arena = SweepArena::new();
        for cfg in cfgs {
            let dirty = run_sim_in(cfg.clone(), &mut arena);
            let fresh = run_sim_in(cfg, &mut SweepArena::new());
            assert_same_run(&dirty, &fresh);
        }
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hotgauge-eq-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

proptest! {
    // Each case runs up to five sweeps over the same batch; keep it low.
    #![proptest_config(ProptestConfig::with_cases(2))]

    // The store dimension of the equivalence contract: keyed-storeless,
    // fresh-store, warm-store, delta-with-full-basis, and
    // delta-with-empty-basis sweeps are all bit-identical to the plain
    // pooled executor on proptest-generated heterogeneous batches.
    #[test]
    fn store_and_delta_dimensions_never_change_results(
        entropy in prop::collection::vec(0u64..u64::MAX, 2..4),
    ) {
        let _g = lock();
        let cfgs: Vec<SimConfig> = entropy.iter().copied().map(cfg_from_entropy).collect();
        let n = cfgs.len();
        let want = run_many_batched_with(cfgs.clone(), 2, 8, None);
        let root = scratch(&format!("dims-{:x}", entropy[0]));
        let mut store = ResultStore::open(&root).unwrap();

        // Storeless-but-keyed (the `hotgauge sweep` path without --store).
        let keyed = run_many_keyed_with(cfgs.clone(), 2, 8, None);
        prop_assert_eq!(keyed.stats.lookups(), 0);
        for (g, w) in keyed.results.iter().zip(&want) {
            assert_same_run(g, w);
        }

        // Fresh store: everything simulates, then persists.
        let pass1 = run_many_stored_with(cfgs.clone(), 2, 8, &mut store, None, None).unwrap();
        prop_assert!(pass1.sources.iter().all(|&s| s == RunSource::Simulated));
        prop_assert_eq!(&pass1.keys, &keyed.keys);
        for (g, w) in pass1.results.iter().zip(&want) {
            assert_same_run(g, w);
        }

        // Warm store: everything serves from disk.
        let pass2 = run_many_stored_with(cfgs.clone(), 2, 8, &mut store, None, None).unwrap();
        prop_assert!(pass2.sources.iter().all(|&s| s == RunSource::Store));
        for (g, w) in pass2.results.iter().zip(&want) {
            assert_same_run(g, w);
        }

        // Delta, full basis from the flushed index: still all served.
        let basis = DeltaBasis::from_index_file(&root).unwrap();
        let pass3 =
            run_many_stored_with(cfgs.clone(), 2, 8, &mut store, Some(&basis), None).unwrap();
        prop_assert!(pass3.sources.iter().all(|&s| s == RunSource::Store));
        for (g, w) in pass3.results.iter().zip(&want) {
            assert_same_run(g, w);
        }

        // Delta, empty basis: everything re-simulates, still identical.
        let empty = DeltaBasis::from_keys(std::iter::empty());
        let pass4 =
            run_many_stored_with(cfgs.clone(), 2, 8, &mut store, Some(&empty), None).unwrap();
        prop_assert!(pass4.sources.iter().all(|&s| s == RunSource::Simulated));
        prop_assert_eq!(pass4.stats.misses, n as u64);
        for (g, w) in pass4.results.iter().zip(&want) {
            assert_same_run(g, w);
        }
        let _ = fs::remove_dir_all(&root);
    }
}

/// The NDJSON serve loop: every output line — row or error — is
/// independently parseable and schema-tagged, batches flush on blank
/// lines, malformed lines reject without killing the session, and a warm
/// replay returns rows identical to the fresh pass except for provenance.
#[test]
fn serve_streams_schema_tagged_ndjson_rows() {
    let _g = lock();
    let fid = Fidelity {
        cell_um: 350.0,
        border_mm: 1.0,
        substeps: 1,
        sample_instrs: 5_000,
        max_time_s: 5e-4,
        threads: 2,
        batch: 8,
        solver_threads: 2,
    };
    let opts = ServeOptions::from_fidelity(fid);
    let root = scratch("serve");
    let mut store = ResultStore::open(&root).unwrap();

    let input = concat!(
        "{\"benchmark\":\"hmmer\"}\n",
        "{\"benchmark\":\"gcc\",\"seed\":3}\n",
        "\n",
        "not json\n",
        "{\"benchmark\":\"povray\",\"core\":1}\n",
    );
    let mut out = Vec::new();
    let summary = serve(Cursor::new(input), &mut out, &mut store, &opts, None).unwrap();
    assert_eq!((summary.batches, summary.rows, summary.rejected), (2, 3, 1));

    let lines: Vec<&str> = std::str::from_utf8(&out).unwrap().lines().collect();
    assert_eq!(lines.len(), 4, "2 rows + 1 error line + 1 row");
    for line in &lines {
        let v: Value = serde_json::from_str(line).expect("every line parses on its own");
        let Value::Map(entries) = v else {
            panic!("every line is a JSON object");
        };
        let tag = entries
            .iter()
            .find(|(k, _)| k == "schema_version")
            .map(|(_, v)| v.clone());
        assert_eq!(tag, Some(Value::U64(u64::from(ROW_SCHEMA_VERSION))));
    }
    // Lines 0-1: the first batch, in request order. Line 2: the rejected
    // raw line's error. Line 3: the second batch.
    let rows: Vec<SweepRow> = [lines[0], lines[1], lines[3]]
        .iter()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(rows[0].benchmark, "hmmer");
    assert_eq!((rows[0].seq, rows[0].total), (1, 2));
    assert_eq!(rows[1].benchmark, "gcc");
    assert_eq!((rows[1].seq, rows[1].seed), (2, 3));
    assert_eq!(rows[2].benchmark, "povray");
    assert_eq!((rows[2].seq, rows[2].total, rows[2].target_core), (1, 1, 1));
    assert!(rows.iter().all(|r| r.source == "sim"));
    assert!(lines[2].contains("\"error\""));

    // Warm replay of the first batch: identical rows, store provenance.
    let mut out2 = Vec::new();
    let replay = "{\"benchmark\":\"hmmer\"}\n{\"benchmark\":\"gcc\",\"seed\":3}\n";
    let summary2 = serve(Cursor::new(replay), &mut out2, &mut store, &opts, None).unwrap();
    assert_eq!((summary2.rows, summary2.stats.hits), (2, 2));
    let replayed: Vec<SweepRow> = std::str::from_utf8(&out2)
        .unwrap()
        .lines()
        .map(|l| serde_json::from_str(l).unwrap())
        .collect();
    assert_eq!(replayed.len(), 2);
    for (fresh, warm) in rows[..2].iter().zip(&replayed) {
        assert_eq!(warm.source, "store");
        let mut warm_as_sim = warm.clone();
        warm_as_sim.source = "sim".to_owned();
        assert_eq!(&warm_as_sim, fresh, "served row differs from fresh row");
    }
    let _ = fs::remove_dir_all(&root);
}

/// Results come back in input order regardless of which worker ran what,
/// so downstream manifests keep their deterministic row order.
#[test]
fn results_keep_input_order_on_a_wide_pool() {
    let _g = lock();
    let benches = [
        "hmmer",
        "povray",
        "gcc",
        "server_web",
        "server_kv",
        "server_analytics",
    ];
    let cfgs: Vec<SimConfig> = benches
        .iter()
        .enumerate()
        .map(|(i, b)| {
            let mut c = base_cfg(b);
            c.seed = i as u64;
            c.cell_um = if i % 2 == 0 { 300.0 } else { 400.0 };
            c
        })
        .collect();
    let rs = run_many(cfgs.clone(), 8);
    assert_eq!(rs.len(), cfgs.len());
    for (r, c) in rs.iter().zip(&cfgs) {
        assert_eq!(r.config.benchmark, c.benchmark);
        assert_eq!(r.config.seed, c.seed);
        assert_eq!(r.config.cell_um, c.cell_um);
    }
}

/// The batch-shape edge cases: empty batches return cleanly for any
/// `--threads` value (including auto), and pools wider than the job count
/// behave like exactly-sized ones.
#[test]
fn degenerate_batch_shapes() {
    let _g = lock();
    for threads in [0usize, 1, 3, 64] {
        assert!(run_many(Vec::new(), threads).is_empty());
    }
    let single = run_many(vec![base_cfg("hmmer")], 64);
    assert_eq!(single.len(), 1);
    assert_eq!(single[0].config.benchmark, "hmmer");
    let two = run_many(vec![base_cfg("hmmer"), base_cfg("povray")], 64);
    assert_eq!(two.len(), 2);
    assert_eq!(two[0].config.benchmark, "hmmer");
    assert_eq!(two[1].config.benchmark, "povray");
}

/// Per-lane stop and prefilter behaviour inside a lockstep batch: a lane
/// that trips its hotspot threshold stops early (a straggler the rest of
/// the batch keeps running past), a prefiltered sub-threshold stop lane
/// skips its per-substep analysis, and a lane whose geometry matches no one
/// falls back to the classic per-run path — all bit-identical to serial.
#[test]
fn lockstep_stop_prefilter_and_fallback_lanes_match_serial() {
    let _g = lock();
    // Lane 0: thresholds low enough to fire mid-run (early-stop straggler).
    let mut hot = base_cfg("hmmer");
    hot.stop_at_first_hotspot = true;
    hot.detect.t_threshold_c = 48.0;
    hot.detect.mltd_threshold_c = 0.05;
    hot.analysis.prefilter = true;
    // Lane 1: stop mode at the paper's 80 °C — never fires, so the
    // prefilter skips every substep's analysis for this lane alone.
    let mut cold_stop = base_cfg("povray");
    cold_stop.stop_at_first_hotspot = true;
    cold_stop.analysis.prefilter = true;
    // Lanes 2-3: plain full-horizon runs sharing the batch.
    let mut plain_a = base_cfg("gcc");
    plain_a.seed = 3;
    let plain_b = base_cfg("server_web");
    // Lane 4: unique geometry — a singleton group, per-run fallback.
    let mut odd_geom = base_cfg("server_kv");
    odd_geom.cell_um = 420.0;
    let cfgs = vec![hot, cold_stop, plain_a, plain_b, odd_geom];
    let want: Vec<RunResult> = cfgs.iter().cloned().map(run_sim).collect();
    assert!(
        want[0].tuh_s.is_some() && want[0].records.len() < want[2].records.len(),
        "premise: lane 0 must stop early while its batch mates run on"
    );
    assert!(
        want[1].tuh_s.is_none(),
        "premise: lane 1 must stay sub-threshold so its prefilter engages"
    );
    let got = run_many_batched_with(cfgs, 1, 8, None);
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(&want) {
        assert_same_run(g, w);
    }
}

/// Executor telemetry is self-consistent: every scheduled job completes
/// exactly once, steals never exceed work items, lockstep batches account
/// for every run they carry, and same-geometry batches reuse arenas for
/// all but each worker's first item.
// hotgauge-lint: allow(L002, "this test reads the recorder's snapshot API directly, which only exists under the feature; the facade macros cannot gate a whole #[test] fn")
#[cfg(feature = "telemetry")]
#[test]
fn executor_telemetry_counters_are_consistent() {
    let _g = lock();
    const JOBS: usize = 6;
    const WIDTH: usize = 3;
    const BATCH: usize = 2;
    // One geometry, so the lockstep grouper chunks all six runs into three
    // width-2 batch items; the realized pool is capped by hardware, items,
    // and the requested width exactly as the executor computes it.
    const ITEMS: usize = JOBS / BATCH;
    let workers = hotgauge_core::pool_workers(WIDTH, JOBS).clamp(1, ITEMS);
    let cfgs: Vec<SimConfig> = (0..JOBS)
        .map(|i| {
            let mut c = base_cfg("hmmer");
            c.seed = i as u64;
            c
        })
        .collect();
    let before = hotgauge_telemetry::snapshot();
    let rs = run_many_batched_with(cfgs, WIDTH, BATCH, None);
    let after = hotgauge_telemetry::snapshot();
    assert_eq!(rs.len(), JOBS);

    let total = |snap: &hotgauge_telemetry::Snapshot, label: &str| {
        snap.counter(label).map_or(0.0, |c| c.total)
    };
    let delta = |label: &str| total(&after, label) - total(&before, label);
    assert_eq!(delta("sweep.jobs"), JOBS as f64);
    assert_eq!(delta("sweep.completions"), JOBS as f64);
    // Every run went through a lockstep batch, and batch widths sum to the
    // run count (three full width-2 batches).
    assert_eq!(delta("solver.lockstep_runs"), JOBS as f64);
    assert_eq!(delta("solver.batch_width"), JOBS as f64);
    let steals = delta("sweep.steal");
    assert!(
        (0.0..=ITEMS as f64).contains(&steals),
        "steals {steals} out of range"
    );
    // One geometry: each worker misses its arena at most once, and only
    // lane 0 of each batch item touches the arena at all.
    let reuse = delta("sweep.arena_reuse");
    assert!(
        ((ITEMS - workers) as f64..=(ITEMS - 1) as f64).contains(&reuse),
        "arena reuse {reuse} out of range for {workers} worker(s)"
    );
    let span_calls =
        |snap: &hotgauge_telemetry::Snapshot| snap.span("sweep.executor").map_or(0, |s| s.calls);
    assert_eq!(span_calls(&after) - span_calls(&before), 1);
}
