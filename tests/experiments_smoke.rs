//! Smoke tests for the experiment runners at miniature fidelity: every
//! figure harness must execute end-to-end and produce structurally sound
//! output.

use hotgauge_core::experiments::{
    fig11_fold, fig11_tuh_per_benchmark, fig12_location_census, fig2_delta_distributions,
    fig8_warmup_runs, fig9_mltd_series, sec5b_grid, sec5b_ic_scaling, tuh_grid, Fidelity,
};
use hotgauge_core::run_many_batched_with;
use hotgauge_floorplan::tech::TechNode;
use hotgauge_telemetry::manifest::{RunManifest, StoreManifest, SCHEMA_VERSION};
use hotgauge_thermal::warmup::Warmup;

fn mini() -> Fidelity {
    Fidelity {
        cell_um: 350.0,
        border_mm: 1.0,
        substeps: 1,
        sample_instrs: 5_000,
        max_time_s: 1.2e-3,
        threads: 2,
        batch: 8,
        solver_threads: 2,
    }
}

#[test]
fn fig11_runner_shapes() {
    let rows = fig11_tuh_per_benchmark(&mini(), Warmup::Idle, &["hmmer", "lbm"], &[0, 3]);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].0, "hmmer");
    assert_eq!(rows[0].1.len(), 2);
}

#[test]
fn fig9_runner_produces_series_per_core() {
    let out = fig9_mltd_series(&mini(), &[TechNode::N7], &[0, 6], 1e-3);
    assert_eq!(out.len(), 2);
    for (node, core, ts) in &out {
        assert_eq!(*node, TechNode::N7);
        assert!([0usize, 6].contains(core));
        assert!(!ts.is_empty());
        assert!(ts.values.iter().all(|&v| v >= 0.0));
    }
}

#[test]
fn fig12_census_aggregates() {
    let census = fig12_location_census(&mini(), &["povray"], &[0]);
    // At miniature fidelity hotspots may or may not appear; the census must
    // simply be well-formed.
    let ranked = census.ranked();
    let sum: u64 = ranked.iter().map(|(_, c)| c).sum();
    assert_eq!(sum, census.total());
}

#[test]
fn fig2_histograms_cover_both_nodes() {
    let rows = fig2_delta_distributions(&mini(), "bzip2", 1e-3);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].0, TechNode::N14);
    assert_eq!(rows[1].0, TechNode::N7);
    for (_, edges, counts) in &rows {
        assert_eq!(edges.len(), counts.len() + 1);
        assert!(counts.iter().sum::<usize>() > 0);
    }
}

#[test]
fn fig8_records_histograms_for_both_warmups() {
    let runs = fig8_warmup_runs(&mini(), 1e-3);
    assert_eq!(runs.len(), 2);
    assert_eq!(runs[0].config.warmup, Warmup::Cold);
    assert_eq!(runs[1].config.warmup, Warmup::Idle);
    for r in &runs {
        assert!(r.records.iter().all(|rec| rec.temp_hist.is_some()));
    }
}

#[test]
fn tuh_grid_is_benchmark_major_and_stop_flagged() {
    let fid = mini();
    let benchmarks = ["hmmer", "lbm"];
    let cores = [0usize, 3, 6];
    let grid = tuh_grid(&fid, TechNode::N7, Warmup::Idle, &benchmarks, &cores);
    assert_eq!(grid.len(), benchmarks.len() * cores.len());
    for (i, cfg) in grid.iter().enumerate() {
        assert_eq!(cfg.benchmark, benchmarks[i / cores.len()]);
        assert_eq!(cfg.target_core, cores[i % cores.len()]);
        assert!(cfg.stop_at_first_hotspot);
        assert_eq!(cfg.warmup, Warmup::Idle);
        assert_eq!(cfg.node, TechNode::N7);
        assert_eq!(cfg.cell_um, fid.cell_um);
    }
}

#[test]
fn sec5b_grid_interleaves_baseline_and_factor_runs() {
    let fid = mini();
    let benchmarks = ["povray", "gcc"];
    let factors = [1.5, 2.5];
    let grid = sec5b_grid(&fid, &benchmarks, &factors, 1e-3);
    let stride = 1 + factors.len();
    assert_eq!(grid.len(), benchmarks.len() * stride);
    for (bi, b) in benchmarks.iter().enumerate() {
        let block = &grid[bi * stride..(bi + 1) * stride];
        assert_eq!(block[0].node, TechNode::N14);
        assert_eq!(block[0].ic_area_factor, 1.0);
        for (j, f) in factors.iter().enumerate() {
            assert_eq!(block[1 + j].node, TechNode::N7);
            assert_eq!(block[1 + j].ic_area_factor, *f);
        }
        for cfg in block {
            assert_eq!(&cfg.benchmark, b);
            assert_eq!(cfg.max_time_s, 1e-3);
        }
    }
}

/// Routing the exposed grid through the executor and folding must equal the
/// one-call runner — the decomposition the store-fronted sweep relies on.
#[test]
fn fig11_grid_plus_fold_composes_to_the_runner() {
    let fid = mini();
    let benchmarks = ["hmmer"];
    let cores = [0usize, 3];
    let grid = tuh_grid(&fid, TechNode::N7, Warmup::Idle, &benchmarks, &cores);
    let results = run_many_batched_with(grid, fid.threads, fid.batch, None);
    let folded = fig11_fold(&results, &benchmarks, &cores);
    let direct = fig11_tuh_per_benchmark(&fid, Warmup::Idle, &benchmarks, &cores);
    assert_eq!(folded, direct);
}

/// The manifest schema is at v3 with the optional store block, and the
/// block round-trips bit-for-bit.
#[test]
fn manifest_schema_is_v3_with_optional_store_block() {
    assert_eq!(SCHEMA_VERSION, 3);
    let mut m = RunManifest::new("smoke");
    assert!(m.store.is_none());
    let text = serde_json::to_string(&m).unwrap();
    assert!(
        text.starts_with("{\"schema_version\":3,"),
        "manifest must lead with its schema version: {text}"
    );
    m.store = Some(StoreManifest {
        hits: 3,
        misses: 1,
        writes: 1,
        quarantined: 0,
        hit_rate: 0.75,
    });
    let back: RunManifest = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
    let store = back.store.expect("store block must survive a round trip");
    assert_eq!(
        (store.hits, store.misses, store.writes, store.quarantined),
        (3, 1, 1, 0)
    );
    assert!((store.hit_rate - 0.75).abs() < 1e-12);
}

#[test]
fn sec5b_sweep_is_monotone_enough() {
    let rows = sec5b_ic_scaling(&mini(), &["povray"], &[1.5, 2.5], 1.2e-3);
    assert_eq!(rows.len(), 1);
    let (_, target, sweep, _) = &rows[0];
    assert!(*target >= 0.0);
    assert_eq!(sweep.len(), 2);
    // More area never increases RMS severity.
    assert!(sweep[1].1 <= sweep[0].1 + 1e-9);
}
