//! Smoke tests for the experiment runners at miniature fidelity: every
//! figure harness must execute end-to-end and produce structurally sound
//! output.

use hotgauge_core::experiments::{
    fig11_tuh_per_benchmark, fig12_location_census, fig2_delta_distributions, fig8_warmup_runs,
    fig9_mltd_series, sec5b_ic_scaling, Fidelity,
};
use hotgauge_floorplan::tech::TechNode;
use hotgauge_thermal::warmup::Warmup;

fn mini() -> Fidelity {
    Fidelity {
        cell_um: 350.0,
        border_mm: 1.0,
        substeps: 1,
        sample_instrs: 5_000,
        max_time_s: 1.2e-3,
        threads: 2,
        batch: 8,
        solver_threads: 2,
    }
}

#[test]
fn fig11_runner_shapes() {
    let rows = fig11_tuh_per_benchmark(&mini(), Warmup::Idle, &["hmmer", "lbm"], &[0, 3]);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].0, "hmmer");
    assert_eq!(rows[0].1.len(), 2);
}

#[test]
fn fig9_runner_produces_series_per_core() {
    let out = fig9_mltd_series(&mini(), &[TechNode::N7], &[0, 6], 1e-3);
    assert_eq!(out.len(), 2);
    for (node, core, ts) in &out {
        assert_eq!(*node, TechNode::N7);
        assert!([0usize, 6].contains(core));
        assert!(!ts.is_empty());
        assert!(ts.values.iter().all(|&v| v >= 0.0));
    }
}

#[test]
fn fig12_census_aggregates() {
    let census = fig12_location_census(&mini(), &["povray"], &[0]);
    // At miniature fidelity hotspots may or may not appear; the census must
    // simply be well-formed.
    let ranked = census.ranked();
    let sum: u64 = ranked.iter().map(|(_, c)| c).sum();
    assert_eq!(sum, census.total());
}

#[test]
fn fig2_histograms_cover_both_nodes() {
    let rows = fig2_delta_distributions(&mini(), "bzip2", 1e-3);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].0, TechNode::N14);
    assert_eq!(rows[1].0, TechNode::N7);
    for (_, edges, counts) in &rows {
        assert_eq!(edges.len(), counts.len() + 1);
        assert!(counts.iter().sum::<usize>() > 0);
    }
}

#[test]
fn fig8_records_histograms_for_both_warmups() {
    let runs = fig8_warmup_runs(&mini(), 1e-3);
    assert_eq!(runs.len(), 2);
    assert_eq!(runs[0].config.warmup, Warmup::Cold);
    assert_eq!(runs[1].config.warmup, Warmup::Idle);
    for r in &runs {
        assert!(r.records.iter().all(|rec| rec.temp_hist.is_some()));
    }
}

#[test]
fn sec5b_sweep_is_monotone_enough() {
    let rows = sec5b_ic_scaling(&mini(), &["povray"], &[1.5, 2.5], 1.2e-3);
    assert_eq!(rows.len(), 1);
    let (_, target, sweep, _) = &rows[0];
    assert!(*target >= 0.0);
    assert_eq!(sweep.len(), 2);
    // More area never increases RMS severity.
    assert!(sweep[1].1 <= sweep[0].1 + 1e-9);
}
