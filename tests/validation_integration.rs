//! Validation-layer integration: the Table III / Table IV / §II-A shapes the
//! paper uses to establish trust in the models.

use hotgauge_core::experiments::{benchmark_cdyn_nf, sec2a_power_density, table4_rows};
use hotgauge_floorplan::tech::TechNode;
use hotgauge_power::validation::silicon_cdyn;

#[test]
fn cdyn_is_in_table3_neighborhood() {
    // Every validation benchmark's model C_dyn must be within 50% of the
    // published silicon value (the paper's own model was within 37%).
    for bench in hotgauge_workloads::spec2006::VALIDATION_BENCHMARKS {
        for node in [TechNode::N14, TechNode::N10] {
            let model = benchmark_cdyn_nf(bench, node);
            let si = silicon_cdyn(bench, node).unwrap();
            let err = (model - si).abs() / si;
            assert!(
                err < 0.5,
                "{bench}@{node:?}: model {model:.2} vs silicon {si:.2} ({:.0}% off)",
                err * 100.0
            );
        }
    }
}

#[test]
fn cdyn_orders_compute_intensity() {
    // The FP compute-dense benchmarks must have higher effective C_dyn than
    // the stall-heavy pointer chaser, as in Table III.
    let omnetpp = benchmark_cdyn_nf("omnetpp", TechNode::N14);
    let povray = benchmark_cdyn_nf("povray", TechNode::N14);
    let hmmer = benchmark_cdyn_nf("hmmer", TechNode::N14);
    assert!(povray > omnetpp, "povray {povray} vs omnetpp {omnetpp}");
    assert!(hmmer > omnetpp, "hmmer {hmmer} vs omnetpp {omnetpp}");
}

#[test]
fn cdyn_scales_down_with_node() {
    for bench in ["bzip2", "gcc"] {
        let c14 = benchmark_cdyn_nf(bench, TechNode::N14);
        let c10 = benchmark_cdyn_nf(bench, TechNode::N10);
        let ratio = c10 / c14;
        assert!(
            (ratio - 0.8).abs() < 0.05,
            "{bench}: C_dyn node scaling {ratio}, expected ~0.8"
        );
    }
}

#[test]
fn table4_shape_holds() {
    let rows = table4_rows(400.0);
    // Ψ monotonically increases as the die shrinks; TDP decreases.
    assert!(rows[0].1.psi_c_per_w < rows[1].1.psi_c_per_w);
    assert!(rows[1].1.psi_c_per_w < rows[2].1.psi_c_per_w);
    assert!(rows[0].1.tdp_w > rows[1].1.tdp_w);
    assert!(rows[1].1.tdp_w > rows[2].1.tdp_w);
    // 14 nm is calibrated to the paper's 0.96 C/W.
    assert!(
        (rows[0].1.psi_c_per_w - 0.96).abs() < 0.15,
        "14nm psi {}",
        rows[0].1.psi_c_per_w
    );
    // TDP magnitudes are tens of watts, like the paper's 43-63 W.
    for (_, r) in &rows {
        assert!((15.0..90.0).contains(&r.tdp_w), "TDP {}", r.tdp_w);
    }
}

#[test]
fn sec2a_shape_holds() {
    let rows = sec2a_power_density();
    // Power decreases ~linearly; density increases; 7nm crosses 8 W/mm².
    assert!(rows[0].core_power_w > rows[1].core_power_w);
    assert!(rows[1].core_power_w > rows[2].core_power_w);
    assert!(rows[2].core_density_w_mm2 > rows[1].core_density_w_mm2);
    assert!(rows[1].core_density_w_mm2 > rows[0].core_density_w_mm2);
    assert!(
        rows[2].core_density_w_mm2 > 8.0,
        "7nm bzip2 density {}",
        rows[2].core_density_w_mm2
    );
    // ~2x the Dennard expectation (paper §II-A).
    let growth = rows[2].core_density_w_mm2 / rows[0].core_density_w_mm2;
    assert!((2.0..3.2).contains(&growth), "density growth {growth}");
}
