//! Integration tests for the bursty server-trace workloads — including the
//! prefilter regression on a trace crafted to straddle `T_th`.
//!
//! The server profiles exist to exercise the analysis prefilter's worst
//! case (ROADMAP): a die that hovers around the hotspot temperature
//! threshold, flipping the skip decision between windows. The regression
//! here pins that behavior structurally — which substeps get skipped is a
//! pure function of the trajectory and the threshold — and, under the
//! `telemetry` feature, pins the exact skip count against the
//! `analysis.prefilter_skips` counter.

use std::sync::{Mutex, MutexGuard};

use hotgauge_core::pipeline::{run_sim, SimConfig};
use hotgauge_floorplan::tech::TechNode;
use hotgauge_perf::prelude::*;
use hotgauge_thermal::warmup::Warmup;
use hotgauge_workloads::prelude::*;

// The telemetry recorder is process-global; keep the prefilter-counting
// tests from interleaving with other runs in this binary.
static GATE: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn server_traces_resolve_through_the_combined_lookup() {
    let _g = lock();
    for name in server::SERVER_BENCHMARKS {
        let p = benchmark_profile(name).unwrap_or_else(|| panic!("missing {name}"));
        assert_eq!(p.name, name);
    }
    assert!(benchmark_profile("idle").is_some());
    assert!(benchmark_profile("gcc").is_some());
    assert!(benchmark_profile("server_nope").is_none());
}

#[test]
fn server_trace_runs_through_the_pipeline() {
    let _g = lock();
    let mut cfg = SimConfig::new(TechNode::N7, "server_kv");
    cfg.cell_um = 300.0;
    cfg.substeps = 1;
    cfg.sample_instrs = 8_000;
    cfg.max_time_s = 5e-4;
    cfg.warmup = Warmup::Cold;
    let r = run_sim(cfg);
    assert!(!r.records.is_empty());
    assert!(r.total_instructions > 0);
    assert!(r.records.iter().all(|s| s.max_temp_c.is_finite()));
}

/// The burst/lull phase alternation is visible in the performance model:
/// IPC sampled across at least one full phase cycle swings measurably.
#[test]
fn server_trace_ipc_is_bursty_across_phase_cycles() {
    let _g = lock();
    let profile = benchmark_profile("server_web").unwrap();
    let cycle = profile.phase_cycle_instrs();
    let mut gen = WorkloadGen::new(profile, 0);
    let mut core = CoreSim::new(CoreConfig::default(), MemoryConfig::default());
    core.warm_up(&mut gen, 500_000);
    // ~60 windows spanning > one full burst+lull cycle.
    let mut ipcs = Vec::new();
    let mut instrs = 0;
    while instrs < cycle + cycle / 2 {
        let w = core.run_cycles(&mut gen, 100_000);
        instrs += w.instructions;
        ipcs.push(w.ipc());
    }
    let lo = ipcs.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = ipcs.iter().cloned().fold(0.0f64, f64::max);
    assert!(lo > 0.0);
    assert!(
        hi > 1.1 * lo,
        "burst/lull cycle must swing IPC by >10% (got {lo:.3}..{hi:.3})"
    );
}

/// A TUH-mode config whose trajectory the test then straddles with a
/// threshold picked from the observed per-substep maxima. The MLTD
/// threshold is set unreachably high so Definition 1 never fires and both
/// runs cover the identical full horizon.
fn straddling_cfg() -> SimConfig {
    let mut c = SimConfig::new(TechNode::N7, "server_web");
    c.cell_um = 300.0;
    c.substeps = 1;
    c.sample_instrs = 8_000;
    c.max_time_s = 2e-3;
    c.warmup = Warmup::Cold;
    c.stop_at_first_hotspot = true;
    c.detect.mltd_threshold_c = 1e9;
    c
}

#[test]
fn prefilter_skip_pattern_is_pinned_on_a_straddling_trace() {
    let _g = lock();
    // Reference pass: prefilter off, full metrics on every substep.
    let mut off = straddling_cfg();
    off.analysis.prefilter = false;
    off.analysis.overlap = false;
    let r_off = run_sim(off);
    assert!(
        r_off.tuh_s.is_none(),
        "premise: MLTD bar must prevent stops"
    );

    // Pick T_th strictly inside the trajectory's [min, max] of per-substep
    // maxima, so the skip decision genuinely flips along the run.
    let maxes: Vec<f64> = r_off.records.iter().map(|s| s.max_temp_c).collect();
    let lo = maxes.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = maxes.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    assert!(hi > lo, "premise: trajectory must not be flat");
    let t_th = 0.5 * (lo + hi);

    let mut off = straddling_cfg();
    off.detect.t_threshold_c = t_th;
    off.analysis.prefilter = false;
    off.analysis.overlap = false;
    let mut on = off.clone();
    on.analysis.prefilter = true;
    let r_off = run_sim(off);
    let r_on = run_sim(on);

    // The trajectory itself is untouched by the prefilter.
    assert_eq!(r_on.records.len(), r_off.records.len());
    assert_eq!(r_on.tuh_s, r_off.tuh_s);
    assert_eq!(r_on.census, r_off.census);
    assert_eq!(r_on.total_instructions, r_off.total_instructions);

    let mut skipped = 0usize;
    let mut analyzed = 0usize;
    for (a, b) in r_on.records.iter().zip(&r_off.records) {
        assert_eq!(a.time_s, b.time_s);
        assert_eq!(a.max_temp_c, b.max_temp_c);
        assert_eq!(a.mean_temp_c, b.mean_temp_c);
        assert_eq!(a.power_w, b.power_w);
        assert_eq!(a.ipc, b.ipc);
        if a.max_temp_c <= t_th {
            // Provably hotspot-free: the prefilter records zeros.
            skipped += 1;
            assert_eq!(a.max_mltd_c, 0.0);
            assert_eq!(a.peak_severity, 0.0);
            assert_eq!(a.hotspot_count, 0);
        } else {
            // Above threshold the analysis ran in full: bit-identical.
            analyzed += 1;
            assert_eq!(a.max_mltd_c.to_bits(), b.max_mltd_c.to_bits());
            assert_eq!(a.peak_severity.to_bits(), b.peak_severity.to_bits());
            assert_eq!(a.hotspot_count, b.hotspot_count);
        }
    }
    assert!(
        skipped >= 2 && analyzed >= 2,
        "premise: trace must straddle T_th (skipped {skipped}, analyzed {analyzed})"
    );
    assert_eq!(skipped + analyzed, r_on.records.len());
}

/// Under telemetry the skip count is pinned exactly: the prefilter-on run
/// increments `analysis.prefilter_skips` once per sub-threshold substep and
/// the prefilter-off run not at all.
// hotgauge-lint: allow(L002, "this test reads the recorder's snapshot API directly, which only exists under the feature; the facade macros cannot gate a whole #[test] fn")
#[cfg(feature = "telemetry")]
#[test]
fn prefilter_skip_counter_matches_the_subthreshold_substep_count() {
    let _g = lock();
    let mut probe = straddling_cfg();
    probe.analysis.prefilter = false;
    probe.analysis.overlap = false;
    let r_probe = run_sim(probe);
    let maxes: Vec<f64> = r_probe.records.iter().map(|s| s.max_temp_c).collect();
    let lo = maxes.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = maxes.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let t_th = 0.5 * (lo + hi);

    let total = |snap: &hotgauge_telemetry::Snapshot| {
        snap.counter("analysis.prefilter_skips")
            .map_or(0.0, |c| c.total)
    };

    let mut off = straddling_cfg();
    off.detect.t_threshold_c = t_th;
    off.analysis.prefilter = false;
    off.analysis.overlap = false;
    let mut on = off.clone();
    on.analysis.prefilter = true;

    let s0 = hotgauge_telemetry::snapshot();
    let r_off = run_sim(off);
    let s1 = hotgauge_telemetry::snapshot();
    let r_on = run_sim(on);
    let s2 = hotgauge_telemetry::snapshot();

    assert_eq!(total(&s1) - total(&s0), 0.0, "prefilter off must not skip");
    let expected = r_on.records.iter().filter(|s| s.max_temp_c <= t_th).count();
    assert_eq!(total(&s2) - total(&s1), expected as f64);
    assert_eq!(r_off.records.len(), r_on.records.len());
    assert!(expected >= 2, "premise: trace must straddle T_th");
}
