//! Metric-layer integration: the hotspot definition, detection, MLTD, and
//! severity evaluated on frames produced by the real thermal model (not
//! synthetic fields).

use hotgauge_core::detect::{detect_hotspots, detect_hotspots_naive, HotspotParams};
use hotgauge_core::mltd::{mltd_field, mltd_field_naive};
use hotgauge_core::pipeline::{run_sim, SimConfig};
use hotgauge_core::severity::SeverityParams;
use hotgauge_floorplan::tech::TechNode;
use hotgauge_thermal::warmup::Warmup;

fn simulated_frame() -> hotgauge_thermal::frame::ThermalFrame {
    let mut cfg = SimConfig::new(TechNode::N7, "povray");
    cfg.cell_um = 300.0;
    cfg.border_mm = 1.5;
    cfg.substeps = 1;
    cfg.sample_instrs = 8_000;
    cfg.max_time_s = 3e-3;
    cfg.warmup = Warmup::Idle;
    run_sim(cfg).final_frame
}

#[test]
fn fast_and_naive_mltd_agree_on_simulated_frames() {
    let frame = simulated_frame();
    let fast = mltd_field(&frame, 1e-3);
    let naive = mltd_field_naive(&frame, 1e-3);
    for (i, (a, b)) in fast.iter().zip(&naive).enumerate() {
        assert!((a - b).abs() < 1e-9, "cell {i}: {a} vs {b}");
    }
}

#[test]
fn candidate_detector_agrees_with_naive_on_simulated_frames() {
    let frame = simulated_frame();
    let p = HotspotParams::paper_default();
    let s = SeverityParams::cpu_default();
    let fast = detect_hotspots(&frame, &p, &s);
    let naive = detect_hotspots_naive(&frame, &p, &s);
    // Every candidate hotspot satisfies the definition.
    for h in &fast {
        assert!(
            naive.iter().any(|n| n.ix == h.ix && n.iy == h.iy),
            "({},{}) not confirmed",
            h.ix,
            h.iy
        );
    }
    // If the naive detector finds any hotspot, the candidate detector must
    // find one too (the hottest local maximum qualifies).
    assert_eq!(fast.is_empty(), naive.is_empty());
    // And the worst severity agrees.
    if !naive.is_empty() {
        let f = fast.iter().map(|h| h.severity).fold(0.0, f64::max);
        let n = naive.iter().map(|h| h.severity).fold(0.0, f64::max);
        assert!((f - n).abs() < 1e-9, "{f} vs {n}");
    }
}

#[test]
fn hotspot_mltd_values_are_consistent_with_field() {
    let frame = simulated_frame();
    let p = HotspotParams::paper_default();
    let s = SeverityParams::cpu_default();
    let field = mltd_field(&frame, p.radius_m);
    for h in detect_hotspots(&frame, &p, &s) {
        let idx = h.iy * frame.nx + h.ix;
        assert!((h.mltd_c - field[idx]).abs() < 1e-12);
        assert!((h.temp_c - frame.temps[idx]).abs() < 1e-12);
        assert!(h.temp_c > p.t_threshold_c);
        assert!(h.mltd_c > p.mltd_threshold_c);
        assert!((0.0..=1.0).contains(&h.severity));
    }
}

#[test]
fn tighter_thresholds_find_fewer_hotspots() {
    let frame = simulated_frame();
    let s = SeverityParams::cpu_default();
    let loose = HotspotParams {
        t_threshold_c: 70.0,
        mltd_threshold_c: 15.0,
        radius_m: 1e-3,
    };
    let strict = HotspotParams {
        t_threshold_c: 95.0,
        mltd_threshold_c: 35.0,
        radius_m: 1e-3,
    };
    let n_loose = detect_hotspots(&frame, &loose, &s).len();
    let n_strict = detect_hotspots(&frame, &strict, &s).len();
    assert!(n_loose >= n_strict, "{n_loose} vs {n_strict}");
}

#[test]
fn larger_radius_gives_no_smaller_mltd() {
    let frame = simulated_frame();
    let small = mltd_field(&frame, 0.5e-3);
    let large = mltd_field(&frame, 2e-3);
    for (s, l) in small.iter().zip(&large) {
        assert!(l >= s, "MLTD must grow with radius: {l} < {s}");
    }
}

#[test]
fn census_attributes_hotspots_to_hot_units() {
    // Run long enough for hotspots and check the census points at the
    // execution stack, as Fig. 12 reports.
    let mut cfg = SimConfig::new(TechNode::N7, "povray");
    cfg.cell_um = 300.0;
    cfg.border_mm = 1.5;
    cfg.substeps = 1;
    cfg.sample_instrs = 8_000;
    cfg.max_time_s = 6e-3;
    cfg.warmup = Warmup::Idle;
    let r = run_sim(cfg);
    if r.census.total() == 0 {
        return; // nothing to attribute at this fidelity
    }
    let ranked = r.census.ranked();
    let paper_hot = [
        "cALU",
        "fpIWin",
        "intRAT",
        "fpRAT",
        "intRF",
        "fpRF",
        "core_other",
        "ROB",
        "intIWin",
        "sALU",
        "FPU",
        "AVX512",
    ];
    // At this very coarse test grid (300 µm) a peak cell can be owned by a
    // neighboring cache block, so require an execution-stack unit among the
    // top three rather than strictly first.
    let top3: Vec<&str> = ranked.iter().take(3).map(|(u, _)| u.as_str()).collect();
    assert!(
        top3.iter().any(|u| paper_hot.contains(u)),
        "top hotspot units {top3:?} should include an execution-stack unit"
    );
}
