//! Mitigation-study integration (§V): unit scaling and IC scaling behave as
//! the paper's case studies describe.

use hotgauge_core::pipeline::{build_floorplan, run_sim, SimConfig};
use hotgauge_floorplan::tech::TechNode;
use hotgauge_floorplan::unit::UnitKind;
use hotgauge_thermal::warmup::Warmup;

fn tiny(node: TechNode, bench: &str) -> SimConfig {
    let mut cfg = SimConfig::new(node, bench);
    cfg.cell_um = 300.0;
    cfg.border_mm = 1.5;
    cfg.substeps = 1;
    cfg.sample_instrs = 8_000;
    cfg.max_time_s = 4e-3;
    cfg.warmup = Warmup::Idle;
    cfg
}

#[test]
fn scaling_a_unit_reduces_its_severity() {
    let mut base = tiny(TechNode::N7, "povray");
    base.track_units = vec!["core0.fpRF".into()];
    let mut scaled = base.clone();
    scaled.unit_scales = vec![(UnitKind::FpRf, 10.0)];

    let rb = run_sim(base);
    let rs = run_sim(scaled);
    // Peak severity can saturate at 1.0 on both floorplans at 7 nm, so
    // compare the RMS of the in-unit severity series (the paper's own
    // whole-run summary metric).
    let rms = |r: &hotgauge_core::pipeline::RunResult| {
        let v: Vec<f64> = r.records.iter().map(|x| x.unit_severity[0]).collect();
        hotgauge_core::series::rms(&v)
    };
    let sev_base = rms(&rb);
    let sev_scaled = rms(&rs);
    assert!(
        sev_scaled < sev_base,
        "10x area should cool the unit: {sev_base} -> {sev_scaled}"
    );
}

#[test]
fn scaled_unit_floorplan_grows_only_that_unit_relative_share() {
    let base = build_floorplan(&tiny(TechNode::N7, "gcc"));
    let mut cfg = tiny(TechNode::N7, "gcc");
    cfg.unit_scales = vec![(UnitKind::IntRat, 10.0)];
    let scaled = build_floorplan(&cfg);
    let a0 = base.unit_by_name("core0.intRAT").unwrap().area();
    let a1 = scaled.unit_by_name("core0.intRAT").unwrap().area();
    assert!(a1 > 5.0 * a0);
    // Other units keep (roughly) their absolute area; the die grows.
    let rob0 = base.unit_by_name("core0.ROB").unwrap().area();
    let rob1 = scaled.unit_by_name("core0.ROB").unwrap().area();
    assert!((rob1 / rob0 - 1.0).abs() < 0.2);
    assert!(scaled.die_area() > base.die_area());
}

#[test]
fn ic_scaling_monotonically_reduces_severity() {
    let mut prev = f64::INFINITY;
    for factor in [1.0, 1.75, 2.5] {
        let mut cfg = tiny(TechNode::N7, "povray");
        cfg.ic_area_factor = factor;
        let r = run_sim(cfg);
        let rms = r.rms_severity();
        assert!(
            rms <= prev + 1e-6,
            "severity should not grow with area: {rms} after {prev} (factor {factor})"
        );
        prev = rms;
    }
}

#[test]
fn unit_scaling_does_not_add_power() {
    // Area scaling is a density proxy: the scaled floorplan must dissipate
    // (approximately) the same total power.
    let base = run_sim(tiny(TechNode::N7, "gcc"));
    let mut cfg = tiny(TechNode::N7, "gcc");
    cfg.unit_scales = vec![(UnitKind::FpIWin, 10.0)];
    let scaled = run_sim(cfg);
    let pb = base.records.last().unwrap().power_w;
    let ps = scaled.records.last().unwrap().power_w;
    assert!(
        (pb - ps).abs() / pb < 0.05,
        "power should be conserved: {pb} vs {ps}"
    );
}

#[test]
fn fourteen_nm_remains_the_better_floorplan_even_after_rat_scaling() {
    // The paper's Fig. 14 headline: 7nm with RATs x10 still exceeds the
    // 14nm severity target for hot workloads.
    let r14 = run_sim(tiny(TechNode::N14, "povray"));
    let mut cfg = tiny(TechNode::N7, "povray");
    cfg.unit_scales = vec![(UnitKind::IntRat, 10.0), (UnitKind::FpRat, 10.0)];
    let r7 = run_sim(cfg);
    assert!(
        r7.peak_severity() >= r14.peak_severity(),
        "7nm RATx10 {} vs 14nm {}",
        r7.peak_severity(),
        r14.peak_severity()
    );
}
