//! Mitigation study: evaluate floorplanning-based hotspot mitigation —
//! single-unit area scaling and whole-IC white-space scaling (paper §V).
//!
//! ```sh
//! cargo run --release --example mitigation_study
//! ```

use hotgauge_core::pipeline::{run_sim, SimConfig};
use hotgauge_core::report::TextTable;
use hotgauge_floorplan::tech::TechNode;
use hotgauge_floorplan::unit::UnitKind;
use hotgauge_thermal::warmup::Warmup;

/// Label, per-unit area scales, and whole-IC area factor of one variant.
type Variant = (String, Vec<(UnitKind, f64)>, f64);

fn main() {
    let bench = "povray";
    let horizon = 0.015;

    // 14 nm baseline: the severity level the designer wants to get back to.
    let mut base14 = SimConfig::new(TechNode::N14, bench);
    base14.warmup = Warmup::Idle;
    base14.max_time_s = horizon;
    let target = run_sim(base14);
    println!(
        "14nm baseline: peak severity {:.2}, RMS {:.3} (the mitigation target)\n",
        target.peak_severity(),
        target.rms_severity()
    );

    // §V-A: scale the hottest units at 7 nm.
    let mut table = TextTable::new(vec![
        "7nm floorplan",
        "peak sev",
        "RMS sev",
        "die area [mm2]",
    ]);
    let variants: Vec<Variant> = vec![
        ("baseline".into(), vec![], 1.0),
        ("fpRF x4".into(), vec![(UnitKind::FpRf, 4.0)], 1.0),
        ("fpRF x10".into(), vec![(UnitKind::FpRf, 10.0)], 1.0),
        (
            "RATs x10".into(),
            vec![(UnitKind::IntRat, 10.0), (UnitKind::FpRat, 10.0)],
            1.0,
        ),
        // §V-B: uniform IC white space instead of targeted scaling.
        ("IC area x1.75".into(), vec![], 1.75),
        ("IC area x2.50".into(), vec![], 2.50),
    ];
    for (label, scales, ic) in variants {
        let mut cfg = SimConfig::new(TechNode::N7, bench);
        cfg.warmup = Warmup::Idle;
        cfg.max_time_s = horizon;
        cfg.unit_scales = scales;
        cfg.ic_area_factor = ic;
        let fp = hotgauge_core::pipeline::build_floorplan(&cfg);
        let r = run_sim(cfg);
        table.row(vec![
            label,
            format!("{:.2}", r.peak_severity()),
            format!("{:.3}", r.rms_severity()),
            format!("{:.1}", fp.die_area()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "As in the paper: scaling one unit, even 10x, does not recover the\n\
         14nm severity level, and matching it with uniform white space takes\n\
         a huge area increase — static mitigation alone is insufficient."
    );
}
