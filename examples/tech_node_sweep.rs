//! Technology-node sweep: how the same workload's hotspot behavior degrades
//! from 14 nm to 7 nm (and the extrapolated 5 nm) — the paper's §IV story.
//!
//! ```sh
//! cargo run --release --example tech_node_sweep [benchmark]
//! ```

use hotgauge_core::pipeline::{run_sim, SimConfig};
use hotgauge_core::report::{fmt_tuh, TextTable};
use hotgauge_floorplan::tech::TechNode;
use hotgauge_thermal::warmup::Warmup;

fn main() {
    let bench = std::env::args().nth(1).unwrap_or_else(|| "hmmer".into());
    let horizon = 0.02;

    let mut table = TextTable::new(vec![
        "node",
        "power [W]",
        "Tmax [C]",
        "max MLTD [C]",
        "peak sev",
        "TUH",
    ]);

    println!(
        "sweeping technology nodes for {bench} (idle warmup, {} ms)...",
        horizon * 1e3
    );
    for node in TechNode::ALL {
        let mut cfg = SimConfig::new(node, &bench);
        cfg.warmup = Warmup::Idle;
        cfg.max_time_s = horizon;
        let r = run_sim(cfg);
        let tmax = r.records.iter().map(|x| x.max_temp_c).fold(0.0, f64::max);
        let mltd = r.records.iter().map(|x| x.max_mltd_c).fold(0.0, f64::max);
        let power = r.records.last().map(|x| x.power_w).unwrap_or(0.0);
        table.row(vec![
            node.label().to_owned(),
            format!("{power:.1}"),
            format!("{tmax:.1}"),
            format!("{mltd:.1}"),
            format!("{:.2}", r.peak_severity()),
            fmt_tuh(r.tuh_s, horizon),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Note the post-Dennard trend: total power falls with each node while\n\
         hotspots arrive sooner and MLTD grows — the motivation for\n\
         architecture-level mitigation (paper, Sections II and IV)."
    );
}
