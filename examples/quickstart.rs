//! Quickstart: run one perf-power-therm co-simulation and characterize its
//! hotspots.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hotgauge_core::pipeline::{run_sim, SimConfig};
use hotgauge_core::report::{fmt_time, fmt_tuh};
use hotgauge_floorplan::tech::TechNode;
use hotgauge_thermal::warmup::Warmup;

fn main() {
    // Simulate 5 ms of single-threaded gcc pinned to core 0 of the 7 nm
    // Skylake-proxy client CPU, after an idle warm-up — the paper's default
    // scenario.
    let mut cfg = SimConfig::new(TechNode::N7, "gcc");
    cfg.target_core = 0;
    cfg.warmup = Warmup::Idle;
    cfg.max_time_s = 5e-3;

    println!("running gcc on a 7nm client CPU for 5 ms of simulated time...");
    let result = run_sim(cfg);

    // Time-until-hotspot with the paper's definition (80 C, 25 C MLTD, 1 mm).
    println!("TUH: {}", fmt_tuh(result.tuh_s, 5e-3));

    // Per-step thermal summary.
    let last = result.records.last().expect("at least one step");
    println!(
        "after {}: max {:.1} C, mean {:.1} C, max MLTD {:.1} C, peak severity {:.2}",
        fmt_time(last.time_s),
        last.max_temp_c,
        last.mean_temp_c,
        last.max_mltd_c,
        result.peak_severity(),
    );

    // Where did the hotspots land?
    println!("hotspot locations:");
    for (unit, count) in result.census.ranked().into_iter().take(5) {
        println!("  {unit:<12} {count}");
    }

    // The severity time series is available for further analysis.
    println!(
        "severity RMS over the run: {:.3} ({} samples)",
        result.rms_severity(),
        result.sev_series.len()
    );
}
