//! Using the toolkit below the canned pipeline: build a custom floorplan,
//! rasterize it, attach the paper's thermal stack, drive it with a hand-made
//! power map, and run the hotspot metrics directly.
//!
//! This is the "HotGauge is system-agnostic" workflow: any processor — GPU,
//! ML accelerator — can be characterized by supplying a floorplan and a
//! power model (paper §III).
//!
//! ```sh
//! cargo run --release --example custom_floorplan
//! ```

use hotgauge_core::detect::{detect_hotspots, HotspotParams};
use hotgauge_core::mltd::mltd_field;
use hotgauge_core::severity::SeverityParams;
use hotgauge_floorplan::floorplan::Floorplan;
use hotgauge_floorplan::geometry::Rect;
use hotgauge_floorplan::grid::FloorplanGrid;
use hotgauge_floorplan::unit::{FloorplanUnit, UnitKind};
use hotgauge_thermal::model::{ThermalModel, ThermalSim};
use hotgauge_thermal::stack::StackDescription;

fn main() {
    // A toy accelerator die: a 4x4 systolic array of compute tiles with an
    // SRAM column on the right, 4 mm x 3 mm.
    let mut units = Vec::new();
    for ty in 0..4 {
        for tx in 0..4 {
            units.push(FloorplanUnit::new(
                format!("pe{tx}{ty}"),
                UnitKind::Avx512, // reuse the vector-unit kind for PEs
                Some(0),
                Rect::new(tx as f64 * 0.75, ty as f64 * 0.75, 0.75, 0.75),
            ));
        }
    }
    units.push(FloorplanUnit::new(
        "sram",
        UnitKind::L3Slice,
        None,
        Rect::new(3.0, 0.0, 1.0, 3.0),
    ));
    let fp = Floorplan::new("toy_accelerator", Rect::new(0.0, 0.0, 4.0, 3.0), units);

    // Rasterize at 100 um and attach the paper's client thermal stack.
    let grid = FloorplanGrid::rasterize(&fp, 100.0);
    let stack = StackDescription::client_cpu(grid.nx, grid.ny, 100.0);
    let model = ThermalModel::new(stack);
    // Start pre-warmed, as if the accelerator had been serving requests.
    let mut sim = ThermalSim::new(model, 58.0);

    // Drive it: one PE runs a hot kernel (7 W), its neighbors idle.
    let mut unit_power = vec![0.08; fp.units.len()];
    let hot = fp.unit_index_by_name("pe11").expect("exists");
    unit_power[hot] = 7.0;
    let power_map = grid.power_map(&unit_power);

    // 10 ms transient in 200 us steps, watching the metrics evolve.
    let detect = HotspotParams::paper_default();
    let severity = SeverityParams::cpu_default();
    for step in 1..=50 {
        sim.step(&power_map, 200e-6);
        if step % 10 == 0 {
            let frame = sim.die_frame();
            let mltd = mltd_field(&frame, detect.radius_m);
            let peak_mltd = mltd.iter().cloned().fold(0.0, f64::max);
            let hotspots = detect_hotspots(&frame, &detect, &severity);
            println!(
                "t = {:>4.1} ms: Tmax {:>6.2} C, MLTD {:>5.2} C, hotspots: {}",
                step as f64 * 0.2,
                frame.max(),
                peak_mltd,
                hotspots.len()
            );
        }
    }

    // Attribute the final hotspots to units.
    let frame = sim.die_frame();
    let hotspots = detect_hotspots(&frame, &detect, &severity);
    for h in hotspots.iter().take(3) {
        let (x_mm, y_mm) = (
            (h.ix as f64 + 0.5) * frame.cell_m * 1e3,
            (h.iy as f64 + 0.5) * frame.cell_m * 1e3,
        );
        let unit = fp
            .unit_at(hotgauge_floorplan::geometry::Point::new(x_mm, y_mm))
            .map(|u| u.name.as_str())
            .unwrap_or("?");
        println!(
            "hotspot at ({x_mm:.2}, {y_mm:.2}) mm in {unit}: {:.1} C, MLTD {:.1} C, severity {:.2}",
            h.temp_c, h.mltd_c, h.severity
        );
    }
}
