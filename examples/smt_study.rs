//! SMT study: Table I models 2 threads/core — what does co-running a second
//! thread do to the shared structures and the thermal profile?
//!
//! ```sh
//! cargo run --release --example smt_study
//! ```

use hotgauge_perf::config::{CoreConfig, MemoryConfig};
use hotgauge_perf::engine::CoreSim;
use hotgauge_perf::smt::SmtInterleaver;
use hotgauge_workloads::generator::WorkloadGen;
use hotgauge_workloads::spec2006;

fn main() {
    let pairs = [("hmmer", "hmmer"), ("hmmer", "mcf"), ("gcc", "milc")];
    println!("SMT interference on shared core structures (2 threads/core)\n");
    for (a, b) in pairs {
        // Single-threaded baselines.
        let ipc_a = run_single(a);
        let ipc_b = run_single(b);

        // SMT: both streams interleaved onto one core.
        let mut core = CoreSim::new(CoreConfig::default(), MemoryConfig::default());
        let mut src = SmtInterleaver::new(
            WorkloadGen::new(spec2006::profile(a).unwrap(), 11),
            WorkloadGen::new(spec2006::profile(b).unwrap(), 12),
        );
        core.warm_up(&mut src, 2_000_000);
        let w = core.run_instructions(&mut src, 400_000);
        let smt_ipc = w.ipc();
        let throughput_gain = smt_ipc / ipc_a.max(ipc_b);

        println!(
            "{a:>6} + {b:<6}: ST IPC {ipc_a:.2} / {ipc_b:.2}; SMT combined IPC {smt_ipc:.2} \
             ({throughput_gain:.2}x the faster thread alone)"
        );
        println!(
            "                L1D MPKI {:.1}, mispredict rate {:.1}%\n",
            w.l1d_mpki(),
            w.mispredict_rate() * 100.0
        );
    }
    println!(
        "Co-running threads share the caches and predictor: complementary\n\
         pairs (compute + memory) gain throughput, while cache-hungry pairs\n\
         interfere — and either way the busier core runs denser and hotter,\n\
         which is why the paper models SMT for its thermal case study."
    );
}

fn run_single(name: &str) -> f64 {
    let mut core = CoreSim::new(CoreConfig::default(), MemoryConfig::default());
    let mut gen = WorkloadGen::new(spec2006::profile(name).unwrap(), 11);
    core.warm_up(&mut gen, 2_000_000);
    core.run_instructions(&mut gen, 400_000).ipc()
}
