//! Offline stand-in for `proptest`: the subset this workspace's property
//! tests use. Cases are drawn from a deterministic per-test RNG (seeded from
//! the test name), so runs are reproducible without a persistence file.
//! There is no shrinking — a failing case reports its index and message.

use std::fmt;
use std::ops::Range;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property within one generated case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic RNG driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a of the test name).
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, span)`.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty sampling span");
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Executes the cases of one `proptest!` test (used by the macro).
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
}

impl TestRunner {
    /// A runner for the named test under `config`.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        Self {
            config,
            rng: TestRng::from_name(name),
        }
    }

    /// How many cases to run.
    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    /// The shared case RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// A recipe for generating random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Boxes a strategy for use in heterogeneous collections (`prop_oneof!`).
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Chooses uniformly among boxed strategies (`prop_oneof!`).
pub struct Union<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// Strategies over values drawn from a fixed set (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Chooses uniformly from `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select() needs a non-empty set");
        Select(items)
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].clone()
        }
    }
}

/// Strategies over collections (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Mirror of proptest's `prop::` module hierarchy.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests; each named argument is drawn from its strategy.
#[macro_export]
macro_rules! proptest {
    (@run($cfg:expr) $(
        #[test]
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            for case in 0..runner.cases() {
                $(let $arg = $crate::Strategy::sample(&$strat, runner.rng());)+
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!("proptest case {case} of {}: {e}", stringify!($name));
                }
            }
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run(<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Asserts within a `proptest!` body, failing only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Uniform choice among strategy expressions sharing a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_small() -> impl Strategy<Value = u64> {
        prop_oneof![Just(1u64), Just(2), Just(3)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3u64..9,
            f in -2.0f64..2.0,
            n in 1usize..5,
            pick in arb_small(),
        ) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!((1..5).contains(&n));
            prop_assert!((1..=3).contains(&pick));
        }

        #[test]
        fn collections_honor_size(mut data in prop::collection::vec(0.0f64..1.0, 1..10)) {
            prop_assert!(!data.is_empty() && data.len() < 10);
            data.sort_by(f64::total_cmp);
            prop_assert!(data.windows(2).all(|w| w[0] <= w[1]));
        }

        #[test]
        fn select_draws_from_set(k in prop::sample::select(vec![10u32, 20, 30])) {
            prop_assert!(k % 10 == 0 && (10..=30).contains(&k));
        }
    }

    #[test]
    fn default_config_runs_256_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
