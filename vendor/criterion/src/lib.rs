//! Offline stand-in for `criterion`: a wall-clock harness covering the API
//! this workspace's benches use. Each benchmark is timed over `sample_size`
//! samples (batched so one sample lasts at least a few milliseconds) and
//! reported as `[min mean max]` per iteration, criterion-style.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier — re-export of `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation; recorded to derive an elements/bytes-per-second line.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Items processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A composite benchmark name: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Joins a function name and a parameter into `name/param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        Self {
            full: format!("{}/{param}", name.into()),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkName {
    /// The rendered label.
    fn into_name(self) -> String;
}

impl IntoBenchmarkName for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkName for String {
    fn into_name(self) -> String {
        self
    }
}

impl IntoBenchmarkName for BenchmarkId {
    fn into_name(self) -> String {
        self.full
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Mean nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Runs `f` repeatedly and records per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed call estimates the cost so samples can be batched to
        // at least ~5 ms, keeping timer resolution out of the numbers.
        let start = Instant::now();
        black_box(f());
        let estimate = start.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(5).as_nanos() / estimate.as_nanos()).clamp(1, 100_000);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
            self.samples.push(per_iter);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(per_sec: f64, unit: &str) {
    let (scaled, prefix) = if per_sec >= 1e9 {
        (per_sec / 1e9, "G")
    } else if per_sec >= 1e6 {
        (per_sec / 1e6, "M")
    } else if per_sec >= 1e3 {
        (per_sec / 1e3, "K")
    } else {
        (per_sec, "")
    };
    println!("                        thrpt:  {scaled:.3} {prefix}{unit}/s");
}

fn run_one(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let n = bencher.samples.len() as f64;
    let mean = bencher.samples.iter().sum::<f64>() / n;
    let min = bencher
        .samples
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = bencher
        .samples
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    println!("{name}");
    println!(
        "                        time:   [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
    match throughput {
        Some(Throughput::Elements(k)) => fmt_rate(k as f64 / (mean * 1e-9), "elem"),
        Some(Throughput::Bytes(k)) => fmt_rate(k as f64 / (mean * 1e-9), "B"),
        None => {}
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, 20, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates following benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N: IntoBenchmarkName, F: FnMut(&mut Bencher)>(
        &mut self,
        id: N,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_name());
        run_one(&name, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<N: IntoBenchmarkName, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: N,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.into_name());
        run_one(&name, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher {
            sample_size: 5,
            samples: Vec::new(),
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(b.samples.len(), 5);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn benchmark_id_joins_name_and_param() {
        assert_eq!(BenchmarkId::new("solve", 64).into_name(), "solve/64");
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2).throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn ns_formatting_scales() {
        assert_eq!(fmt_ns(12.0), "12.00 ns");
        assert_eq!(fmt_ns(1.2e4), "12.00 µs");
        assert_eq!(fmt_ns(1.2e7), "12.00 ms");
        assert_eq!(fmt_ns(1.2e10), "12.000 s");
    }
}
