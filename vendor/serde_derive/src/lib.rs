//! Offline stand-in for `serde_derive`.
//!
//! Generates implementations of the vendored `serde` shim's `Serialize` /
//! `Deserialize` traits (which render through an ordered `Value` tree).
//! Supported shapes — the ones this workspace uses:
//!
//! * structs with named fields (lifetime generics allowed for `Serialize`),
//! * enums whose variants are all unit variants.
//!
//! No `#[serde(...)]` attributes are interpreted. Parsing walks the raw
//! token stream (no `syn`/`quote`: the build container has no registry
//! access), and the generated impl is assembled as source text.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Ser,
    De,
}

/// Derives the shim's `Serialize` for named-field structs and unit enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Ser)
}

/// Derives the shim's `Deserialize` for named-field structs and unit enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::De)
}

struct Item {
    is_struct: bool,
    name: String,
    /// Raw generics text including the angle brackets, e.g. `<'a>`.
    generics: String,
    /// Field names (structs) or variant names (enums).
    parts: Vec<String>,
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return error(&msg),
    };
    if mode == Mode::De && !item.generics.is_empty() {
        return error("cannot derive Deserialize for generic types in the serde shim");
    }
    let src = match (item.is_struct, mode) {
        (true, Mode::Ser) => struct_serialize(&item),
        (true, Mode::De) => struct_deserialize(&item),
        (false, Mode::Ser) => enum_serialize(&item),
        (false, Mode::De) => enum_deserialize(&item),
    };
    src.parse().expect("generated impl parses")
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal parses")
}

fn struct_serialize(item: &Item) -> String {
    let fields: String = item
        .parts
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), \
                 ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    let (name, g) = (&item.name, &item.generics);
    format!(
        "impl {g} ::serde::Serialize for {name} {g} {{
            fn to_value(&self) -> ::serde::Value {{
                ::serde::Value::Map(::std::vec![{fields}])
            }}
        }}"
    )
}

fn struct_deserialize(item: &Item) -> String {
    let name = &item.name;
    let fields: String = item
        .parts
        .iter()
        .map(|f| format!("{f}: ::serde::field(map, {f:?}, {name:?})?,"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{
            fn from_value(v: &::serde::Value)
                -> ::std::result::Result<Self, ::serde::Error>
            {{
                let map = v.as_map().ok_or_else(|| ::serde::Error::custom(
                    ::std::concat!(\"expected object for \", {name:?})))?;
                ::std::result::Result::Ok(Self {{ {fields} }})
            }}
        }}"
    )
}

fn enum_serialize(item: &Item) -> String {
    let arms: String = item
        .parts
        .iter()
        .map(|v| format!("Self::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"))
        .collect();
    let (name, g) = (&item.name, &item.generics);
    format!(
        "impl {g} ::serde::Serialize for {name} {g} {{
            fn to_value(&self) -> ::serde::Value {{
                match self {{ {arms} }}
            }}
        }}"
    )
}

fn enum_deserialize(item: &Item) -> String {
    let name = &item.name;
    let arms: String = item
        .parts
        .iter()
        .map(|v| format!("{v:?} => ::std::result::Result::Ok(Self::{v}),"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{
            fn from_value(v: &::serde::Value)
                -> ::std::result::Result<Self, ::serde::Error>
            {{
                let s = v.as_str().ok_or_else(|| ::serde::Error::custom(
                    ::std::concat!(\"expected variant string for \", {name:?})))?;
                match s {{
                    {arms}
                    other => ::std::result::Result::Err(::serde::Error::custom(
                        ::std::format!(\"unknown {name} variant `{{other}}`\"))),
                }}
            }}
        }}"
    )
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let is_struct = match ident_at(&tokens, i).as_deref() {
        Some("struct") => true,
        Some("enum") => false,
        _ => return Err("serde shim derive supports only structs and enums".into()),
    };
    i += 1;

    let name = ident_at(&tokens, i).ok_or("expected type name")?;
    i += 1;

    let generics = parse_generics(&tokens, &mut i)?;

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(_) => {
            // `where` clauses and unit/tuple structs are unsupported.
            return Err(format!(
                "serde shim derive: unsupported item shape for `{name}` \
                 (expected a braced body)"
            ));
        }
        None => return Err(format!("missing body for `{name}`")),
    };

    let parts = if is_struct {
        parse_named_fields(body)?
    } else {
        parse_unit_variants(body, &name)?
    };

    Ok(Item {
        is_struct,
        name,
        generics,
        parts,
    })
}

fn ident_at(tokens: &[TokenTree], i: usize) -> Option<String> {
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) => Some(id.to_string()),
        _ => None,
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
        {
            *i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

/// Collects `<...>` generics (if present) as raw text, handling nesting.
/// The collected tokens are re-rendered through `TokenStream`'s lossless
/// `Display` so lifetimes like `'a` keep their exact spelling.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Ok(String::new()),
    }
    let mut depth = 0usize;
    let mut collected: Vec<TokenTree> = Vec::new();
    loop {
        let tok = tokens
            .get(*i)
            .ok_or("unterminated generics in derive input")?;
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
        collected.push(tok.clone());
        *i += 1;
        if depth == 0 {
            return Ok(TokenStream::from_iter(collected).to_string());
        }
    }
}

/// Extracts field names from a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => {
                return Err(format!(
                    "serde shim derive: expected field name, found `{other}`"
                ))
            }
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => {
                return Err(format!(
                    "serde shim derive: expected `:` after field `{name}` \
                     (tuple structs are unsupported)"
                ))
            }
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0isize;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or end)
        fields.push(name);
    }
    Ok(fields)
}

/// Extracts variant names from an enum body, requiring unit variants.
fn parse_unit_variants(body: TokenStream, enum_name: &str) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => {
                return Err(format!(
                    "serde shim derive: expected variant name in `{enum_name}`, found `{other}`"
                ))
            }
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip the expression.
                i += 1;
                loop {
                    match tokens.get(i) {
                        None => break,
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                            i += 1;
                            break;
                        }
                        Some(_) => i += 1,
                    }
                }
            }
            Some(_) => {
                return Err(format!(
                    "serde shim derive: enum `{enum_name}` variant `{name}` carries data; \
                     only unit variants are supported"
                ))
            }
        }
        variants.push(name);
    }
    Ok(variants)
}
