//! Offline stand-in for `parking_lot`: wraps the standard library's locks
//! with parking_lot's panic-free API (no poisoning — a panicked holder's
//! lock is recovered instead of propagating `PoisonError`).

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutex that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
