//! Offline stand-in for `serde`, providing the subset of the API this
//! workspace uses. The container this repository builds in has no access to
//! crates.io, so the workspace patches `serde` to this implementation.
//!
//! Instead of serde's visitor-based architecture, values are funneled
//! through an ordered [`Value`] tree: `Serialize` renders a type into a
//! `Value`, `Deserialize` rebuilds a type from one. Maps preserve insertion
//! order, which is what gives the run manifests their deterministic field
//! order. The `derive` feature enables `#[derive(Serialize, Deserialize)]`
//! via the sibling `serde_derive` shim.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree. Object fields keep their insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer.
    U64(u64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; field order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric contents widened to `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// Unsigned integer contents, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Signed integer contents, if losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }

    /// Boolean contents.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Looks up an object field by name.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into a [`Value`].
pub trait Serialize {
    /// The value-tree representation of `self`.
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `v` into `Self`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up and deserializes a struct field; used by the derive macro.
/// A missing key is treated as `null` so `Option` fields default to `None`.
pub fn field<T: Deserialize>(map: &[(String, Value)], key: &str, ty: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("{ty}.{key}: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("{ty}: missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().ok_or_else(|| Error::custom("expected integer"))?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64().ok_or_else(|| Error::custom("expected unsigned integer"))?;
                <$t>::try_from(raw).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);
de_unsigned!(u8, u16, u32, u64, usize);

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        // Supporting `&'static str` fields requires giving the string a
        // static lifetime; the leak is bounded by the number of such fields
        // deserialized (only validation tables use this).
        v.as_str()
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! de_tuple {
    ($(($len:literal: $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected array"))?;
                if s.len() != $len {
                    return Err(Error::custom(format!(
                        "expected array of length {}, got {}", $len, s.len()
                    )));
                }
                Ok(($($t::from_value(&s[$n])?,)+))
            }
        }
    )*};
}
de_tuple! {
    (1: 0 A)
    (2: 0 A, 1 B)
    (3: 0 A, 1 B, 2 C)
    (4: 0 A, 1 B, 2 C, 3 D)
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
            .collect()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_owned()
        );
    }

    #[test]
    fn integral_float_coerces_to_int() {
        // JSON "5" may parse as an integer even when a float is expected.
        assert_eq!(f64::from_value(&Value::I64(5)).unwrap(), 5.0);
        assert_eq!(u64::from_value(&Value::F64(5.0)).unwrap(), 5);
    }

    #[test]
    fn option_none_from_null_or_missing() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        let map: Vec<(String, Value)> = vec![];
        let got: Option<f64> = field(&map, "absent", "T").unwrap();
        assert_eq!(got, None);
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        let back: Vec<(u64, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let mut m = BTreeMap::new();
        m.insert("a".to_owned(), 1u64);
        m.insert("b".to_owned(), 2u64);
        let back: BTreeMap<String, u64> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn map_preserves_insertion_order() {
        let v = Value::Map(vec![
            ("z".to_owned(), Value::U64(1)),
            ("a".to_owned(), Value::U64(2)),
        ]);
        let keys: Vec<&str> = v
            .as_map()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
    }
}
