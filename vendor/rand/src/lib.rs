//! Offline stand-in for `rand` 0.8: the subset this workspace uses.
//!
//! [`rngs::SmallRng`] is xoshiro256++ (the same algorithm rand 0.8 uses for
//! `SmallRng` on 64-bit targets), seeded through SplitMix64 as
//! `SeedableRng::seed_from_u64` does upstream. Streams are deterministic
//! for a given seed, which is all the workload generators require.

use std::ops::{Range, RangeInclusive};

/// Types that can produce raw 64-bit randomness.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits, as upstream's f64 sampling does.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that [`Rng::gen_range`] can sample a `T` from. Generic over the
/// output (as upstream) so integer-literal ranges infer from the use site.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((reduce(rng.next_u64(), span)) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((reduce(rng.next_u64(), span)) as $t)
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}
float_sample_range!(f64);

/// Maps a uniform `u64` onto `[0, span)` (multiply-shift reduction).
fn reduce(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

/// Named RNG implementations, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — rand 0.8's `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as upstream.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "got {frac}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.gen_range(1..=2);
            assert!((1..=2).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
