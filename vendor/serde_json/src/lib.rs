//! Offline stand-in for `serde_json`: renders the vendored `serde` shim's
//! ordered [`Value`] tree to JSON text and parses JSON text back. Object
//! fields serialize in insertion order, which keeps emitted manifests
//! deterministic.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (2-space indentation).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, val) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // Rust's shortest-roundtrip Display is valid JSON for finite floats.
        out.push_str(&x.to_string());
    } else {
        // Non-finite numbers have no JSON representation; emit null like
        // lenient encoders do rather than producing invalid output.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|()| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe via the chars iterator).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape (cursor on the `u`), handling
    /// surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, Error> {
        self.pos += 1; // past 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            self.eat(b'\\')?;
            self.eat(b'u')?;
            let lo = self.hex4()?;
            if !(0xDC00..0xE000).contains(&lo) {
                return Err(self.err("invalid low surrogate"));
            }
            let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
            char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))
        } else {
            char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_render() {
        let v = Value::Map(vec![
            ("a".to_owned(), Value::U64(1)),
            (
                "b".to_owned(),
                Value::Seq(vec![Value::F64(1.5), Value::Null]),
            ),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[1.5,null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"x": -3, "y": [true, false, "s\n"], "z": 2.25, "w": null}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v.get("x").unwrap().as_i64(), Some(-3));
        assert_eq!(v.get("z").unwrap().as_f64(), Some(2.25));
        assert_eq!(v.get("w"), Some(&Value::Null));
        let back: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn integers_preserve_width() {
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }
}
