//! Offline stand-in for `bytes`: the reading/writing subset this workspace
//! uses for binary trace encoding. [`Bytes`] is an owned buffer with a read
//! cursor; [`BytesMut`] is a growable write buffer.

use std::sync::Arc;

/// Cursor-style reading over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// All `get_*` methods panic if the buffer is exhausted.
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

/// Append-style writing into a byte buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

/// An immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    /// Wraps a static byte slice.
    pub fn from_static(data: &'static [u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Remaining (unread) length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the remaining bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "buffer exhausted");
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

impl AsRef<[u8]> for Bytes {
    /// The remaining bytes as a slice.
    fn as_ref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self {
            data: Arc::new(data),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

/// A growable byte buffer for writing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Written length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u32_le(0xAABBCCDD);
        w.put_u64_le(u64::MAX - 1);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 13);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xAABBCCDD);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer exhausted")]
    fn overread_panics() {
        let mut b = Bytes::from_static(b"ab");
        b.get_u32_le();
    }

    #[test]
    fn to_vec_reflects_cursor() {
        let mut b = Bytes::from(vec![1, 2, 3]);
        b.get_u8();
        assert_eq!(b.to_vec(), vec![2, 3]);
        assert_eq!(b.len(), 2);
    }
}
