//! Umbrella library for the HotGauge reproduction's integration tests and
//! examples. Re-exports every crate of the workspace.

pub use hotgauge_core as core;
pub use hotgauge_floorplan as floorplan;
pub use hotgauge_perf as perf;
pub use hotgauge_power as power;
pub use hotgauge_thermal as thermal;
pub use hotgauge_workloads as workloads;
