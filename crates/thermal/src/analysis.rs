//! Stack-level analyses: junction-to-ambient resistance Ψ_j,a and TDP
//! (Table IV of the paper).

use crate::model::ThermalModel;
use crate::solver::CgConfig;

/// Result of the Ψ / TDP analysis for one thermal stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsiTdp {
    /// Junction-to-ambient thermal resistance, °C/W: peak active-layer
    /// temperature rise over ambient per watt of uniformly dissipated power.
    pub psi_c_per_w: f64,
    /// Thermal design power for the given budget, W.
    pub tdp_w: f64,
}

/// Thermal budget used in the paper's TDP estimate: 40 °C local ambient and
/// 100 °C maximum operating temperature (§III-D).
pub const PAPER_THERMAL_BUDGET_C: f64 = 60.0;

/// Computes Ψ_j,a by dissipating `probe_power_w` uniformly across the die
/// and reading the peak steady-state active-layer rise, then derives the TDP
/// as `budget / Ψ`.
///
/// The probe power only sets the numerical scale — the model is linear, so
/// Ψ is power-independent.
pub fn psi_tdp(model: &ThermalModel, budget_c: f64, probe_power_w: f64) -> PsiTdp {
    assert!(probe_power_w > 0.0 && budget_c > 0.0);
    let s = model.stack();
    let cells = s.nx_die * s.ny_die;
    let per_cell = probe_power_w / cells as f64;
    let (t, stats) = model.steady_state(
        &vec![per_cell; cells],
        &CgConfig {
            tolerance: 1e-10,
            max_iterations: 100_000,
        },
    );
    assert!(stats.converged, "steady solve failed: {stats:?}");
    let frame = model.die_frame_of(&t);
    let psi = (frame.max() - s.ambient_c) / probe_power_w;
    PsiTdp {
        psi_c_per_w: psi,
        tdp_w: budget_c / psi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackDescription;

    fn model_for_die(area_mm2: f64, cell_um: f64) -> ThermalModel {
        // Square die of the given area.
        let side_mm = area_mm2.sqrt();
        let n = (side_mm * 1000.0 / cell_um).round() as usize;
        ThermalModel::new(StackDescription::client_cpu(n, n, cell_um))
    }

    #[test]
    fn psi_is_power_independent() {
        let m = model_for_die(20.0, 500.0);
        let a = psi_tdp(&m, 60.0, 1.0);
        let b = psi_tdp(&m, 60.0, 25.0);
        assert!(
            (a.psi_c_per_w - b.psi_c_per_w).abs() < 1e-6 * a.psi_c_per_w,
            "{} vs {}",
            a.psi_c_per_w,
            b.psi_c_per_w
        );
    }

    #[test]
    fn psi_increases_as_die_shrinks() {
        // Table IV: Ψ rises 0.96 -> 1.13 -> 1.40 °C/W as the die shrinks,
        // because the heatsink stays the same while the IC gets smaller.
        let big = psi_tdp(&model_for_die(60.0, 500.0), 60.0, 10.0);
        let mid = psi_tdp(&model_for_die(30.0, 500.0), 60.0, 10.0);
        let small = psi_tdp(&model_for_die(15.0, 500.0), 60.0, 10.0);
        assert!(big.psi_c_per_w < mid.psi_c_per_w);
        assert!(mid.psi_c_per_w < small.psi_c_per_w);
        // And TDP falls correspondingly.
        assert!(big.tdp_w > mid.tdp_w && mid.tdp_w > small.tdp_w);
    }

    #[test]
    fn tdp_is_budget_over_psi() {
        let m = model_for_die(20.0, 500.0);
        let r = psi_tdp(&m, 60.0, 10.0);
        assert!((r.tdp_w * r.psi_c_per_w - 60.0).abs() < 1e-9);
    }
}
