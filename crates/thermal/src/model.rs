//! Finite-volume RC-network assembly and the transient/steady solvers —
//! the Rust equivalent of 3D-ICE's compact transient thermal model.
//!
//! Discretization: each layer is divided vertically into sublayers and
//! in-plane into square cells. Every cell is a node of a thermal RC network:
//!
//! * lateral conductance between in-plane neighbors uses the series
//!   (harmonic-mean) combination of the two half-cells,
//! * vertical conductance between stacked cells combines the two half
//!   thicknesses in series,
//! * the top of the last layer sees a convective film conductance
//!   `h · A_cell` to the ambient (the heatsink fins + fan),
//! * every other boundary is adiabatic (as in 3D-ICE's default).
//!
//! The transient problem `C dT/dt = −G T + q` is integrated with backward
//! Euler, giving the SPD system `(C/Δt + G) T' = C/Δt·T + q`. Because the
//! system matrix is constant for a fixed `Δt`, the solve is dispatched
//! through a [`SolverStrategy`]: a factor-once sparse Cholesky
//! ([`crate::chol`]) that reduces each step to two triangular sweeps, or
//! warm-started preconditioned CG ([`crate::solver`]). The direct path
//! automatically falls back to CG when the factorization rejects the matrix
//! (envelope over budget — see DESIGN.md, "Solver strategy").

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::chol::{CholOptions, CholeskyFactor};
use crate::frame::ThermalFrame;
use crate::solver::{
    solve_cg, solve_cg_multi, solve_cg_with, CgConfig, CgWorkspace, MultiCgWorkspace, SolveStats,
    MAX_LOCKSTEP_WIDTH,
};
use crate::sparse::{CsrMatrix, TripletBuilder};
use crate::stack::StackDescription;
use serde::{Deserialize, Serialize};

/// Which linear solver [`ThermalSim::step`] uses for the constant
/// backward-Euler system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SolverStrategy {
    /// Factor `C/Δt + G` once (RCM + skyline Cholesky), then two triangular
    /// sweeps per step. Falls back to [`SolverStrategy::Cg`] when the
    /// factorization rejects the matrix (profile over budget / not SPD).
    #[default]
    DirectCholesky,
    /// Warm-started Jacobi-preconditioned conjugate gradients.
    Cg,
}

impl SolverStrategy {
    /// The CLI spelling of this strategy (`direct` / `cg`).
    pub fn as_str(self) -> &'static str {
        match self {
            SolverStrategy::DirectCholesky => "direct",
            SolverStrategy::Cg => "cg",
        }
    }
}

impl std::fmt::Display for SolverStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for SolverStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "direct" => Ok(SolverStrategy::DirectCholesky),
            "cg" => Ok(SolverStrategy::Cg),
            other => Err(format!("unknown solver '{other}' (expected direct|cg)")),
        }
    }
}

/// Assembled thermal RC network for a [`StackDescription`].
#[derive(Debug, Clone)]
pub struct ThermalModel {
    stack: StackDescription,
    nx: usize,
    ny: usize,
    /// Layer index of each level.
    level_layer: Vec<usize>,
    /// Conductance matrix G (includes the convective diagonal term).
    g: CsrMatrix,
    /// Heat capacity per node, J/K.
    cap: Vec<f64>,
    /// Grounded (ambient) conductance per node, W/K — nonzero on top level.
    conv: Vec<f64>,
    /// Level index of the active (heat-injection) layer = 0.
    active_level: usize,
}

impl ThermalModel {
    /// Assembles the RC network.
    ///
    /// # Panics
    ///
    /// Panics if the stack fails validation.
    pub fn new(stack: StackDescription) -> Self {
        stack
            .validate()
            // hotgauge-lint: allow(L001, "stacks come from the StackDescription presets, validated by construction; a failure is a preset bug, not user input")
            .unwrap_or_else(|e| panic!("invalid stack: {e}"));
        let nx = stack.nx();
        let ny = stack.ny();
        let levels = stack.levels();
        let n = nx * ny * levels;

        // Map level -> (layer index, sublayer thickness).
        let mut level_layer = Vec::with_capacity(levels);
        for (li, layer) in stack.layers.iter().enumerate() {
            for _ in 0..layer.sublayers {
                level_layer.push(li);
            }
        }

        let cell = stack.cell;
        let area = cell * cell;
        let b = stack.border_cells;
        let in_die = |ix: usize, iy: usize| -> bool {
            ix >= b && ix < b + stack.nx_die && iy >= b && iy < b + stack.ny_die
        };
        // Conductivity of the cell at (level, iy, ix), honoring the filler
        // material in border cells of die-confined layers.
        let k_of = |l: usize, iy: usize, ix: usize| -> f64 {
            let layer = &stack.layers[level_layer[l]];
            if layer.full_extent || in_die(ix, iy) {
                layer.material.conductivity
            } else {
                stack.filler.conductivity
            }
        };
        let c_of = |l: usize, iy: usize, ix: usize| -> f64 {
            let layer = &stack.layers[level_layer[l]];
            if layer.full_extent || in_die(ix, iy) {
                layer.material.heat_capacity
            } else {
                stack.filler.heat_capacity
            }
        };
        let thick = |l: usize| -> f64 { stack.layers[level_layer[l]].sublayer_thickness() };
        let node = |l: usize, iy: usize, ix: usize| -> usize { (l * ny + iy) * nx + ix };

        let mut builder = TripletBuilder::new(n);
        let mut cap = vec![0.0f64; n];
        let mut conv = vec![0.0f64; n];

        for l in 0..levels {
            let tz = thick(l);
            for iy in 0..ny {
                for ix in 0..nx {
                    let i = node(l, iy, ix);
                    cap[i] = area * tz * c_of(l, iy, ix);
                    let ki = k_of(l, iy, ix);
                    // Lateral neighbors (+x, +y) — add each edge once.
                    if ix + 1 < nx {
                        let kj = k_of(l, iy, ix + 1);
                        // A = tz*cell, distance = cell; harmonic mean of k.
                        let g = tz * 2.0 * ki * kj / (ki + kj);
                        builder.add_conductance(i, node(l, iy, ix + 1), g);
                    }
                    if iy + 1 < ny {
                        let kj = k_of(l, iy + 1, ix);
                        let g = tz * 2.0 * ki * kj / (ki + kj);
                        builder.add_conductance(i, node(l, iy + 1, ix), g);
                    }
                    // Vertical neighbor (+z).
                    if l + 1 < levels {
                        let kj = k_of(l + 1, iy, ix);
                        let tzj = thick(l + 1);
                        let g = area / (tz / (2.0 * ki) + tzj / (2.0 * kj));
                        builder.add_conductance(i, node(l + 1, iy, ix), g);
                    } else {
                        // Top boundary: convection to ambient.
                        let gc = stack.h_top * area;
                        builder.add_grounded_conductance(i, gc);
                        conv[i] = gc;
                    }
                }
            }
        }

        let _ = levels;
        Self {
            stack,
            nx,
            ny,
            level_layer,
            g: builder.build(),
            cap,
            conv,
            active_level: 0,
        }
    }

    /// The stack this model was assembled from.
    pub fn stack(&self) -> &StackDescription {
        &self.stack
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.g.n()
    }

    /// Layer index of a given vertical level.
    pub fn layer_of_level(&self, level: usize) -> usize {
        self.level_layer[level]
    }

    /// The conductance matrix (for inspection/testing).
    pub fn conductance(&self) -> &CsrMatrix {
        &self.g
    }

    /// Per-node heat capacities, J/K.
    pub fn capacitance(&self) -> &[f64] {
        &self.cap
    }

    /// Node index for `(level, iy, ix)` in full-domain coordinates.
    pub fn node_index(&self, level: usize, iy: usize, ix: usize) -> usize {
        (level * self.ny + iy) * self.nx + ix
    }

    /// Expands a die-region active-layer power map (`nx_die × ny_die`, watts
    /// per cell) into a full-domain per-node heat vector.
    ///
    /// # Panics
    ///
    /// Panics if `die_power.len() != nx_die * ny_die`.
    pub fn inject_die_power(&self, die_power: &[f64]) -> Vec<f64> {
        let mut q = vec![0.0; self.node_count()];
        self.inject_die_power_into(die_power, &mut q);
        q
    }

    /// Allocation-free variant of [`ThermalModel::inject_die_power`]: fills
    /// a caller-owned full-domain buffer (used by the lockstep stepper,
    /// which rebuilds the heat vector once per lane per step).
    ///
    /// # Panics
    ///
    /// Panics if `die_power.len() != nx_die * ny_die` or `q` is not
    /// full-domain sized.
    pub fn inject_die_power_into(&self, die_power: &[f64], q: &mut [f64]) {
        let s = &self.stack;
        assert_eq!(
            die_power.len(),
            s.nx_die * s.ny_die,
            "power map must cover the die grid"
        );
        assert_eq!(q.len(), self.node_count(), "q must be full-domain sized");
        q.fill(0.0);
        let b = s.border_cells;
        for dy in 0..s.ny_die {
            for dx in 0..s.nx_die {
                let i = self.node_index(self.active_level, dy + b, dx + b);
                q[i] = die_power[dy * s.nx_die + dx];
            }
        }
    }

    /// Steady-state temperatures for the given die power map (°C, full
    /// domain). Uses the ambient from the stack description.
    pub fn steady_state(&self, die_power: &[f64], cg: &CgConfig) -> (Vec<f64>, SolveStats) {
        let mut rhs = self.inject_die_power(die_power);
        for (i, r) in rhs.iter_mut().enumerate() {
            *r += self.conv[i] * self.stack.ambient_c;
        }
        let mut t = vec![self.stack.ambient_c; self.node_count()];
        let stats = solve_cg(&self.g, &rhs, &mut t, cg);
        (t, stats)
    }

    /// Extracts the die-region temperatures of the active layer from a
    /// full-domain state vector.
    pub fn die_frame_of(&self, state: &[f64]) -> ThermalFrame {
        self.die_frame_of_with_max(state).0
    }

    /// [`ThermalModel::die_frame_of`] plus the frame's maximum temperature,
    /// folded during extraction (same `fold(NEG_INFINITY, f64::max)` as
    /// [`ThermalFrame::max`]) so callers that need the peak — e.g. the
    /// pipeline's sub-threshold analysis prefilter — avoid a second pass.
    pub fn die_frame_of_with_max(&self, state: &[f64]) -> (ThermalFrame, f64) {
        self.die_frame_of_with_max_into(state, Vec::new())
    }

    /// [`ThermalModel::die_frame_of_with_max`] recycling a retired frame's
    /// storage: `buf` is cleared and refilled in place, so steady-state
    /// extraction (e.g. the pipeline's per-substep frames) allocates
    /// nothing once the buffer pool is primed. The returned frame is
    /// bit-identical to a fresh extraction.
    pub fn die_frame_of_with_max_into(
        &self,
        state: &[f64],
        mut buf: Vec<f64>,
    ) -> (ThermalFrame, f64) {
        let s = &self.stack;
        let b = s.border_cells;
        buf.clear();
        buf.reserve(s.nx_die * s.ny_die);
        let mut max = f64::NEG_INFINITY;
        for dy in 0..s.ny_die {
            for dx in 0..s.nx_die {
                let t = state[self.node_index(self.active_level, dy + b, dx + b)];
                max = max.max(t);
                buf.push(t);
            }
        }
        (ThermalFrame::new(s.nx_die, s.ny_die, s.cell, buf), max)
    }
}

/// The solver state cached alongside the backward-Euler matrix: either a
/// Cholesky factor plus sweep scratch, or a CG workspace.
#[derive(Debug, Clone)]
enum SysSolver {
    Direct {
        factor: Arc<CholeskyFactor>,
        work: Vec<f64>,
    },
    Cg(CgWorkspace),
}

/// Per-`Δt` cache: the assembled system matrix and its prepared solver.
/// The matrix is `Arc`-shared so cloned lockstep lanes (and the lane-shared
/// multi-RHS solve) reference one copy instead of duplicating it per lane.
#[derive(Debug, Clone)]
struct SysCache {
    dt: f64,
    m: Arc<CsrMatrix>,
    solver: SysSolver,
}

/// A transient thermal simulation: a [`ThermalModel`] plus the evolving
/// temperature state and a cached backward-Euler system matrix with its
/// prepared solver (factorization or CG workspace).
#[derive(Debug, Clone)]
pub struct ThermalSim {
    model: ThermalModel,
    /// Current temperatures, °C, full domain.
    t: Vec<f64>,
    /// State one step ago, for the CG path's linear-extrapolation warm
    /// start (valid only when `have_prev`).
    prev: Vec<f64>,
    have_prev: bool,
    /// Cached system for the last `Δt` seen.
    sys: Option<SysCache>,
    strategy: SolverStrategy,
    /// CG configuration used for the implicit solves (and steady states).
    pub cg: CgConfig,
    /// Factorization budget for the direct strategy.
    pub chol: CholOptions,
    /// Thread budget for the level-scheduled triangular sweeps of the
    /// direct solver (`0` = one per hardware thread, `1` = serial).
    /// Threading never changes results — the sweeps are bit-identical at
    /// every budget — so this is purely a performance knob.
    solver_threads: usize,
    /// Live count of sweep-executor workers donated to this simulation's
    /// solves (see `hotgauge-core`'s sweep executor): added on top of
    /// `solver_threads` at solve time so the run on the critical path can
    /// use threads that have already retired from the work-stealing scan.
    donated: Option<Arc<AtomicUsize>>,
}

impl ThermalSim {
    /// Creates a simulation with all nodes at `init_c` °C.
    ///
    /// Uses [`SolverStrategy::Cg`] by default for backward compatibility;
    /// the co-sim pipeline opts into the direct solver through
    /// [`ThermalSim::set_strategy`].
    pub fn new(model: ThermalModel, init_c: f64) -> Self {
        let n = model.node_count();
        Self {
            model,
            t: vec![init_c; n],
            prev: vec![init_c; n],
            have_prev: false,
            sys: None,
            strategy: SolverStrategy::Cg,
            cg: CgConfig {
                tolerance: 1e-7,
                max_iterations: 20_000,
            },
            chol: CholOptions::default(),
            solver_threads: 1,
            donated: None,
        }
    }

    /// The configured triangular-sweep thread budget (`0` = auto).
    pub fn solver_threads(&self) -> usize {
        self.solver_threads
    }

    /// Sets the triangular-sweep thread budget: `0` resolves to one thread
    /// per hardware thread, `1` forces the serial sweeps, `N` allows up to
    /// `N` scoped shards per dependency level. Results are bit-identical at
    /// every setting, so no prepared state is invalidated.
    pub fn set_solver_threads(&mut self, threads: usize) {
        self.solver_threads = threads;
    }

    /// Installs (or clears) the idle-worker donation counter shared with a
    /// sweep executor. The current value of the counter is added to the
    /// solve-time thread budget, letting retired sweep workers boost the
    /// run still on the critical path.
    pub fn set_donated_workers(&mut self, donated: Option<Arc<AtomicUsize>>) {
        self.donated = donated;
    }

    /// The thread budget for the next triangular sweep: the configured
    /// budget (auto-resolved) plus any donated idle sweep workers.
    fn effective_solver_threads(&self) -> usize {
        let base = match self.solver_threads {
            0 => crate::sparse::hardware_threads(),
            n => n,
        };
        let donated = self
            .donated
            .as_ref()
            .map_or(0, |d| d.load(Ordering::Relaxed));
        base.saturating_add(donated)
    }

    /// The configured solver strategy (what was requested, not necessarily
    /// what runs — see [`ThermalSim::active_solver`]).
    pub fn strategy(&self) -> SolverStrategy {
        self.strategy
    }

    /// Selects the solver strategy, invalidating any prepared system.
    /// Also useful after changing [`ThermalSim::chol`] budgets to force
    /// re-preparation with the new options.
    pub fn set_strategy(&mut self, strategy: SolverStrategy) {
        self.strategy = strategy;
        self.sys = None;
    }

    /// The solver actually in use for the prepared system, after any
    /// direct-to-CG fallback. `None` until [`ThermalSim::prepare`] or the
    /// first [`ThermalSim::step`].
    pub fn active_solver(&self) -> Option<SolverStrategy> {
        self.sys.as_ref().map(|c| match c.solver {
            SysSolver::Direct { .. } => SolverStrategy::DirectCholesky,
            SysSolver::Cg(_) => SolverStrategy::Cg,
        })
    }

    /// The underlying model.
    pub fn model(&self) -> &ThermalModel {
        &self.model
    }

    /// Current full-domain state (°C).
    pub fn state(&self) -> &[f64] {
        &self.t
    }

    /// Replaces the full-domain state (e.g. with a warmed-up initial
    /// condition — the paper's non-uniform temperature initialization).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn set_state(&mut self, state: Vec<f64>) {
        assert_eq!(state.len(), self.model.node_count());
        self.t = state;
        self.have_prev = false;
    }

    /// Sets every node to `t_c` °C.
    pub fn set_uniform(&mut self, t_c: f64) {
        self.t.fill(t_c);
        self.have_prev = false;
    }

    /// Ensures the backward-Euler system for `dt` is assembled and its
    /// solver prepared (Cholesky factorization or CG workspace). Called
    /// implicitly by [`ThermalSim::step`]; call it eagerly to move the
    /// one-time factorization cost out of the first step.
    ///
    /// # Panics
    ///
    /// Panics unless `dt` is finite and positive.
    pub fn prepare(&mut self, dt: f64) {
        assert!(dt.is_finite() && dt > 0.0, "dt must be positive");
        if let Some(c) = &self.sys {
            if (c.dt - dt).abs() <= 1e-15 * dt {
                return;
            }
        }
        let mut m = self.model.g.clone();
        let cdt: Vec<f64> = self.model.cap.iter().map(|c| c / dt).collect();
        m.add_to_diagonal(&cdt);
        let m = Arc::new(m);
        let solver = match self.strategy {
            SolverStrategy::Cg => SysSolver::Cg(CgWorkspace::new(&m)),
            SolverStrategy::DirectCholesky => match CholeskyFactor::factor(&m, &self.chol) {
                Ok(f) => SysSolver::Direct {
                    factor: Arc::new(f),
                    work: vec![0.0; m.n()],
                },
                Err(_) => {
                    // Envelope over budget (or numerically not SPD): the
                    // crossover where triangular sweeps stream more memory
                    // than warm-started CG touches. Fall back.
                    hotgauge_telemetry::counter!("thermal.direct_fallbacks", 1);
                    SysSolver::Cg(CgWorkspace::new(&m))
                }
            },
        };
        self.sys = Some(SysCache { dt, m, solver });
    }

    /// Advances the simulation by `dt` seconds with the given die-region
    /// active-layer power map (watts per cell), using backward Euler.
    ///
    /// Direct solves are exact (to rounding) and report zero iterations and
    /// zero residual in the returned stats.
    pub fn step(&mut self, die_power: &[f64], dt: f64) -> SolveStats {
        // Backward-Euler is unconditionally stable but only for a real,
        // positive step; a zero/negative/NaN dt silently corrupts the
        // system matrix scaling.
        debug_assert!(
            dt.is_finite() && dt > 0.0,
            "thermal step requires a finite positive dt, got {dt}",
        );
        self.prepare(dt);

        let mut rhs = self.model.inject_die_power(die_power);
        let amb = self.model.stack.ambient_c;
        for (i, r) in rhs.iter_mut().enumerate() {
            *r += self.model.cap[i] / dt * self.t[i] + self.model.conv[i] * amb;
        }
        let solve_threads = self.effective_solver_threads();
        // hotgauge-lint: allow(L001, "prepare(dt) on the line above always fills self.sys")
        let cache = self.sys.as_mut().expect("system prepared above");
        match &mut cache.solver {
            SysSolver::Direct { factor, work } => {
                self.have_prev = false;
                factor.solve_with_threads(&rhs, &mut self.t, work, solve_threads);
                hotgauge_telemetry::counter!("thermal.direct_solves", 1);
                SolveStats {
                    iterations: 0,
                    relative_residual: 0.0,
                    converged: true,
                }
            }
            SysSolver::Cg(ws) => {
                // Warm start by linear extrapolation: the guess 2·Tₙ − Tₙ₋₁
                // has O(Δt²) error against the smooth thermal trajectory
                // (vs O(Δt) for plain Tₙ), which saves CG iterations. The
                // previous state is saved in the same pass.
                for (ti, pi) in self.t.iter_mut().zip(self.prev.iter_mut()) {
                    let tn = *ti;
                    if self.have_prev {
                        *ti = 2.0 * tn - *pi;
                    }
                    *pi = tn;
                }
                self.have_prev = true;
                let stats = solve_cg_with(&cache.m, &rhs, &mut self.t, &self.cg, ws);
                hotgauge_telemetry::counter!("thermal.cg_iterations", stats.iterations);
                hotgauge_telemetry::counter!("thermal.cg_residual", stats.relative_residual);
                stats
            }
        }
    }

    /// Advances by `dt` split into `substeps` equal backward-Euler steps
    /// (reduces the implicit method's damping of fast transients).
    pub fn step_sub(&mut self, die_power: &[f64], dt: f64, substeps: usize) -> SolveStats {
        assert!(substeps >= 1);
        debug_assert!(
            dt.is_finite() && dt > 0.0,
            "thermal step requires a finite positive dt, got {dt}",
        );
        let sub = dt / substeps as f64;
        let mut last = SolveStats {
            iterations: 0,
            relative_residual: 0.0,
            converged: true,
        };
        for _ in 0..substeps {
            last = self.step(die_power, sub);
        }
        last
    }

    /// Runs to steady state for the given power and adopts it as the current
    /// state. Returns the solve stats.
    pub fn settle_to_steady(&mut self, die_power: &[f64]) -> SolveStats {
        let (t, stats) = self.model.steady_state(die_power, &self.cg);
        self.t = t;
        self.have_prev = false;
        stats
    }

    /// The active-layer die-region temperature frame of the current state.
    pub fn die_frame(&self) -> ThermalFrame {
        self.model.die_frame_of(&self.t)
    }

    /// [`ThermalSim::die_frame`] plus the frame's maximum temperature,
    /// tracked during extraction (no second pass over the grid).
    pub fn die_frame_with_max(&self) -> (ThermalFrame, f64) {
        self.model.die_frame_of_with_max(&self.t)
    }

    /// [`ThermalSim::die_frame_with_max`] recycling a retired frame's
    /// storage (see [`ThermalModel::die_frame_of_with_max_into`]).
    pub fn die_frame_with_max_into(&self, buf: Vec<f64>) -> (ThermalFrame, f64) {
        self.model.die_frame_of_with_max_into(&self.t, buf)
    }

    /// Total thermal energy stored relative to a reference temperature, J.
    pub fn stored_energy(&self, ref_c: f64) -> f64 {
        self.t
            .iter()
            .zip(&self.model.cap)
            .map(|(t, c)| (t - ref_c) * c)
            .sum()
    }
}

/// Reusable scratch for [`step_lockstep`]: the node-major lane-minor SoA
/// right-hand-side and solution blocks, the triangular-sweep work buffer,
/// and the lane-shared multi-RHS CG workspace. Buffers are sized lazily on
/// first use and grown whenever the lane count or grid changes, so one
/// scratch serves a whole sweep of lockstep batches.
#[derive(Debug, Default)]
pub struct LockstepScratch {
    /// `[n × k]` SoA right-hand sides, `rhs[node*k + lane]`.
    rhs: Vec<f64>,
    /// `[n × k]` SoA solutions / warm-start guesses.
    x: Vec<f64>,
    /// `[n × k]` permuted scratch for the direct triangular sweeps.
    work: Vec<f64>,
    /// Full-domain heat-vector staging for one lane at a time.
    q: Vec<f64>,
    /// CG workspace keyed by the system matrix it was preconditioned for
    /// (rebuilt when the batch's `Δt` — and hence the matrix — changes).
    cg: Option<(Arc<CsrMatrix>, MultiCgWorkspace)>,
    /// Per-lane outcomes of the last step.
    stats: Vec<SolveStats>,
}

impl LockstepScratch {
    /// An empty scratch; buffers are allocated on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Advances `k` same-system simulations by `dt` in lockstep: one multi-RHS
/// solve over a `[n × k]` SoA temperature block instead of `k` independent
/// solves, streaming the factor / matrix index lists once for all lanes.
///
/// Every lane replicates the exact floating-point operation sequence of a
/// solo [`ThermalSim::step`] — the rhs build, the CG warm-start
/// extrapolation, and the per-lane solve columns (see [`solve_cg_multi`] and
/// [`CholeskyFactor::solve_multi`]) — so each lane's state and stats are
/// bitwise identical to stepping that lane alone. Lanes whose prepared
/// systems turn out heterogeneous (different grid, solver arm, or CG
/// config) fall back to per-lane solo steps, which is trivially exact.
///
/// The solve is shared through lane 0's cached system; lanes must have been
/// built from the same model and solver configuration, which makes every
/// lane's assembled matrix (and factor) bitwise identical by deterministic
/// construction.
///
/// Returns per-lane stats borrowed from `scratch`.
///
/// # Panics
///
/// Panics if `sims` is empty, lane counts mismatch, `k` exceeds
/// [`MAX_LOCKSTEP_WIDTH`], or `dt` is not finite and positive.
pub fn step_lockstep<'a>(
    sims: &mut [&mut ThermalSim],
    die_powers: &[&[f64]],
    dt: f64,
    scratch: &'a mut LockstepScratch,
) -> &'a [SolveStats] {
    let k = sims.len();
    assert!(k >= 1, "lockstep step needs at least one lane");
    assert!(
        k <= MAX_LOCKSTEP_WIDTH,
        "lane count over MAX_LOCKSTEP_WIDTH"
    );
    assert_eq!(k, die_powers.len(), "one power map per lane");
    scratch.stats.clear();
    if k == 1 {
        let stats = sims[0].step(die_powers[0], dt);
        scratch.stats.push(stats);
        return &scratch.stats;
    }
    for sim in sims.iter_mut() {
        sim.prepare(dt);
    }
    let n = sims[0].model.node_count();
    let solver0 = sims[0].active_solver();
    let cg0 = sims[0].cg;
    let homogeneous = sims
        .iter()
        .all(|s| s.model.node_count() == n && s.active_solver() == solver0 && s.cg == cg0);
    if !homogeneous {
        for (sim, power) in sims.iter_mut().zip(die_powers) {
            let stats = sim.step(power, dt);
            scratch.stats.push(stats);
        }
        return &scratch.stats;
    }

    let direct = solver0 == Some(SolverStrategy::DirectCholesky);
    let nk = n * k;
    scratch.rhs.resize(nk, 0.0);
    scratch.x.resize(nk, 0.0);
    scratch.q.resize(n, 0.0);
    for (l, (sim, power)) in sims.iter_mut().zip(die_powers).enumerate() {
        sim.model.inject_die_power_into(power, &mut scratch.q);
        let amb = sim.model.stack.ambient_c;
        // Same per-element arithmetic (and association) as the solo rhs
        // build: q[i] += cap[i]/dt·t[i] + conv[i]·ambient.
        for (i, &qi) in scratch.q.iter().enumerate() {
            scratch.rhs[i * k + l] =
                qi + (sim.model.cap[i] / dt * sim.t[i] + sim.model.conv[i] * amb);
        }
        if direct {
            sim.have_prev = false;
        } else {
            // The solo warm start, verbatim: extrapolate 2·Tₙ − Tₙ₋₁ and
            // save Tₙ in the same pass.
            for (ti, pi) in sim.t.iter_mut().zip(sim.prev.iter_mut()) {
                let tn = *ti;
                if sim.have_prev {
                    *ti = 2.0 * tn - *pi;
                }
                *pi = tn;
            }
            sim.have_prev = true;
            for (i, &ti) in sim.t.iter().enumerate() {
                scratch.x[i * k + l] = ti;
            }
        }
    }

    {
        let _span = hotgauge_telemetry::span!("solver.multi_rhs");
        if direct {
            let Some(SysCache {
                solver: SysSolver::Direct { factor, .. },
                ..
            }) = &sims[0].sys
            else {
                // hotgauge-lint: allow(L001, "prepare() above filled sys for every lane and the homogeneity check pinned the solver arm to Direct")
                unreachable!("homogeneity check pinned the direct arm")
            };
            let factor = Arc::clone(factor);
            let solve_threads = sims[0].effective_solver_threads();
            scratch.work.resize(nk, 0.0);
            factor.solve_multi_with_threads(
                k,
                &scratch.rhs,
                &mut scratch.x,
                &mut scratch.work,
                solve_threads,
            );
            hotgauge_telemetry::counter!("thermal.direct_solves", k);
            for _ in 0..k {
                scratch.stats.push(SolveStats {
                    iterations: 0,
                    relative_residual: 0.0,
                    converged: true,
                });
            }
        } else {
            let Some(cache) = &sims[0].sys else {
                // hotgauge-lint: allow(L001, "prepare() above filled sys for every lane")
                unreachable!("system prepared above")
            };
            let m = Arc::clone(&cache.m);
            let rebuild = match &scratch.cg {
                Some((prev_m, ws)) => !Arc::ptr_eq(prev_m, &m) || ws.k() != k,
                None => true,
            };
            if rebuild {
                scratch.cg = Some((Arc::clone(&m), MultiCgWorkspace::new(&m, k)));
            }
            // hotgauge-lint: allow(L001, "the rebuild branch above just filled scratch.cg")
            let (_, ws) = scratch.cg.as_mut().expect("workspace built above");
            solve_cg_multi(&m, &scratch.rhs, &mut scratch.x, &cg0, ws);
            for stats in ws.stats() {
                hotgauge_telemetry::counter!("thermal.cg_iterations", stats.iterations);
                hotgauge_telemetry::counter!("thermal.cg_residual", stats.relative_residual);
            }
            scratch.stats.extend_from_slice(ws.stats());
        }
    }

    for (l, sim) in sims.iter_mut().enumerate() {
        for (i, ti) in sim.t.iter_mut().enumerate() {
            *ti = scratch.x[i * k + l];
        }
    }
    &scratch.stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::materials::Material;
    use crate::stack::{Layer, StackDescription};

    /// A small stack with no border for analytic 1-D comparisons.
    fn stack_1d(nx: usize, ny: usize) -> StackDescription {
        StackDescription {
            layers: vec![
                Layer::new("active", Material::SILICON, 20e-6, 1, false),
                Layer::new("bulk", Material::SILICON, 360e-6, 3, false),
                Layer::new("tim", Material::SOLDER_TIM, 200e-6, 1, false),
                Layer::new("cu", Material::COPPER, 3e-3, 3, false),
            ],
            nx_die: nx,
            ny_die: ny,
            cell: 100e-6,
            border_cells: 0,
            filler: Material::MOLD_FILLER,
            h_top: 2000.0,
            ambient_c: 40.0,
        }
    }

    #[test]
    fn die_frame_with_max_matches_two_pass_extraction() {
        let s = stack_1d(8, 6);
        let model = ThermalModel::new(s);
        // A non-uniform state: make the tracked max land mid-grid.
        let mut state = vec![40.0; model.node_count()];
        for (i, v) in state.iter_mut().enumerate() {
            *v += (i % 13) as f64 * 0.7;
        }
        let (frame, max) = model.die_frame_of_with_max(&state);
        assert_eq!(frame, model.die_frame_of(&state));
        assert_eq!(max, frame.max());
    }

    #[test]
    fn steady_uniform_power_matches_series_resistance() {
        // Uniform power on every die cell -> pure 1-D conduction; the active
        // layer temperature must equal ambient + P_total * R_series where
        // R = sum(t_i / (k_i A)) + 1/(h A), with the active layer counting
        // only half of its own sublayer (cell center to boundary... for the
        // finite-volume scheme the node sits at the sublayer center).
        let s = stack_1d(10, 10);
        let area_total = s.die_area();
        let model = ThermalModel::new(s.clone());
        let p_cell = 0.01; // W
        let p_total = p_cell * 100.0;
        let (t, stats) = model.steady_state(&vec![p_cell; 100], &CgConfig::default());
        assert!(stats.converged);
        let frame = model.die_frame_of(&t);

        // Node-center-to-node-center resistances from the active node up.
        let mut r = 0.0;
        let layers = &s.layers;
        let mut segs: Vec<(f64, f64)> = Vec::new(); // (sub thickness, k)
        for l in layers {
            for _ in 0..l.sublayers {
                segs.push((l.sublayer_thickness(), l.material.conductivity));
            }
        }
        for w in segs.windows(2) {
            let (t1, k1) = w[0];
            let (t2, k2) = w[1];
            r += t1 / (2.0 * k1 * area_total) + t2 / (2.0 * k2 * area_total);
        }
        // Top node center to surface, then film.
        let (tl, kl) = *segs.last().unwrap();
        let _ = tl;
        let _ = kl;
        r += segs.last().unwrap().0 / (2.0 * segs.last().unwrap().1 * area_total);
        r += 1.0 / (2000.0 * area_total);

        let expect = 40.0 + p_total * r;
        let got = frame.mean();
        assert!(
            (got - expect).abs() < 0.02 * (expect - 40.0),
            "got {got}, expected {expect}"
        );
        // Uniform power, no border -> perfectly flat frame.
        assert!((frame.max() - frame.min()).abs() < 1e-6);
    }

    #[test]
    fn energy_conservation_without_convection_loss() {
        // Over a very short step almost no heat escapes through the film;
        // with h made tiny the added energy must all appear as stored energy.
        let mut s = stack_1d(6, 6);
        s.h_top = 1e-9;
        let model = ThermalModel::new(s);
        let mut sim = ThermalSim::new(model, 40.0);
        let p = vec![0.5; 36]; // 18 W total
        let dt = 1e-3;
        sim.cg.tolerance = 1e-12;
        sim.step(&p, dt);
        let stored = sim.stored_energy(40.0);
        let injected = 18.0 * dt;
        assert!(
            (stored - injected).abs() < 1e-6 * injected,
            "stored {stored}, injected {injected}"
        );
    }

    #[test]
    fn transient_approaches_steady_state() {
        let s = stack_1d(8, 8);
        let model = ThermalModel::new(s);
        let p = vec![0.05; 64];
        let (steady, _) = model.steady_state(&p, &CgConfig::default());
        let steady_frame = model.die_frame_of(&steady);

        let mut sim = ThermalSim::new(model, 40.0);
        for _ in 0..4000 {
            sim.step(&p, 5e-3);
        }
        let frame = sim.die_frame();
        // The slowest time constant of this small stack is seconds; after
        // 20 s of simulated time the transient should be within a few
        // percent of the steady solution (relative to the rise above ambient).
        let rise_t = frame.mean() - 40.0;
        let rise_s = steady_frame.mean() - 40.0;
        assert!(
            ((rise_t - rise_s) / rise_s).abs() < 0.05,
            "transient {} vs steady {}",
            frame.mean(),
            steady_frame.mean()
        );
    }

    #[test]
    fn hot_cell_creates_local_gradient() {
        let s = stack_1d(21, 21);
        let model = ThermalModel::new(s);
        let mut p = vec![0.0; 21 * 21];
        p[10 * 21 + 10] = 0.5; // 0.5 W in the center cell
        let (t, stats) = model.steady_state(&p, &CgConfig::default());
        assert!(stats.converged);
        let f = model.die_frame_of(&t);
        let center = f.at(10, 10);
        let corner = f.at(0, 0);
        assert!(center > corner + 1.0, "center {center}, corner {corner}");
        // Monotone decay along a row from the center.
        assert!(f.at(10, 10) > f.at(13, 10));
        assert!(f.at(13, 10) > f.at(17, 10));
    }

    #[test]
    fn symmetric_power_gives_symmetric_field() {
        let s = stack_1d(12, 12);
        let model = ThermalModel::new(s);
        let mut p = vec![0.0; 144];
        for iy in 0..12 {
            for ix in 0..12 {
                // Symmetric under x-mirror.
                let d = (ix as f64 - 5.5).abs();
                p[iy * 12 + ix] = 0.02 * (6.0 - d);
            }
        }
        let (t, _) = model.steady_state(
            &p,
            &CgConfig {
                tolerance: 1e-11,
                max_iterations: 50_000,
            },
        );
        let f = model.die_frame_of(&t);
        for iy in 0..12 {
            for ix in 0..6 {
                let a = f.at(ix, iy);
                let b = f.at(11 - ix, iy);
                assert!((a - b).abs() < 1e-6, "asymmetry at ({ix},{iy}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn temperatures_never_below_ambient_with_nonneg_power() {
        let s = stack_1d(8, 8);
        let model = ThermalModel::new(s);
        let mut sim = ThermalSim::new(model, 40.0);
        let p = vec![0.02; 64];
        for _ in 0..50 {
            sim.step(&p, 1e-3);
        }
        assert!(sim.state().iter().all(|&t| t >= 40.0 - 1e-6));
    }

    #[test]
    fn warmup_state_roundtrip() {
        let s = stack_1d(4, 4);
        let model = ThermalModel::new(s);
        let n = model.node_count();
        let mut sim = ThermalSim::new(model, 40.0);
        let state: Vec<f64> = (0..n).map(|i| 40.0 + (i % 7) as f64).collect();
        sim.set_state(state.clone());
        assert_eq!(sim.state(), &state[..]);
    }

    #[test]
    fn border_cells_use_filler_and_stay_cooler() {
        let mut s = stack_1d(10, 10);
        s.border_cells = 5;
        let model = ThermalModel::new(s);
        let p = vec![0.05; 100];
        let (t, _) = model.steady_state(&p, &CgConfig::default());
        // Active-level border cell (0,0) in full-domain coordinates vs die
        // center: the border (mold filler) must be cooler than the die.
        let border_t = t[model.node_index(0, 0, 0)];
        let center_t = t[model.node_index(0, 10, 10)];
        assert!(border_t + 1.0 < center_t);
    }

    #[test]
    fn substeps_track_single_step_closely_for_slow_transients() {
        let s = stack_1d(6, 6);
        let p = vec![0.05; 36];
        let model = ThermalModel::new(s);
        let mut a = ThermalSim::new(model.clone(), 40.0);
        let mut b = ThermalSim::new(model, 40.0);
        for _ in 0..10 {
            a.step(&p, 1e-3);
            b.step_sub(&p, 1e-3, 4);
        }
        let fa = a.die_frame();
        let fb = b.die_frame();
        // Finer stepping heats slightly faster (less implicit damping), and
        // both should be within a few percent of each other.
        let da = fa.mean() - 40.0;
        let db = fb.mean() - 40.0;
        assert!(db >= da - 1e-9, "substeps should not heat slower");
        assert!((db - da) / da.max(1e-9) < 0.2);
    }

    #[test]
    fn client_stack_assembles() {
        let s = StackDescription::client_cpu(30, 24, 200.0);
        let model = ThermalModel::new(s);
        assert!(model.node_count() > 0);
        assert!(model.conductance().is_symmetric(1e-9));
    }

    #[test]
    fn direct_and_cg_transients_agree_to_microkelvin() {
        let s = stack_1d(10, 10);
        let model = ThermalModel::new(s);
        let mut direct = ThermalSim::new(model.clone(), 40.0);
        direct.chol = CholOptions::unbounded();
        direct.set_strategy(SolverStrategy::DirectCholesky);
        let mut cg = ThermalSim::new(model, 40.0);
        cg.cg.tolerance = 1e-10;

        let mut p = vec![0.0; 100];
        for (i, pi) in p.iter_mut().enumerate() {
            *pi = 0.01 + 0.005 * ((i % 9) as f64);
        }
        for _ in 0..50 {
            direct.step(&p, 1e-3);
            cg.step(&p, 1e-3);
        }
        assert_eq!(direct.active_solver(), Some(SolverStrategy::DirectCholesky));
        for (a, b) in direct.state().iter().zip(cg.state()) {
            assert!((a - b).abs() < 1e-6, "direct {a} vs cg {b}");
        }
    }

    #[test]
    fn direct_strategy_falls_back_to_cg_over_budget() {
        let s = stack_1d(6, 6);
        let model = ThermalModel::new(s);
        let mut sim = ThermalSim::new(model, 40.0);
        sim.set_strategy(SolverStrategy::DirectCholesky);
        sim.chol.max_profile_entries = 1; // nothing fits
        let p = vec![0.1; 36];
        let stats = sim.step(&p, 1e-3);
        assert_eq!(sim.active_solver(), Some(SolverStrategy::Cg));
        assert!(stats.converged);
        assert!(stats.iterations > 0, "fallback must actually run CG");
    }

    #[test]
    fn set_strategy_invalidates_prepared_system() {
        let s = stack_1d(4, 4);
        let model = ThermalModel::new(s);
        let mut sim = ThermalSim::new(model, 40.0);
        sim.prepare(1e-3);
        assert_eq!(sim.active_solver(), Some(SolverStrategy::Cg));
        sim.chol = CholOptions::unbounded();
        sim.set_strategy(SolverStrategy::DirectCholesky);
        assert_eq!(sim.active_solver(), None);
        sim.prepare(1e-3);
        assert_eq!(sim.active_solver(), Some(SolverStrategy::DirectCholesky));
    }

    /// Distinct per-lane power maps so lanes diverge immediately.
    fn lane_powers(k: usize, cells: usize) -> Vec<Vec<f64>> {
        (0..k)
            .map(|l| {
                (0..cells)
                    .map(|i| 0.01 + 0.004 * ((i * (l + 3) + l) % 11) as f64)
                    .collect()
            })
            .collect()
    }

    /// Steps `k` lockstep lanes and `k` solo twins through `steps` steps and
    /// asserts bitwise-equal states and equal stats after every step.
    fn assert_lockstep_matches_solo(strategy: SolverStrategy, k: usize, steps: usize) {
        let s = stack_1d(9, 8);
        let model = ThermalModel::new(s);
        let cells = 9 * 8;
        let powers = lane_powers(k, cells);
        let make = |init: f64| {
            let mut sim = ThermalSim::new(model.clone(), init);
            sim.chol = CholOptions::unbounded();
            sim.set_strategy(strategy);
            sim
        };
        let mut lock: Vec<ThermalSim> = (0..k).map(|l| make(40.0 + l as f64)).collect();
        let mut solo: Vec<ThermalSim> = (0..k).map(|l| make(40.0 + l as f64)).collect();
        let mut scratch = LockstepScratch::new();
        for step in 0..steps {
            let solo_stats: Vec<SolveStats> = solo
                .iter_mut()
                .zip(&powers)
                .map(|(sim, p)| sim.step(p, 1e-3))
                .collect();
            let mut lanes: Vec<&mut ThermalSim> = lock.iter_mut().collect();
            let maps: Vec<&[f64]> = powers.iter().map(|p| p.as_slice()).collect();
            let lock_stats = step_lockstep(&mut lanes, &maps, 1e-3, &mut scratch).to_vec();
            assert_eq!(lock_stats, solo_stats, "stats diverged at step {step}");
            for (l, (a, b)) in lock.iter().zip(&solo).enumerate() {
                assert_eq!(a.active_solver(), b.active_solver());
                for (i, (x, y)) in a.state().iter().zip(b.state()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "lane {l} node {i} diverged at step {step}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn lockstep_cg_steps_are_bitwise_equal_to_solo_steps() {
        for k in [1, 2, 4, 8] {
            assert_lockstep_matches_solo(SolverStrategy::Cg, k, 5);
        }
    }

    #[test]
    fn lockstep_direct_steps_are_bitwise_equal_to_solo_steps() {
        for k in [1, 2, 4, 8] {
            assert_lockstep_matches_solo(SolverStrategy::DirectCholesky, k, 5);
        }
    }

    #[test]
    fn lockstep_falls_back_to_solo_on_heterogeneous_lanes() {
        let model = ThermalModel::new(stack_1d(6, 6));
        let powers = lane_powers(2, 36);
        let mut a = ThermalSim::new(model.clone(), 40.0);
        a.chol = CholOptions::unbounded();
        a.set_strategy(SolverStrategy::DirectCholesky);
        let mut b = ThermalSim::new(model.clone(), 41.0);
        b.set_strategy(SolverStrategy::Cg);
        let mut solo_a = a.clone();
        let mut solo_b = b.clone();

        let mut scratch = LockstepScratch::new();
        for _ in 0..3 {
            let mut lanes: Vec<&mut ThermalSim> = vec![&mut a, &mut b];
            let maps: Vec<&[f64]> = powers.iter().map(|p| p.as_slice()).collect();
            step_lockstep(&mut lanes, &maps, 1e-3, &mut scratch);
            solo_a.step(&powers[0], 1e-3);
            solo_b.step(&powers[1], 1e-3);
        }
        assert_eq!(a.active_solver(), Some(SolverStrategy::DirectCholesky));
        assert_eq!(b.active_solver(), Some(SolverStrategy::Cg));
        for (x, y) in a.state().iter().zip(solo_a.state()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in b.state().iter().zip(solo_b.state()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn lockstep_scratch_survives_dt_and_width_changes() {
        let model = ThermalModel::new(stack_1d(6, 6));
        let powers = lane_powers(4, 36);
        let mut lock: Vec<ThermalSim> = (0..4)
            .map(|l| ThermalSim::new(model.clone(), 40.0 + l as f64))
            .collect();
        let mut solo: Vec<ThermalSim> = lock.clone();
        let mut scratch = LockstepScratch::new();
        // Width 4 at dt=1e-3, then width 3 at dt=2e-3 (forces workspace and
        // buffer rebuilds), then back: the scratch must re-key correctly.
        for (width, dt) in [(4usize, 1e-3), (3, 2e-3), (4, 1e-3)] {
            let maps: Vec<&[f64]> = powers[..width].iter().map(|p| p.as_slice()).collect();
            let mut lanes: Vec<&mut ThermalSim> = lock[..width].iter_mut().collect();
            step_lockstep(&mut lanes, &maps, dt, &mut scratch);
            for (sim, p) in solo[..width].iter_mut().zip(&powers) {
                sim.step(p, dt);
            }
        }
        for (a, b) in lock.iter().zip(&solo) {
            for (x, y) in a.state().iter().zip(b.state()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn solver_strategy_round_trips_through_strings() {
        for s in [SolverStrategy::DirectCholesky, SolverStrategy::Cg] {
            let parsed: SolverStrategy = s.as_str().parse().unwrap();
            assert_eq!(parsed, s);
        }
        assert!("chebyshev".parse::<SolverStrategy>().is_err());
        assert_eq!(SolverStrategy::default(), SolverStrategy::DirectCholesky);
    }
}
