//! Frame export: PPM heat-map images and CSV dumps.
//!
//! The original HotGauge release ships post-processing scripts that plot the
//! thermal simulation output; this module provides the equivalent for the
//! Rust toolchain without adding plotting dependencies — PPM is viewable
//! everywhere and trivially convertible.

use std::io::{self, Write};
use std::path::Path;

use crate::frame::ThermalFrame;

/// A color ramp for temperature visualization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorMap {
    /// Black → red → yellow → white (classic heat).
    Heat,
    /// Blue → white → red (diverging; good for ΔT fields).
    Diverging,
    /// Plain grayscale.
    Gray,
}

impl ColorMap {
    /// Maps `t` in `[0, 1]` to RGB.
    pub fn rgb(&self, t: f64) -> [u8; 3] {
        let t = t.clamp(0.0, 1.0);
        match self {
            ColorMap::Gray => {
                let v = (t * 255.0) as u8;
                [v, v, v]
            }
            ColorMap::Heat => {
                // Three linear segments: black->red, red->yellow, yellow->white.
                if t < 1.0 / 3.0 {
                    [(t * 3.0 * 255.0) as u8, 0, 0]
                } else if t < 2.0 / 3.0 {
                    [255, ((t - 1.0 / 3.0) * 3.0 * 255.0) as u8, 0]
                } else {
                    [255, 255, ((t - 2.0 / 3.0) * 3.0 * 255.0) as u8]
                }
            }
            ColorMap::Diverging => {
                if t < 0.5 {
                    let u = t * 2.0;
                    [(u * 255.0) as u8, (u * 255.0) as u8, 255]
                } else {
                    let u = (t - 0.5) * 2.0;
                    [255, ((1.0 - u) * 255.0) as u8, ((1.0 - u) * 255.0) as u8]
                }
            }
        }
    }
}

/// Renders a frame as a binary PPM (P6) image, one pixel per cell, with the
/// temperature range `[lo, hi]` mapped onto the color ramp. Row 0 of the
/// frame is rendered at the *bottom* (die coordinates, y up).
pub fn frame_to_ppm(frame: &ThermalFrame, lo: f64, hi: f64, map: ColorMap) -> Vec<u8> {
    assert!(hi > lo, "invalid range");
    let mut out = Vec::with_capacity(32 + 3 * frame.nx * frame.ny);
    out.extend_from_slice(format!("P6\n{} {}\n255\n", frame.nx, frame.ny).as_bytes());
    for iy in (0..frame.ny).rev() {
        for ix in 0..frame.nx {
            let t = (frame.at(ix, iy) - lo) / (hi - lo);
            out.extend_from_slice(&map.rgb(t));
        }
    }
    out
}

/// Writes a frame as PPM to `path` with auto-scaled range.
pub fn write_ppm(frame: &ThermalFrame, path: &Path, map: ColorMap) -> io::Result<()> {
    let (lo, hi) = (frame.min(), frame.max().max(frame.min() + 1e-9));
    let bytes = frame_to_ppm(frame, lo, hi, map);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)
}

/// Serializes a frame as CSV (`x_mm,y_mm,temp_c` per line, with header).
pub fn frame_to_csv(frame: &ThermalFrame) -> String {
    let mut s = String::with_capacity(frame.temps.len() * 24);
    s.push_str("x_mm,y_mm,temp_c\n");
    let cell_mm = frame.cell_m * 1e3;
    for iy in 0..frame.ny {
        for ix in 0..frame.nx {
            s.push_str(&format!(
                "{:.4},{:.4},{:.3}\n",
                (ix as f64 + 0.5) * cell_mm,
                (iy as f64 + 0.5) * cell_mm,
                frame.at(ix, iy)
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> ThermalFrame {
        ThermalFrame::new(3, 2, 1e-4, vec![40.0, 50.0, 60.0, 70.0, 80.0, 90.0])
    }

    #[test]
    fn ppm_header_and_size() {
        let f = frame();
        let ppm = frame_to_ppm(&f, 40.0, 90.0, ColorMap::Heat);
        assert!(ppm.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(ppm.len(), 11 + 3 * 6);
    }

    #[test]
    fn hottest_pixel_is_brightest_in_heat_map() {
        let f = frame();
        let ppm = frame_to_ppm(&f, 40.0, 90.0, ColorMap::Heat);
        let body = &ppm[11..];
        // Frame row 1 (top, temps 70/80/90) renders first; its last pixel is
        // the hottest (white); the first body pixel is 70 C.
        let hottest = &body[6..9];
        assert_eq!(hottest, &[255, 255, 255]);
        // The coldest cell (40 C) renders in the bottom row, first pixel.
        let coldest = &body[9..12];
        assert_eq!(coldest, &[0, 0, 0]);
    }

    #[test]
    fn colormap_endpoints() {
        assert_eq!(ColorMap::Gray.rgb(0.0), [0, 0, 0]);
        assert_eq!(ColorMap::Gray.rgb(1.0), [255, 255, 255]);
        assert_eq!(ColorMap::Heat.rgb(1.0), [255, 255, 255]);
        assert_eq!(ColorMap::Diverging.rgb(0.5)[2], 255);
        // Out-of-range clamps.
        assert_eq!(ColorMap::Heat.rgb(2.0), [255, 255, 255]);
        assert_eq!(ColorMap::Heat.rgb(-1.0), [0, 0, 0]);
    }

    #[test]
    fn csv_has_header_and_all_cells() {
        let f = frame();
        let csv = frame_to_csv(&f);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 7);
        assert_eq!(lines[0], "x_mm,y_mm,temp_c");
        assert!(lines[1].starts_with("0.0500,0.0500,40.000"));
    }

    #[test]
    fn write_ppm_roundtrip() {
        let dir = std::env::temp_dir().join("hotgauge_test_ppm");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frame.ppm");
        write_ppm(&frame(), &path, ColorMap::Heat).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(data.starts_with(b"P6\n"));
        std::fs::remove_file(&path).ok();
    }
}
