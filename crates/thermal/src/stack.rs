//! Thermal stack description (the analog of a 3D-ICE `.stk` file).
//!
//! The case-study stack follows Fig. 4 / Table II of the paper, bottom to
//! top: the silicon die — split into an **active layer** and the bulk so
//! vertical heat spreading inside the die is resolved (§III-C) — a solder
//! TIM, the copper heat spreader, thermal grease, and the heatsink
//! (HS483-ND with a P14752-ND fan at 6000 rpm, modeled as an aluminum base
//! with a calibrated convective film coefficient on top).
//!
//! Layers can either be confined to the die footprint (silicon, solder TIM)
//! or extend across the full simulation domain including a border around the
//! die (spreader, grease, heatsink). Border cells of die-confined layers are
//! filled with package mold material. The border is what lets heat spread
//! laterally in the copper beyond the die edge — without it the
//! junction-to-ambient resistance would scale as `1/A_die` across technology
//! nodes, much faster than the paper's Table IV.

use serde::{Deserialize, Serialize};

use crate::materials::Material;

/// One layer of the thermal stack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Descriptive name (e.g. `"bulk silicon"`).
    pub name: String,
    /// Layer material.
    pub material: Material,
    /// Total layer thickness, meters.
    pub thickness: f64,
    /// Number of vertical finite-volume sublayers the layer is divided into.
    pub sublayers: usize,
    /// Whether the layer extends across the full domain (die + border).
    /// If `false`, cells outside the die footprint use the filler material.
    pub full_extent: bool,
}

impl Layer {
    /// Creates a layer.
    ///
    /// # Panics
    ///
    /// Panics if the thickness is non-positive or `sublayers == 0`.
    pub fn new(
        name: impl Into<String>,
        material: Material,
        thickness: f64,
        sublayers: usize,
        full_extent: bool,
    ) -> Self {
        assert!(thickness.is_finite() && thickness > 0.0, "bad thickness");
        assert!(sublayers >= 1, "need at least one sublayer");
        Self {
            name: name.into(),
            material,
            thickness,
            sublayers,
            full_extent,
        }
    }

    /// Thickness of one sublayer, meters.
    pub fn sublayer_thickness(&self) -> f64 {
        self.thickness / self.sublayers as f64
    }
}

/// Heatsink convective film coefficient for the HS483-ND + P14752-ND fan at
/// 6000 rpm, W/(m²·K), applied over the top of the heatsink base layer.
///
/// Calibrated (together with the 4 mm spreading border) so that the
/// junction-to-ambient resistance Ψ_j,a of the 14 nm case-study die
/// reproduces Table IV (0.96 °C/W); the 10 nm and 7 nm values then follow
/// from die-area scaling alone and overshoot the paper's values somewhat —
/// see EXPERIMENTS.md for the comparison.
pub const HS483_FILM_COEFF: f64 = 8000.0;

/// Default border of full-extent layers around the die, meters (4 mm per
/// side). Kept constant across technology nodes: the package and heatsink do
/// not shrink with the die.
pub const DEFAULT_BORDER_M: f64 = 4.0e-3;

/// Complete description of the simulated thermal domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StackDescription {
    /// Layers bottom-to-top; layer 0 is the active silicon (heat injection).
    pub layers: Vec<Layer>,
    /// Die cell count along x.
    pub nx_die: usize,
    /// Die cell count along y.
    pub ny_die: usize,
    /// In-plane cell edge, meters.
    pub cell: f64,
    /// Border width in cells on each side of the die.
    pub border_cells: usize,
    /// Filler material for border cells of die-confined layers.
    pub filler: Material,
    /// Convective film coefficient on top of the last layer, W/(m²·K).
    pub h_top: f64,
    /// Ambient temperature, °C.
    pub ambient_c: f64,
}

impl StackDescription {
    /// The paper's client-CPU stack (Fig. 4 / Table II) for a die rasterized
    /// as `nx_die × ny_die` cells of `cell_um` micrometers.
    ///
    /// The ambient defaults to 40 °C, the paper's "local ambient" for the
    /// TDP analysis (§III-D). The active layer is 20 µm of the 380 µm wafer.
    pub fn client_cpu(nx_die: usize, ny_die: usize, cell_um: f64) -> Self {
        Self::client_cpu_with_border(nx_die, ny_die, cell_um, DEFAULT_BORDER_M)
    }

    /// Like [`StackDescription::client_cpu`] but with an explicit spreading
    /// border (used by fast-fidelity sweeps, where a narrower border trades
    /// a little steady-state accuracy for a much smaller domain).
    pub fn client_cpu_with_border(
        nx_die: usize,
        ny_die: usize,
        cell_um: f64,
        border_m: f64,
    ) -> Self {
        assert!(nx_die > 0 && ny_die > 0);
        assert!(cell_um.is_finite() && cell_um > 0.0);
        assert!(border_m.is_finite() && border_m >= 0.0);
        let cell = cell_um * 1e-6;
        let border_cells = (border_m / cell).round().max(1.0) as usize;
        Self {
            layers: vec![
                Layer::new("active silicon", Material::SILICON, 20e-6, 1, false),
                Layer::new("bulk silicon", Material::SILICON, 360e-6, 3, false),
                Layer::new("solder TIM", Material::SOLDER_TIM, 200e-6, 1, false),
                Layer::new("copper spreader", Material::COPPER, 3e-3, 3, true),
                Layer::new("thermal grease", Material::THERMAL_GREASE, 30e-6, 1, true),
                Layer::new("heatsink base", Material::ALUMINUM, 5e-3, 2, true),
            ],
            nx_die,
            ny_die,
            cell,
            border_cells,
            filler: Material::MOLD_FILLER,
            h_top: HS483_FILM_COEFF,
            ambient_c: 40.0,
        }
    }

    /// Total domain cells along x (die + both borders).
    pub fn nx(&self) -> usize {
        self.nx_die + 2 * self.border_cells
    }

    /// Total domain cells along y.
    pub fn ny(&self) -> usize {
        self.ny_die + 2 * self.border_cells
    }

    /// Total number of vertical levels (sum of sublayers).
    pub fn levels(&self) -> usize {
        self.layers.iter().map(|l| l.sublayers).sum()
    }

    /// Total node count of the discretization.
    pub fn node_count(&self) -> usize {
        self.nx() * self.ny() * self.levels()
    }

    /// Die area, m².
    pub fn die_area(&self) -> f64 {
        (self.nx_die as f64 * self.cell) * (self.ny_die as f64 * self.cell)
    }

    /// Checks invariants (at least one layer, positive film coefficient).
    pub fn validate(&self) -> Result<(), String> {
        if self.layers.is_empty() {
            return Err("stack has no layers".into());
        }
        if !(self.h_top.is_finite() && self.h_top > 0.0) {
            return Err("top film coefficient must be positive".into());
        }
        if !(self.cell.is_finite() && self.cell > 0.0) {
            return Err("cell size must be positive".into());
        }
        Ok(())
    }

    /// Stack height (sum of layer thicknesses), meters.
    pub fn height(&self) -> f64 {
        self.layers.iter().map(|l| l.thickness).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_stack_matches_table2_geometry() {
        let s = StackDescription::client_cpu(50, 40, 100.0);
        assert!(s.validate().is_ok());
        // Silicon total = active + bulk = 380 µm (Table II).
        let si: f64 = s
            .layers
            .iter()
            .filter(|l| l.material == Material::SILICON)
            .map(|l| l.thickness)
            .sum();
        assert!((si - 380e-6).abs() < 1e-12);
        let tim = s.layers.iter().find(|l| l.name == "solder TIM").unwrap();
        assert!((tim.thickness - 200e-6).abs() < 1e-12);
        let cu = s
            .layers
            .iter()
            .find(|l| l.name == "copper spreader")
            .unwrap();
        assert!((cu.thickness - 3e-3).abs() < 1e-12);
        let grease = s
            .layers
            .iter()
            .find(|l| l.name == "thermal grease")
            .unwrap();
        assert!((grease.thickness - 30e-6).abs() < 1e-12);
    }

    #[test]
    fn domain_counts() {
        let s = StackDescription::client_cpu(50, 40, 100.0);
        // 4 mm border at 100 µm = 40 cells per side.
        assert_eq!(s.border_cells, 40);
        assert_eq!(s.nx(), 130);
        assert_eq!(s.ny(), 120);
        assert_eq!(s.levels(), 1 + 3 + 1 + 3 + 1 + 2);
        assert_eq!(s.node_count(), 130 * 120 * 11);
    }

    #[test]
    fn die_area_scales_with_cells() {
        let s = StackDescription::client_cpu(10, 10, 100.0);
        assert!((s.die_area() - 1e-6).abs() < 1e-18); // 1 mm × 1 mm
    }

    #[test]
    fn sublayer_thickness() {
        let l = Layer::new("x", Material::SILICON, 300e-6, 3, false);
        assert!((l.sublayer_thickness() - 100e-6).abs() < 1e-18);
    }

    #[test]
    fn border_override_controls_domain() {
        let narrow = StackDescription::client_cpu_with_border(20, 20, 100.0, 1e-3);
        let wide = StackDescription::client_cpu_with_border(20, 20, 100.0, 3e-3);
        assert_eq!(narrow.border_cells, 10);
        assert_eq!(wide.border_cells, 30);
        assert!(wide.node_count() > narrow.node_count());
    }

    #[test]
    fn active_layer_split_from_bulk() {
        // §III-C: the IC is divided between active layer and bulk to increase
        // vertical resolution — check the split is present.
        let s = StackDescription::client_cpu(10, 10, 100.0);
        assert_eq!(s.layers[0].name, "active silicon");
        assert_eq!(s.layers[1].name, "bulk silicon");
        assert!(s.layers[0].thickness < s.layers[1].thickness);
    }
}
