//! Thermal frames: the 2-D temperature field of the die's active layer at
//! one simulation instant. All hotspot metrics (MLTD, TUH, severity) are
//! computed on frames.

use serde::{Deserialize, Serialize};

/// A snapshot of the active-layer temperature over the die, row-major
/// (`iy * nx + ix`), in °C.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalFrame {
    /// Cells along x.
    pub nx: usize,
    /// Cells along y.
    pub ny: usize,
    /// Cell edge, meters.
    pub cell_m: f64,
    /// Temperatures, °C, length `nx * ny`.
    pub temps: Vec<f64>,
}

impl ThermalFrame {
    /// Creates a frame.
    ///
    /// # Panics
    ///
    /// Panics if `temps.len() != nx * ny`.
    pub fn new(nx: usize, ny: usize, cell_m: f64, temps: Vec<f64>) -> Self {
        assert_eq!(temps.len(), nx * ny, "frame size mismatch");
        assert!(cell_m > 0.0);
        Self {
            nx,
            ny,
            cell_m,
            temps,
        }
    }

    /// A frame filled with a uniform temperature.
    pub fn uniform(nx: usize, ny: usize, cell_m: f64, t: f64) -> Self {
        Self::new(nx, ny, cell_m, vec![t; nx * ny])
    }

    /// Temperature at cell `(ix, iy)`.
    pub fn at(&self, ix: usize, iy: usize) -> f64 {
        self.temps[iy * self.nx + ix]
    }

    /// Linear index of cell `(ix, iy)`.
    pub fn index(&self, ix: usize, iy: usize) -> usize {
        iy * self.nx + ix
    }

    /// `(ix, iy)` of a linear index.
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        (idx % self.nx, idx / self.nx)
    }

    /// Maximum temperature, °C.
    pub fn max(&self) -> f64 {
        self.temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Minimum temperature, °C.
    pub fn min(&self) -> f64 {
        self.temps.iter().cloned().fold(f64::INFINITY, f64::min)
    }

    /// Mean temperature, °C.
    pub fn mean(&self) -> f64 {
        self.temps.iter().sum::<f64>() / self.temps.len() as f64
    }

    /// Index of the hottest cell.
    pub fn argmax(&self) -> usize {
        self.temps
            .iter()
            .enumerate()
            // hotgauge-lint: allow(L001, "solver output is finite (convergence-checked); NaN here means the solve already failed loudly")
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN temperatures"))
            .map(|(i, _)| i)
            // hotgauge-lint: allow(L001, "ThermalFrame::new asserts a non-empty grid, so the maximum always exists")
            .expect("non-empty frame")
    }

    /// Per-cell temperature difference `self − other` (for the ΔT-over-200µs
    /// distributions of Fig. 2).
    ///
    /// # Panics
    ///
    /// Panics if the frames have different shapes.
    pub fn delta(&self, other: &ThermalFrame) -> Vec<f64> {
        assert_eq!(self.nx, other.nx);
        assert_eq!(self.ny, other.ny);
        self.temps
            .iter()
            .zip(&other.temps)
            .map(|(a, b)| a - b)
            .collect()
    }

    /// Histogram of temperatures with `bins` equal-width bins over
    /// `[lo, hi)`; out-of-range samples are clamped into the edge bins.
    /// Returns `(bin_edges, counts)` with `bins + 1` edges.
    pub fn histogram(&self, lo: f64, hi: f64, bins: usize) -> (Vec<f64>, Vec<usize>) {
        histogram(&self.temps, lo, hi, bins)
    }
}

/// Histogram helper shared by frame and ΔT analyses.
pub fn histogram(samples: &[f64], lo: f64, hi: f64, bins: usize) -> (Vec<f64>, Vec<usize>) {
    assert!(bins > 0 && hi > lo);
    let width = (hi - lo) / bins as f64;
    let edges: Vec<f64> = (0..=bins).map(|i| lo + i as f64 * width).collect();
    let mut counts = vec![0usize; bins];
    for &s in samples {
        let mut b = ((s - lo) / width).floor() as isize;
        if b < 0 {
            b = 0;
        }
        if b >= bins as isize {
            b = bins as isize - 1;
        }
        counts[b as usize] += 1;
    }
    (edges, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> ThermalFrame {
        ThermalFrame::new(3, 2, 1e-4, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
    }

    #[test]
    fn indexing() {
        let f = frame();
        assert_eq!(f.at(0, 0), 1.0);
        assert_eq!(f.at(2, 1), 6.0);
        assert_eq!(f.index(2, 1), 5);
        assert_eq!(f.coords(5), (2, 1));
    }

    #[test]
    fn stats() {
        let f = frame();
        assert_eq!(f.max(), 6.0);
        assert_eq!(f.min(), 1.0);
        assert!((f.mean() - 3.5).abs() < 1e-12);
        assert_eq!(f.argmax(), 5);
    }

    #[test]
    fn delta() {
        let f = frame();
        let g = ThermalFrame::uniform(3, 2, 1e-4, 1.0);
        let d = f.delta(&g);
        assert_eq!(d, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let (edges, counts) = histogram(&[0.5, 1.5, 2.5, -10.0, 10.0], 0.0, 3.0, 3);
        assert_eq!(edges.len(), 4);
        assert_eq!(counts, vec![2, 1, 2]); // -10 clamps into bin 0, 10 into bin 2
    }

    #[test]
    #[should_panic]
    fn size_mismatch_panics() {
        let _ = ThermalFrame::new(2, 2, 1e-4, vec![0.0; 3]);
    }
}
