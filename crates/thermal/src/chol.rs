//! Factor-once sparse Cholesky for the constant backward-Euler system.
//!
//! The transient thermal step solves `(C/Δt + G) T' = rhs` with a matrix
//! that never changes during a run (constant `Δt`, constant geometry), so
//! the expensive part — the factorization — can be paid once per
//! configuration and each time step reduces to two triangular sweeps.
//!
//! The factorization is a profile (skyline) Cholesky after a reverse
//! Cuthill–McKee reordering: RCM clusters the RC network's neighbors so the
//! lower-triangular factor fits in a contiguous envelope per row, which
//! makes both the factorization inner loops and the triangular sweeps
//! straight runs over contiguous memory. For the thin 3-D grids produced by
//! [`crate::model::ThermalModel`] the envelope is dense enough that a
//! skyline beats a general sparse factor with its index-chasing.
//!
//! The factor deliberately *rejects* matrices whose envelope would be too
//! wide ([`CholOptions::max_profile_per_node`]) or too large in absolute
//! terms ([`CholOptions::max_profile_entries`]): on big fine-resolution
//! grids the triangular sweeps stream more memory per solve than a handful
//! of warm-started CG iterations touch, so the caller
//! ([`crate::model::ThermalSim`]) falls back to CG above the budget. See
//! DESIGN.md ("Solver strategy") for the crossover measurements.

use crate::sparse::CsrMatrix;

/// Why a matrix could not be factorized.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorError {
    /// The RCM envelope would exceed [`CholOptions::max_profile_entries`].
    /// Direct solves beyond this size stream more memory per step than CG.
    ProfileTooLarge {
        /// Envelope entries the factor would need.
        required: usize,
        /// The configured budget.
        budget: usize,
    },
    /// A pivot was not strictly positive: the matrix is not numerically
    /// positive definite (up to the `1e-12`-scaled tolerance used).
    NotPositiveDefinite {
        /// Row (in the reordered numbering) where factorization broke down.
        row: usize,
    },
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::ProfileTooLarge { required, budget } => write!(
                f,
                "factor envelope needs {required} entries, over the budget of {budget}"
            ),
            FactorError::NotPositiveDefinite { row } => {
                write!(f, "matrix is not positive definite (pivot at row {row})")
            }
        }
    }
}

/// Tunables for [`CholeskyFactor::factor`].
#[derive(Debug, Clone, Copy)]
pub struct CholOptions {
    /// Absolute envelope budget in stored entries (8 bytes each); bounds the
    /// factor's memory footprint. Default 4 M entries (32 MB).
    pub max_profile_entries: usize,
    /// Relative envelope budget: entries per matrix row. This is the
    /// direct-vs-CG *performance* crossover — each direct solve streams the
    /// whole envelope twice, while a warm-started CG step touches roughly
    /// `iterations × (nnz + 6n)` values, about 90 per row on the RC networks
    /// this crate builds (≈7 iterations × 13 entries — see DESIGN.md,
    /// "Solver strategy"). The default of 48 accepts the factorization only
    /// where two sweeps cost less than that; wide-envelope grids are
    /// rejected so the caller falls back to CG.
    pub max_profile_per_node: usize,
}

impl Default for CholOptions {
    fn default() -> Self {
        Self {
            max_profile_entries: 4_000_000,
            max_profile_per_node: 48,
        }
    }
}

impl CholOptions {
    /// Options with no profile limits: factor anything positive definite
    /// (validation and tests; production callers should keep the budgets).
    pub fn unbounded() -> Self {
        Self {
            max_profile_entries: usize::MAX,
            max_profile_per_node: usize::MAX,
        }
    }

    /// The effective entry budget for an `n`-row matrix.
    pub fn budget_for(&self, n: usize) -> usize {
        self.max_profile_entries
            .min(self.max_profile_per_node.saturating_mul(n))
    }
}

/// A Cholesky factorization `P A Pᵀ = L Lᵀ` in skyline storage.
///
/// Row `i` of `L` stores the contiguous run `first[i] ..= i`; solving
/// `A x = b` is a forward and a backward sweep over that envelope.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    n: usize,
    /// `perm[new] = old` — the RCM ordering.
    perm: Vec<u32>,
    /// First stored column of each skyline row.
    first: Vec<u32>,
    /// Offset of row `i`'s first entry in `vals`; the diagonal entry is at
    /// `row_start[i + 1] - 1`.
    row_start: Vec<usize>,
    /// Envelope values of `L`, row-major.
    vals: Vec<f64>,
    /// `1 / L[i][i]`, so the sweeps multiply instead of divide.
    inv_diag: Vec<f64>,
}

impl CholeskyFactor {
    /// Factors a symmetric positive-definite CSR matrix.
    ///
    /// # Errors
    ///
    /// [`FactorError::ProfileTooLarge`] when the post-RCM envelope exceeds
    /// the budget, [`FactorError::NotPositiveDefinite`] when a pivot fails.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty.
    pub fn factor(a: &CsrMatrix, opts: &CholOptions) -> Result<Self, FactorError> {
        let n = a.n();
        assert!(n > 0, "cannot factor an empty matrix");
        let _span = hotgauge_telemetry::span!("thermal.factor");
        let perm = rcm_order(a);
        let mut iperm = vec![0u32; n];
        for (new, &old) in perm.iter().enumerate() {
            iperm[old as usize] = new as u32;
        }

        // Envelope extents in the new ordering: row i spans from its
        // leftmost (reordered) neighbor to the diagonal.
        let mut first: Vec<u32> = (0..n as u32).collect();
        for old in 0..n {
            let ni = iperm[old] as usize;
            let (cols, _) = a.row(old);
            for &j in cols {
                let nj = iperm[j];
                if nj < first[ni] {
                    first[ni] = nj;
                }
                // Symmetry: the transposed entry widens row nj when ni < nj.
                let nj = nj as usize;
                if (ni as u32) < first[nj] {
                    first[nj] = ni as u32;
                }
            }
        }

        let mut row_start = Vec::with_capacity(n + 1);
        row_start.push(0usize);
        for i in 0..n {
            let width = i + 1 - first[i] as usize;
            row_start.push(row_start[i] + width);
        }
        let required = row_start[n];
        let budget = opts.budget_for(n);
        if required > budget {
            return Err(FactorError::ProfileTooLarge { required, budget });
        }

        // Scatter the (permuted) lower triangle of A into the envelope.
        let mut vals = vec![0.0f64; required];
        for old in 0..n {
            let ni = iperm[old] as usize;
            let (cols, avals) = a.row(old);
            for (&j, &v) in cols.iter().zip(avals) {
                let nj = iperm[j] as usize;
                if nj <= ni {
                    vals[row_start[ni] + nj - first[ni] as usize] = v;
                } else {
                    vals[row_start[nj] + ni - first[nj] as usize] = v;
                }
            }
        }

        // In-place skyline factorization. For each row i and column j < i:
        //   L[i][j] = (A[i][j] − Σₖ L[i][k]·L[j][k]) / L[j][j]
        // with k ranging over the overlap of the two envelopes — a dot of
        // two contiguous slices, which the compiler vectorizes.
        let mut inv_diag = vec![0.0f64; n];
        let scale = max_diag(a);
        for i in 0..n {
            let fi = first[i] as usize;
            let (done, row_i) = vals.split_at_mut(row_start[i]);
            let row_i = &mut row_i[..i + 1 - fi];
            for j in fi..i {
                let fj = first[j] as usize;
                let lo = fi.max(fj);
                let row_j = &done[row_start[j]..row_start[j + 1]];
                let s: f64 = row_i[lo - fi..j - fi]
                    .iter()
                    .zip(&row_j[lo - fj..j - fj])
                    .map(|(a, b)| a * b)
                    .sum();
                row_i[j - fi] = (row_i[j - fi] - s) * inv_diag[j];
            }
            let sq: f64 = row_i[..i - fi].iter().map(|v| v * v).sum();
            let d = row_i[i - fi] - sq;
            // NaN-safe pivot guard: reject non-finite as well as tiny pivots.
            if d.is_nan() || d <= scale * 1e-12 {
                return Err(FactorError::NotPositiveDefinite { row: i });
            }
            let l = d.sqrt();
            row_i[i - fi] = l;
            inv_diag[i] = 1.0 / l;
        }

        Ok(Self {
            n,
            perm,
            first,
            row_start,
            vals,
            inv_diag,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored envelope entries (the per-solve memory footprint in 8-byte
    /// units).
    pub fn profile_entries(&self) -> usize {
        self.vals.len()
    }

    /// Solves `A x = b` via the two triangular sweeps. `work` is caller
    /// scratch of length `n` so repeated solves allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn solve(&self, b: &[f64], x: &mut [f64], work: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        assert_eq!(work.len(), n);
        let _span = hotgauge_telemetry::span!("thermal.direct_solve");

        // Permute b into the RCM ordering.
        for (i, w) in work.iter_mut().enumerate() {
            *w = b[self.perm[i] as usize];
        }
        // Forward sweep: L y = Pb. Each row is a contiguous dot.
        for i in 0..n {
            let fi = self.first[i] as usize;
            let row = &self.vals[self.row_start[i]..self.row_start[i + 1]];
            let s: f64 = row[..i - fi]
                .iter()
                .zip(&work[fi..i])
                .map(|(l, w)| l * w)
                .sum();
            work[i] = (work[i] - s) * self.inv_diag[i];
        }
        // Backward sweep: Lᵀ z = y, as per-row axpy updates.
        for i in (0..n).rev() {
            let fi = self.first[i] as usize;
            let row = &self.vals[self.row_start[i]..self.row_start[i + 1]];
            let zi = work[i] * self.inv_diag[i];
            work[i] = zi;
            for (w, &l) in work[fi..i].iter_mut().zip(row) {
                *w -= l * zi;
            }
        }
        // Un-permute into x.
        for (i, &w) in work.iter().enumerate() {
            x[self.perm[i] as usize] = w;
        }
    }

    /// Solves `k` systems `A xₗ = bₗ` in one pair of blocked triangular
    /// sweeps over node-major, lane-minor `[n × k]` blocks
    /// (`b[node * k + lane]`). The envelope — the factor's entire memory
    /// footprint — is streamed **once** for all `k` right-hand sides, and
    /// the inner lane loops run over contiguous slices, so the per-solve
    /// cost amortizes to `1/k` of the index/value traffic of `k` solo
    /// sweeps.
    ///
    /// Per lane, the floating-point operation sequence (permute, ascending
    /// forward dots, descending backward axpys, un-permute) is identical to
    /// [`CholeskyFactor::solve`], so each lane's column of `x` is bitwise
    /// equal to a solo solve of that lane.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k > MAX_LOCKSTEP_WIDTH` (see
    /// [`crate::solver::MAX_LOCKSTEP_WIDTH`]), or on length mismatches
    /// (`b`, `x`, `work` must all be `n * k`).
    pub fn solve_multi(&self, k: usize, b: &[f64], x: &mut [f64], work: &mut [f64]) {
        use crate::solver::MAX_LOCKSTEP_WIDTH;
        let n = self.n;
        assert!((1..=MAX_LOCKSTEP_WIDTH).contains(&k));
        assert_eq!(b.len(), n * k);
        assert_eq!(x.len(), n * k);
        assert_eq!(work.len(), n * k);
        let _span = hotgauge_telemetry::span!("thermal.direct_solve");

        // Permute b into the RCM ordering, all lanes at once.
        for (i, wrow) in work.chunks_exact_mut(k).enumerate() {
            let brow = &b[self.perm[i] as usize * k..self.perm[i] as usize * k + k];
            wrow.copy_from_slice(brow);
        }
        // Forward sweep: L y = Pb. One pass over the envelope; each row's
        // contiguous dot runs with k lane accumulators on the stack.
        let mut s = [0.0f64; MAX_LOCKSTEP_WIDTH];
        for i in 0..n {
            let fi = self.first[i] as usize;
            let row = &self.vals[self.row_start[i]..self.row_start[i + 1]];
            let sl = &mut s[..k];
            sl.fill(0.0);
            for (j, &l) in (fi..i).zip(row) {
                let wrow = &work[j * k..j * k + k];
                for (acc, &w) in sl.iter_mut().zip(wrow) {
                    *acc += l * w;
                }
            }
            let di = self.inv_diag[i];
            let wrow = &mut work[i * k..i * k + k];
            for (w, &acc) in wrow.iter_mut().zip(sl.iter()) {
                *w = (*w - acc) * di;
            }
        }
        // Backward sweep: Lᵀ z = y, as per-row rank-1 lane-block updates.
        let mut z = [0.0f64; MAX_LOCKSTEP_WIDTH];
        for i in (0..n).rev() {
            let fi = self.first[i] as usize;
            let row = &self.vals[self.row_start[i]..self.row_start[i + 1]];
            let di = self.inv_diag[i];
            let zl = &mut z[..k];
            {
                let wrow = &mut work[i * k..i * k + k];
                for (zi, w) in zl.iter_mut().zip(wrow.iter_mut()) {
                    *zi = *w * di;
                    *w = *zi;
                }
            }
            for (j, &l) in (fi..i).zip(row) {
                let wrow = &mut work[j * k..j * k + k];
                for (w, &zi) in wrow.iter_mut().zip(zl.iter()) {
                    *w -= l * zi;
                }
            }
        }
        // Un-permute into x.
        for (i, wrow) in work.chunks_exact(k).enumerate() {
            let xrow = &mut x[self.perm[i] as usize * k..self.perm[i] as usize * k + k];
            xrow.copy_from_slice(wrow);
        }
    }

    /// [`CholeskyFactor::solve`] allocating its own scratch (convenience
    /// for one-off solves and tests).
    pub fn solve_alloc(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        let mut work = vec![0.0; self.n];
        self.solve(b, &mut x, &mut work);
        x
    }
}

/// Largest diagonal entry, used to scale the positive-pivot tolerance.
fn max_diag(a: &CsrMatrix) -> f64 {
    a.diagonal().into_iter().fold(0.0f64, f64::max)
}

/// Reverse Cuthill–McKee ordering: BFS from a pseudo-peripheral vertex,
/// visiting neighbors by increasing degree, then reversed. Returns
/// `perm[new] = old`.
fn rcm_order(a: &CsrMatrix) -> Vec<u32> {
    let n = a.n();
    let degree = |i: usize| a.row(i).0.len();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut neighbors: Vec<u32> = Vec::new();

    // The graph is connected for real thermal stacks, but handle multiple
    // components (e.g. test matrices) by restarting the BFS.
    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        let root = pseudo_peripheral(a, seed);
        let level_start = order.len();
        visited[root] = true;
        order.push(root as u32);
        let mut head = level_start;
        while head < order.len() {
            let v = order[head] as usize;
            head += 1;
            neighbors.clear();
            for &j in a.row(v).0 {
                if j != v && !visited[j] {
                    visited[j] = true;
                    neighbors.push(j as u32);
                }
            }
            neighbors.sort_unstable_by_key(|&j| degree(j as usize));
            order.extend_from_slice(&neighbors);
        }
    }
    order.reverse();
    order
}

/// George–Liu pseudo-peripheral vertex: repeat BFS from the far end of the
/// previous sweep while the eccentricity keeps growing.
fn pseudo_peripheral(a: &CsrMatrix, seed: usize) -> usize {
    let n = a.n();
    let mut root = seed;
    let mut depth_prev = 0usize;
    let mut level = vec![u32::MAX; n];
    let mut queue: Vec<u32> = Vec::new();
    for _ in 0..8 {
        level.iter_mut().for_each(|l| *l = u32::MAX);
        queue.clear();
        queue.push(root as u32);
        level[root] = 0;
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head] as usize;
            head += 1;
            for &j in a.row(v).0 {
                if j != v && level[j] == u32::MAX {
                    level[j] = level[v] + 1;
                    queue.push(j as u32);
                }
            }
        }
        // hotgauge-lint: allow(L001, "the BFS queue is seeded with the root before the loop, so it is never empty here")
        let depth = level[*queue.last().unwrap() as usize] as usize;
        if depth <= depth_prev {
            break;
        }
        depth_prev = depth;
        // Smallest-degree vertex of the deepest level.
        root = queue
            .iter()
            .rev()
            .take_while(|&&v| level[v as usize] as usize == depth)
            .map(|&v| v as usize)
            .min_by_key(|&v| a.row(v).0.len())
            .unwrap_or(root);
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    fn poisson(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n);
        for i in 0..n - 1 {
            b.add_conductance(i, i + 1, 1.0);
        }
        b.add_grounded_conductance(0, 1.0);
        b.add_grounded_conductance(n - 1, 1.0);
        b.build()
    }

    /// A 3-D grid Laplacian like the thermal model's, with a grounded top.
    fn grid3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
        let node = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
        let mut b = TripletBuilder::new(nx * ny * nz);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let i = node(x, y, z);
                    if x + 1 < nx {
                        b.add_conductance(i, node(x + 1, y, z), 1.0 + (i % 5) as f64 * 0.1);
                    }
                    if y + 1 < ny {
                        b.add_conductance(i, node(x, y + 1, z), 1.5);
                    }
                    if z + 1 < nz {
                        b.add_conductance(i, node(x, y, z + 1), 4.0);
                    } else {
                        b.add_grounded_conductance(i, 2.0);
                    }
                }
            }
        }
        b.build()
    }

    #[test]
    fn factors_and_solves_poisson_exactly() {
        let a = poisson(50);
        let f = CholeskyFactor::factor(&a, &CholOptions::default()).unwrap();
        let x_true: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).cos() * 3.0).collect();
        let b = a.mul_vec_alloc(&x_true);
        let x = f.solve_alloc(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn solves_grid_system_to_machine_precision() {
        let a = grid3d(9, 7, 4);
        let n = a.n();
        let f = CholeskyFactor::factor(&a, &CholOptions::unbounded()).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();
        let b = a.mul_vec_alloc(&x_true);
        let x = f.solve_alloc(&b);
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-9, "error {err}");
    }

    #[test]
    fn solve_is_reusable_across_rhs() {
        let a = grid3d(6, 6, 3);
        let f = CholeskyFactor::factor(&a, &CholOptions::default()).unwrap();
        let mut work = vec![0.0; a.n()];
        let mut x = vec![0.0; a.n()];
        for seed in 0..4u64 {
            let b: Vec<f64> = (0..a.n())
                .map(|i| ((i as u64).wrapping_mul(seed + 1) % 13) as f64)
                .collect();
            f.solve(&b, &mut x, &mut work);
            let r = a.mul_vec_alloc(&x);
            for (ri, bi) in r.iter().zip(&b) {
                assert!((ri - bi).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rejects_indefinite_matrix() {
        // A pure Laplacian without grounding is only semi-definite.
        let mut b = TripletBuilder::new(4);
        for i in 0..3 {
            b.add_conductance(i, i + 1, 1.0);
        }
        let a = b.build();
        match CholeskyFactor::factor(&a, &CholOptions::default()) {
            Err(FactorError::NotPositiveDefinite { .. }) => {}
            other => panic!("expected indefinite rejection, got {other:?}"),
        }
    }

    #[test]
    fn rejects_oversized_profile() {
        let a = grid3d(12, 12, 4);
        let opts = CholOptions {
            max_profile_entries: 100,
            max_profile_per_node: usize::MAX,
        };
        match CholeskyFactor::factor(&a, &opts) {
            Err(FactorError::ProfileTooLarge { required, budget }) => {
                assert!(required > budget);
                assert_eq!(budget, 100);
            }
            other => panic!("expected profile rejection, got {other:?}"),
        }
    }

    #[test]
    fn per_node_budget_rejects_wide_envelopes() {
        // A 3-D grid whose RCM envelope is far wider than 2 entries/row.
        let a = grid3d(12, 12, 4);
        let opts = CholOptions {
            max_profile_entries: usize::MAX,
            max_profile_per_node: 2,
        };
        match CholeskyFactor::factor(&a, &opts) {
            Err(FactorError::ProfileTooLarge { required, budget }) => {
                assert_eq!(budget, 2 * a.n());
                assert!(required > budget);
            }
            other => panic!("expected profile rejection, got {other:?}"),
        }
        // A tridiagonal chain fits in 2 entries/row even after RCM.
        let p = poisson(64);
        assert!(CholeskyFactor::factor(&p, &opts).is_ok());
    }

    #[test]
    fn rcm_is_a_permutation_and_shrinks_the_profile() {
        let a = grid3d(10, 8, 5);
        let perm = rcm_order(&a);
        let mut seen = vec![false; a.n()];
        for &p in &perm {
            assert!(!seen[p as usize], "duplicate {p}");
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // The RCM envelope must not exceed the worst natural-order
        // bandwidth times n (it is far smaller for this grid).
        let f = CholeskyFactor::factor(&a, &CholOptions::unbounded()).unwrap();
        assert!(f.profile_entries() < a.n() * 10 * 8);
    }

    #[test]
    fn handles_disconnected_components() {
        let mut b = TripletBuilder::new(6);
        b.add_conductance(0, 1, 1.0);
        b.add_grounded_conductance(0, 1.0);
        b.add_conductance(3, 4, 2.0);
        b.add_grounded_conductance(3, 1.0);
        b.add_grounded_conductance(2, 5.0);
        b.add_grounded_conductance(5, 5.0);
        b.add_grounded_conductance(1, 0.5);
        b.add_grounded_conductance(4, 0.5);
        let a = b.build();
        let f = CholeskyFactor::factor(&a, &CholOptions::default()).unwrap();
        let x_true = vec![1.0, -1.0, 2.0, 0.5, 3.0, -2.0];
        let b = a.mul_vec_alloc(&x_true);
        let x = f.solve_alloc(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_multi_is_bitwise_equal_per_lane() {
        let mut a = grid3d(7, 6, 4);
        let cdt: Vec<f64> = (0..a.n()).map(|i| 1.0 + (i % 7) as f64 * 0.5).collect();
        a.add_to_diagonal(&cdt);
        let n = a.n();
        let f = CholeskyFactor::factor(&a, &CholOptions::unbounded()).unwrap();
        for k in [1usize, 2, 4, 8] {
            let lanes: Vec<Vec<f64>> = (0..k)
                .map(|l| {
                    (0..n)
                        .map(|i| (((i * 17 + l * 5) % 31) as f64) - 15.0)
                        .collect()
                })
                .collect();
            let mut b = vec![0.0; n * k];
            for (l, lane) in lanes.iter().enumerate() {
                for i in 0..n {
                    b[i * k + l] = lane[i];
                }
            }
            let mut x = vec![f64::NAN; n * k];
            let mut work = vec![0.0; n * k];
            f.solve_multi(k, &b, &mut x, &mut work);
            for (l, lane) in lanes.iter().enumerate() {
                let solo = f.solve_alloc(lane);
                for i in 0..n {
                    assert_eq!(
                        x[i * k + l].to_bits(),
                        solo[i].to_bits(),
                        "k={k} lane={l} node={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_cg_on_backward_euler_system() {
        use crate::solver::{solve_cg, CgConfig};
        let mut a = grid3d(8, 8, 4);
        let cdt: Vec<f64> = (0..a.n()).map(|i| 1.0 + (i % 7) as f64 * 0.5).collect();
        a.add_to_diagonal(&cdt);
        let b: Vec<f64> = (0..a.n()).map(|i| ((i % 11) as f64) - 5.0).collect();
        let f = CholeskyFactor::factor(&a, &CholOptions::unbounded()).unwrap();
        let direct = f.solve_alloc(&b);
        let mut cg = vec![0.0; a.n()];
        let stats = solve_cg(
            &a,
            &b,
            &mut cg,
            &CgConfig {
                tolerance: 1e-12,
                max_iterations: 50_000,
            },
        );
        assert!(stats.converged);
        for (d, c) in direct.iter().zip(&cg) {
            assert!((d - c).abs() < 1e-7, "{d} vs {c}");
        }
    }
}
