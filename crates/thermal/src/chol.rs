//! Factor-once sparse Cholesky for the constant backward-Euler system.
//!
//! The transient thermal step solves `(C/Δt + G) T' = rhs` with a matrix
//! that never changes during a run (constant `Δt`, constant geometry), so
//! the expensive part — the factorization — can be paid once per
//! configuration and each time step reduces to two triangular sweeps.
//!
//! The factorization is a profile (skyline) Cholesky after a reverse
//! Cuthill–McKee reordering: RCM clusters the RC network's neighbors so the
//! lower-triangular factor fits in a contiguous envelope per row, which
//! makes both the factorization inner loops and the triangular sweeps
//! straight runs over contiguous memory. For the thin 3-D grids produced by
//! [`crate::model::ThermalModel`] the envelope is dense enough that a
//! skyline beats a general sparse factor with its index-chasing.
//!
//! The factor deliberately *rejects* matrices whose envelope would be too
//! wide ([`CholOptions::max_profile_per_node`]) or too large in absolute
//! terms ([`CholOptions::max_profile_entries`]): on big fine-resolution
//! grids the triangular sweeps stream more memory per solve than a handful
//! of warm-started CG iterations touch, so the caller
//! ([`crate::model::ThermalSim`]) falls back to CG above the budget. See
//! DESIGN.md ("Solver strategy") for the crossover measurements.

use crate::sparse::CsrMatrix;

/// Hard cap on triangular-solve shards per dependency level. Matches
/// [`crate::solver::MAX_LOCKSTEP_WIDTH`] in spirit: enough for any machine
/// this targets while keeping the per-level partition table on the stack.
pub const MAX_SOLVE_SHARDS: usize = 16;

/// Minimum rows a dependency level must hand *each* shard before a scoped
/// spawn pays for itself: a worker spawn costs tens of microseconds while a
/// skyline row op costs tens of nanoseconds, so narrow levels run inline on
/// the calling thread even when the whole schedule is parallel-worthwhile.
const LEVEL_SHARD_MIN_ROWS: usize = 1024;

/// Average rows/level below which [`CholeskyFactor::solve_with_threads`]
/// stands down to the serial sweeps. Connected RCM envelopes degenerate to
/// near-singleton levels (each row's envelope reaches its immediate
/// predecessor), where level-by-level execution only adds scheduling
/// overhead; wide levels only arise from independent blocks — disconnected
/// components such as multi-die fleets, or envelope breaks. The crossover
/// was measured with the `tri_solve_levels` bench group (see DESIGN.md,
/// "Threading model").
pub const LEVEL_PARALLEL_MIN_AVG_ROWS: f64 = 64.0;

/// Dependency levels of the skyline triangular sweeps, derived from the RCM
/// envelope at factor time.
///
/// Row `i`'s forward dot reads `work[first[i] .. i]`, so it depends on every
/// row of that interval; its level is one past the deepest level among them
/// (`0` when the envelope row is empty). Rows sharing a level therefore have
/// pairwise disjoint `first[i] ..= i` intervals — if row `r` lay inside row
/// `r'`'s envelope they could not share a level — which is what lets the
/// executor hand each shard an exclusive, contiguous `work` slice with no
/// aliasing and no unsafe code. The backward sweep runs the same levels in
/// reverse: row `i`'s axpy targets `work[first[i] .. i]`, and every row
/// whose envelope covers `i` sits in a strictly deeper level, so
/// deeper-levels-first replays the serial descending-row update order for
/// every element exactly.
#[derive(Debug, Clone)]
pub struct LevelSchedule {
    /// Row indices grouped by level, ascending within each level.
    rows: Vec<u32>,
    /// Level `l` spans `rows[level_ptr[l] .. level_ptr[l + 1]]`.
    level_ptr: Vec<usize>,
    /// Widest level, in rows.
    max_width: usize,
}

impl LevelSchedule {
    /// Builds the schedule from the envelope extents (`first[i]` = leftmost
    /// stored column of row `i`). Cost is one pass over the envelope — the
    /// same order as a single triangular sweep.
    fn build(first: &[u32]) -> Self {
        let n = first.len();
        let mut level = vec![0u32; n];
        let mut n_levels = 1usize;
        for i in 0..n {
            let fi = first[i] as usize;
            let l = if fi == i {
                0
            } else {
                // Non-empty range: every in-envelope predecessor must sit in
                // a strictly earlier level.
                level[fi..i].iter().copied().fold(0, u32::max) + 1
            };
            level[i] = l;
            n_levels = n_levels.max(l as usize + 1);
        }
        // Counting sort, stable in row order, so rows ascend within a level
        // (ascending rows ⇒ ascending disjoint envelope intervals, which the
        // shard partitioner relies on).
        let mut level_ptr = vec![0usize; n_levels + 1];
        for &l in &level {
            level_ptr[l as usize + 1] += 1;
        }
        for l in 0..n_levels {
            level_ptr[l + 1] += level_ptr[l];
        }
        let mut cursor: Vec<usize> = level_ptr[..n_levels].to_vec();
        let mut rows = vec![0u32; n];
        for (i, &l) in level.iter().enumerate() {
            rows[cursor[l as usize]] = i as u32;
            cursor[l as usize] += 1;
        }
        let max_width = (0..n_levels)
            .map(|l| level_ptr[l + 1] - level_ptr[l])
            .max()
            .unwrap_or(0);
        Self {
            rows,
            level_ptr,
            max_width,
        }
    }

    /// Number of dependency levels (`n` for a fully chained envelope, `1`
    /// for a diagonal matrix).
    pub fn levels(&self) -> usize {
        self.level_ptr.len() - 1
    }

    /// Scheduled rows (= the matrix dimension).
    pub fn scheduled_rows(&self) -> usize {
        self.rows.len()
    }

    /// The rows of level `l`, ascending.
    pub fn level_rows(&self, l: usize) -> &[u32] {
        &self.rows[self.level_ptr[l]..self.level_ptr[l + 1]]
    }

    /// Rows per level on average — the schedule's available parallelism.
    pub fn avg_rows_per_level(&self) -> f64 {
        self.rows.len() as f64 / self.levels() as f64
    }

    /// Widest level, in rows.
    pub fn max_level_width(&self) -> usize {
        self.max_width
    }

    /// Whether level-parallel execution can beat the serial sweeps on this
    /// schedule (see [`LEVEL_PARALLEL_MIN_AVG_ROWS`]).
    pub fn parallel_worthwhile(&self) -> bool {
        self.avg_rows_per_level() >= LEVEL_PARALLEL_MIN_AVG_ROWS
    }
}

/// Why a matrix could not be factorized.
#[derive(Debug, Clone, PartialEq)]
pub enum FactorError {
    /// The RCM envelope would exceed [`CholOptions::max_profile_entries`].
    /// Direct solves beyond this size stream more memory per step than CG.
    ProfileTooLarge {
        /// Envelope entries the factor would need.
        required: usize,
        /// The configured budget.
        budget: usize,
    },
    /// A pivot was not strictly positive: the matrix is not numerically
    /// positive definite (up to the `1e-12`-scaled tolerance used).
    NotPositiveDefinite {
        /// Row (in the reordered numbering) where factorization broke down.
        row: usize,
    },
}

impl std::fmt::Display for FactorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FactorError::ProfileTooLarge { required, budget } => write!(
                f,
                "factor envelope needs {required} entries, over the budget of {budget}"
            ),
            FactorError::NotPositiveDefinite { row } => {
                write!(f, "matrix is not positive definite (pivot at row {row})")
            }
        }
    }
}

/// Tunables for [`CholeskyFactor::factor`].
#[derive(Debug, Clone, Copy)]
pub struct CholOptions {
    /// Absolute envelope budget in stored entries (8 bytes each); bounds the
    /// factor's memory footprint. Default 4 M entries (32 MB).
    pub max_profile_entries: usize,
    /// Relative envelope budget: entries per matrix row. This is the
    /// direct-vs-CG *performance* crossover — each direct solve streams the
    /// whole envelope twice, while a warm-started CG step touches roughly
    /// `iterations × (nnz + 6n)` values, about 90 per row on the RC networks
    /// this crate builds (≈7 iterations × 13 entries — see DESIGN.md,
    /// "Solver strategy"). The default of 48 accepts the factorization only
    /// where two sweeps cost less than that; wide-envelope grids are
    /// rejected so the caller falls back to CG.
    pub max_profile_per_node: usize,
}

impl Default for CholOptions {
    fn default() -> Self {
        Self {
            max_profile_entries: 4_000_000,
            max_profile_per_node: 48,
        }
    }
}

impl CholOptions {
    /// Options with no profile limits: factor anything positive definite
    /// (validation and tests; production callers should keep the budgets).
    pub fn unbounded() -> Self {
        Self {
            max_profile_entries: usize::MAX,
            max_profile_per_node: usize::MAX,
        }
    }

    /// The effective entry budget for an `n`-row matrix.
    pub fn budget_for(&self, n: usize) -> usize {
        self.max_profile_entries
            .min(self.max_profile_per_node.saturating_mul(n))
    }
}

/// A Cholesky factorization `P A Pᵀ = L Lᵀ` in skyline storage.
///
/// Row `i` of `L` stores the contiguous run `first[i] ..= i`; solving
/// `A x = b` is a forward and a backward sweep over that envelope.
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    n: usize,
    /// `perm[new] = old` — the RCM ordering.
    perm: Vec<u32>,
    /// First stored column of each skyline row.
    first: Vec<u32>,
    /// Offset of row `i`'s first entry in `vals`; the diagonal entry is at
    /// `row_start[i + 1] - 1`.
    row_start: Vec<usize>,
    /// Envelope values of `L`, row-major.
    vals: Vec<f64>,
    /// `1 / L[i][i]`, so the sweeps multiply instead of divide.
    inv_diag: Vec<f64>,
    /// Dependency levels of the triangular sweeps, derived once at factor
    /// time from the envelope extents.
    schedule: LevelSchedule,
}

impl CholeskyFactor {
    /// Factors a symmetric positive-definite CSR matrix.
    ///
    /// # Errors
    ///
    /// [`FactorError::ProfileTooLarge`] when the post-RCM envelope exceeds
    /// the budget, [`FactorError::NotPositiveDefinite`] when a pivot fails.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is empty.
    pub fn factor(a: &CsrMatrix, opts: &CholOptions) -> Result<Self, FactorError> {
        let n = a.n();
        assert!(n > 0, "cannot factor an empty matrix");
        let _span = hotgauge_telemetry::span!("thermal.factor");
        let perm = rcm_order(a);
        let mut iperm = vec![0u32; n];
        for (new, &old) in perm.iter().enumerate() {
            iperm[old as usize] = new as u32;
        }

        // Envelope extents in the new ordering: row i spans from its
        // leftmost (reordered) neighbor to the diagonal.
        let mut first: Vec<u32> = (0..n as u32).collect();
        for old in 0..n {
            let ni = iperm[old] as usize;
            let (cols, _) = a.row(old);
            for &j in cols {
                let nj = iperm[j];
                if nj < first[ni] {
                    first[ni] = nj;
                }
                // Symmetry: the transposed entry widens row nj when ni < nj.
                let nj = nj as usize;
                if (ni as u32) < first[nj] {
                    first[nj] = ni as u32;
                }
            }
        }

        let mut row_start = Vec::with_capacity(n + 1);
        row_start.push(0usize);
        for i in 0..n {
            let width = i + 1 - first[i] as usize;
            row_start.push(row_start[i] + width);
        }
        let required = row_start[n];
        let budget = opts.budget_for(n);
        if required > budget {
            return Err(FactorError::ProfileTooLarge { required, budget });
        }

        // Scatter the (permuted) lower triangle of A into the envelope.
        let mut vals = vec![0.0f64; required];
        for old in 0..n {
            let ni = iperm[old] as usize;
            let (cols, avals) = a.row(old);
            for (&j, &v) in cols.iter().zip(avals) {
                let nj = iperm[j] as usize;
                if nj <= ni {
                    vals[row_start[ni] + nj - first[ni] as usize] = v;
                } else {
                    vals[row_start[nj] + ni - first[nj] as usize] = v;
                }
            }
        }

        // In-place skyline factorization. For each row i and column j < i:
        //   L[i][j] = (A[i][j] − Σₖ L[i][k]·L[j][k]) / L[j][j]
        // with k ranging over the overlap of the two envelopes — a dot of
        // two contiguous slices, which the compiler vectorizes.
        let mut inv_diag = vec![0.0f64; n];
        let scale = max_diag(a);
        for i in 0..n {
            let fi = first[i] as usize;
            let (done, row_i) = vals.split_at_mut(row_start[i]);
            let row_i = &mut row_i[..i + 1 - fi];
            for j in fi..i {
                let fj = first[j] as usize;
                let lo = fi.max(fj);
                let row_j = &done[row_start[j]..row_start[j + 1]];
                let s: f64 = row_i[lo - fi..j - fi]
                    .iter()
                    .zip(&row_j[lo - fj..j - fj])
                    .map(|(a, b)| a * b)
                    .sum();
                row_i[j - fi] = (row_i[j - fi] - s) * inv_diag[j];
            }
            let sq: f64 = row_i[..i - fi].iter().map(|v| v * v).sum();
            let d = row_i[i - fi] - sq;
            // NaN-safe pivot guard: reject non-finite as well as tiny pivots.
            if d.is_nan() || d <= scale * 1e-12 {
                return Err(FactorError::NotPositiveDefinite { row: i });
            }
            let l = d.sqrt();
            row_i[i - fi] = l;
            inv_diag[i] = 1.0 / l;
        }

        let schedule = LevelSchedule::build(&first);
        hotgauge_telemetry::counter!("solver.levels", schedule.levels());
        hotgauge_telemetry::counter!("solver.level_rows", schedule.scheduled_rows());
        Ok(Self {
            n,
            perm,
            first,
            row_start,
            vals,
            inv_diag,
            schedule,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored envelope entries (the per-solve memory footprint in 8-byte
    /// units).
    pub fn profile_entries(&self) -> usize {
        self.vals.len()
    }

    /// The factor-time dependency-level schedule of the triangular sweeps.
    pub fn schedule(&self) -> &LevelSchedule {
        &self.schedule
    }

    /// First stored column of each skyline row (in the RCM ordering): row
    /// `i` of `L` covers `envelope_first()[i] ..= i`. Exposed so tests can
    /// check the level schedule's dependency invariant from outside.
    pub fn envelope_first(&self) -> &[u32] {
        &self.first
    }

    /// Solves `A x = b` via the two triangular sweeps. `work` is caller
    /// scratch of length `n` so repeated solves allocate nothing.
    /// Equivalent to [`CholeskyFactor::solve_with_threads`] at one thread.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn solve(&self, b: &[f64], x: &mut [f64], work: &mut [f64]) {
        self.solve_with_threads(b, x, work, 1);
    }

    /// [`CholeskyFactor::solve`] with a thread budget for the
    /// level-scheduled sweeps: rows within a dependency level are sharded
    /// across scoped threads, each row replaying its exact serial operation
    /// sequence on an exclusive `work` span, so the result is bitwise equal
    /// to the serial sweeps at every budget. Stands down to serial when
    /// `threads <= 1` or the schedule is too shallow
    /// ([`LevelSchedule::parallel_worthwhile`]).
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn solve_with_threads(&self, b: &[f64], x: &mut [f64], work: &mut [f64], threads: usize) {
        let n = self.n;
        assert_eq!(b.len(), n);
        assert_eq!(x.len(), n);
        assert_eq!(work.len(), n);
        let _span = hotgauge_telemetry::span!("thermal.direct_solve");

        // Permute b into the RCM ordering.
        for (i, w) in work.iter_mut().enumerate() {
            *w = b[self.perm[i] as usize];
        }
        {
            let _sweep = hotgauge_telemetry::span!("solver.tri_sweep");
            if self.use_levels(threads) {
                let sched = &self.schedule;
                // Forward sweep, level by level.
                for l in 0..sched.levels() {
                    self.run_level(sched.level_rows(l), work, threads, 1, &|i, base, w| {
                        self.fwd_row(i, base, w)
                    });
                }
                // Backward sweep: deepest level first replays the serial
                // descending-row update order for every element.
                for l in (0..sched.levels()).rev() {
                    self.run_level(sched.level_rows(l), work, threads, 1, &|i, base, w| {
                        self.bwd_row(i, base, w)
                    });
                }
            } else {
                // Forward sweep: L y = Pb. Each row is a contiguous dot.
                for i in 0..n {
                    self.fwd_row(i, 0, work);
                }
                // Backward sweep: Lᵀ z = y, as per-row axpy updates.
                for i in (0..n).rev() {
                    self.bwd_row(i, 0, work);
                }
            }
        }
        // Un-permute into x.
        for (i, &w) in work.iter().enumerate() {
            x[self.perm[i] as usize] = w;
        }
    }

    /// Solves `k` systems `A xₗ = bₗ` in one pair of blocked triangular
    /// sweeps over node-major, lane-minor `[n × k]` blocks
    /// (`b[node * k + lane]`). The envelope — the factor's entire memory
    /// footprint — is streamed **once** for all `k` right-hand sides, and
    /// the inner lane loops run over contiguous slices, so the per-solve
    /// cost amortizes to `1/k` of the index/value traffic of `k` solo
    /// sweeps. Equivalent to [`CholeskyFactor::solve_multi_with_threads`]
    /// at one thread.
    ///
    /// Per lane, the floating-point operation sequence (permute, ascending
    /// forward dots, descending backward axpys, un-permute) is identical to
    /// [`CholeskyFactor::solve`], so each lane's column of `x` is bitwise
    /// equal to a solo solve of that lane.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k > MAX_LOCKSTEP_WIDTH` (see
    /// [`crate::solver::MAX_LOCKSTEP_WIDTH`]), or on length mismatches
    /// (`b`, `x`, `work` must all be `n * k`).
    pub fn solve_multi(&self, k: usize, b: &[f64], x: &mut [f64], work: &mut [f64]) {
        self.solve_multi_with_threads(k, b, x, work, 1);
    }

    /// [`CholeskyFactor::solve_multi`] with a thread budget for the
    /// level-scheduled sweeps (same plan and bitwise guarantee as
    /// [`CholeskyFactor::solve_with_threads`], applied to the K-wide
    /// lockstep block).
    ///
    /// # Panics
    ///
    /// As [`CholeskyFactor::solve_multi`].
    pub fn solve_multi_with_threads(
        &self,
        k: usize,
        b: &[f64],
        x: &mut [f64],
        work: &mut [f64],
        threads: usize,
    ) {
        use crate::solver::MAX_LOCKSTEP_WIDTH;
        let n = self.n;
        assert!((1..=MAX_LOCKSTEP_WIDTH).contains(&k));
        assert_eq!(b.len(), n * k);
        assert_eq!(x.len(), n * k);
        assert_eq!(work.len(), n * k);
        let _span = hotgauge_telemetry::span!("thermal.direct_solve");

        // Permute b into the RCM ordering, all lanes at once.
        for (i, wrow) in work.chunks_exact_mut(k).enumerate() {
            let brow = &b[self.perm[i] as usize * k..self.perm[i] as usize * k + k];
            wrow.copy_from_slice(brow);
        }
        {
            let _sweep = hotgauge_telemetry::span!("solver.tri_sweep");
            // Monomorphized sweeps for the power-of-two widths the lockstep
            // batcher produces: a compile-time lane count turns the inner
            // lane loops into straight vector code. The per-lane operation
            // order is identical at every width, specialized or not.
            match k {
                1 => self.multi_sweeps_k::<1>(work, threads),
                2 => self.multi_sweeps_k::<2>(work, threads),
                4 => self.multi_sweeps_k::<4>(work, threads),
                8 => self.multi_sweeps_k::<8>(work, threads),
                16 => self.multi_sweeps_k::<16>(work, threads),
                _ => self.multi_sweeps_any(k, work, threads),
            }
        }
        // Un-permute into x.
        for (i, wrow) in work.chunks_exact(k).enumerate() {
            let xrow = &mut x[self.perm[i] as usize * k..self.perm[i] as usize * k + k];
            xrow.copy_from_slice(wrow);
        }
    }

    /// Whether the level-parallel sweeps should run for this thread budget.
    fn use_levels(&self, threads: usize) -> bool {
        threads > 1 && self.schedule.parallel_worthwhile()
    }

    /// Forward-substitution op of row `i` on a work slice whose element 0
    /// is node `base`: a contiguous dot over the envelope row. The
    /// operation sequence is independent of `base`.
    #[inline]
    fn fwd_row(&self, i: usize, base: usize, w: &mut [f64]) {
        let fi = self.first[i] as usize;
        let row = &self.vals[self.row_start[i]..self.row_start[i + 1]];
        let s: f64 = row[..i - fi]
            .iter()
            .zip(&w[fi - base..i - base])
            .map(|(l, wv)| l * wv)
            .sum();
        w[i - base] = (w[i - base] - s) * self.inv_diag[i];
    }

    /// Backward-substitution op of row `i`: scale the diagonal element,
    /// then axpy the envelope row into `w[first[i]..i]`.
    #[inline]
    fn bwd_row(&self, i: usize, base: usize, w: &mut [f64]) {
        let fi = self.first[i] as usize;
        let row = &self.vals[self.row_start[i]..self.row_start[i + 1]];
        let zi = w[i - base] * self.inv_diag[i];
        w[i - base] = zi;
        for (wv, &l) in w[fi - base..i - base].iter_mut().zip(row) {
            *wv -= l * zi;
        }
    }

    /// [`CholeskyFactor::fwd_row`] for `K` lockstep lanes over a node-major
    /// lane-minor slice (accumulators on the stack, lane loops unrolled at
    /// compile time).
    #[inline]
    fn fwd_row_k<const K: usize>(&self, i: usize, base: usize, w: &mut [f64]) {
        let fi = self.first[i] as usize;
        let row = &self.vals[self.row_start[i]..self.row_start[i + 1]];
        let mut s = [0.0f64; K];
        for (j, &l) in (fi..i).zip(row) {
            let wrow = &w[(j - base) * K..(j - base) * K + K];
            for (acc, &wv) in s.iter_mut().zip(wrow) {
                *acc += l * wv;
            }
        }
        let di = self.inv_diag[i];
        let wrow = &mut w[(i - base) * K..(i - base) * K + K];
        for (wv, &acc) in wrow.iter_mut().zip(s.iter()) {
            *wv = (*wv - acc) * di;
        }
    }

    /// [`CholeskyFactor::bwd_row`] for `K` lockstep lanes: per-row rank-1
    /// lane-block update.
    #[inline]
    fn bwd_row_k<const K: usize>(&self, i: usize, base: usize, w: &mut [f64]) {
        let fi = self.first[i] as usize;
        let row = &self.vals[self.row_start[i]..self.row_start[i + 1]];
        let di = self.inv_diag[i];
        let mut z = [0.0f64; K];
        {
            let wrow = &mut w[(i - base) * K..(i - base) * K + K];
            for (zi, wv) in z.iter_mut().zip(wrow.iter_mut()) {
                *zi = *wv * di;
                *wv = *zi;
            }
        }
        for (j, &l) in (fi..i).zip(row) {
            let wrow = &mut w[(j - base) * K..(j - base) * K + K];
            for (wv, &zi) in wrow.iter_mut().zip(z.iter()) {
                *wv -= l * zi;
            }
        }
    }

    /// Runtime-width variant of [`CholeskyFactor::fwd_row_k`] for the odd
    /// lane counts (straggler batches) the monomorphized dispatch skips.
    #[inline]
    fn fwd_row_any(&self, k: usize, i: usize, base: usize, w: &mut [f64]) {
        use crate::solver::MAX_LOCKSTEP_WIDTH;
        let fi = self.first[i] as usize;
        let row = &self.vals[self.row_start[i]..self.row_start[i + 1]];
        let mut s = [0.0f64; MAX_LOCKSTEP_WIDTH];
        let sl = &mut s[..k];
        for (j, &l) in (fi..i).zip(row) {
            let wrow = &w[(j - base) * k..(j - base) * k + k];
            for (acc, &wv) in sl.iter_mut().zip(wrow) {
                *acc += l * wv;
            }
        }
        let di = self.inv_diag[i];
        let wrow = &mut w[(i - base) * k..(i - base) * k + k];
        for (wv, &acc) in wrow.iter_mut().zip(sl.iter()) {
            *wv = (*wv - acc) * di;
        }
    }

    /// Runtime-width variant of [`CholeskyFactor::bwd_row_k`].
    #[inline]
    fn bwd_row_any(&self, k: usize, i: usize, base: usize, w: &mut [f64]) {
        use crate::solver::MAX_LOCKSTEP_WIDTH;
        let fi = self.first[i] as usize;
        let row = &self.vals[self.row_start[i]..self.row_start[i + 1]];
        let di = self.inv_diag[i];
        let mut z = [0.0f64; MAX_LOCKSTEP_WIDTH];
        let zl = &mut z[..k];
        {
            let wrow = &mut w[(i - base) * k..(i - base) * k + k];
            for (zi, wv) in zl.iter_mut().zip(wrow.iter_mut()) {
                *zi = *wv * di;
                *wv = *zi;
            }
        }
        for (j, &l) in (fi..i).zip(row) {
            let wrow = &mut w[(j - base) * k..(j - base) * k + k];
            for (wv, &zi) in wrow.iter_mut().zip(zl.iter()) {
                *wv -= l * zi;
            }
        }
    }

    /// Both multi-RHS sweeps at compile-time width `K`, level-scheduled
    /// when the budget and schedule allow.
    fn multi_sweeps_k<const K: usize>(&self, work: &mut [f64], threads: usize) {
        if self.use_levels(threads) {
            let sched = &self.schedule;
            for l in 0..sched.levels() {
                self.run_level(sched.level_rows(l), work, threads, K, &|i, base, w| {
                    self.fwd_row_k::<K>(i, base, w)
                });
            }
            for l in (0..sched.levels()).rev() {
                self.run_level(sched.level_rows(l), work, threads, K, &|i, base, w| {
                    self.bwd_row_k::<K>(i, base, w)
                });
            }
        } else {
            for i in 0..self.n {
                self.fwd_row_k::<K>(i, 0, work);
            }
            for i in (0..self.n).rev() {
                self.bwd_row_k::<K>(i, 0, work);
            }
        }
    }

    /// Both multi-RHS sweeps at runtime width `k`.
    fn multi_sweeps_any(&self, k: usize, work: &mut [f64], threads: usize) {
        if self.use_levels(threads) {
            let sched = &self.schedule;
            for l in 0..sched.levels() {
                self.run_level(sched.level_rows(l), work, threads, k, &|i, base, w| {
                    self.fwd_row_any(k, i, base, w)
                });
            }
            for l in (0..sched.levels()).rev() {
                self.run_level(sched.level_rows(l), work, threads, k, &|i, base, w| {
                    self.bwd_row_any(k, i, base, w)
                });
            }
        } else {
            for i in 0..self.n {
                self.fwd_row_any(k, i, 0, work);
            }
            for i in (0..self.n).rev() {
                self.bwd_row_any(k, i, 0, work);
            }
        }
    }

    /// Executes one dependency level: rows split into near-equal contiguous
    /// runs, each run owning the exclusive `work` span its rows touch
    /// (disjoint by the level invariant — see [`LevelSchedule`]), with
    /// narrow levels running inline on the calling thread. `stride` is the
    /// lane count (elements per node) of `work`.
    fn run_level<F>(
        &self,
        rows: &[u32],
        work: &mut [f64],
        threads: usize,
        stride: usize,
        row_op: &F,
    ) where
        F: Fn(usize, usize, &mut [f64]) + Sync,
    {
        let m = rows.len();
        let shards = threads
            .min(MAX_SOLVE_SHARDS)
            .min(m / LEVEL_SHARD_MIN_ROWS)
            .max(1);
        if shards <= 1 {
            for &i in rows {
                row_op(i as usize, 0, work);
            }
            return;
        }
        // Same-level rows have ascending, pairwise disjoint envelope
        // intervals `[first[i], i]`, so consecutive runs split `work` into
        // non-overlapping spans; the gaps between spans belong to rows of
        // other levels and are not touched here.
        let chunk = m.div_ceil(shards);
        std::thread::scope(|scope| {
            let mut rest: &mut [f64] = work;
            let mut consumed = 0usize; // node index where `rest` begins
            for run in rows.chunks(chunk) {
                let base = self.first[run[0] as usize] as usize;
                let end = run[run.len() - 1] as usize + 1;
                let (_, tail) = rest.split_at_mut((base - consumed) * stride);
                let (span, tail) = tail.split_at_mut((end - base) * stride);
                rest = tail;
                consumed = end;
                scope.spawn(move || {
                    for &i in run {
                        row_op(i as usize, base, span);
                    }
                });
            }
        });
    }

    /// [`CholeskyFactor::solve`] allocating its own scratch (convenience
    /// for one-off solves and tests).
    pub fn solve_alloc(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        let mut work = vec![0.0; self.n];
        self.solve(b, &mut x, &mut work);
        x
    }
}

/// Largest diagonal entry, used to scale the positive-pivot tolerance.
fn max_diag(a: &CsrMatrix) -> f64 {
    a.diagonal().into_iter().fold(0.0f64, f64::max)
}

/// Reverse Cuthill–McKee ordering: BFS from a pseudo-peripheral vertex,
/// visiting neighbors by increasing degree, then reversed. Returns
/// `perm[new] = old`.
fn rcm_order(a: &CsrMatrix) -> Vec<u32> {
    let n = a.n();
    let degree = |i: usize| a.row(i).0.len();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut neighbors: Vec<u32> = Vec::new();

    // The graph is connected for real thermal stacks, but handle multiple
    // components (e.g. test matrices) by restarting the BFS.
    for seed in 0..n {
        if visited[seed] {
            continue;
        }
        let root = pseudo_peripheral(a, seed);
        let level_start = order.len();
        visited[root] = true;
        order.push(root as u32);
        let mut head = level_start;
        while head < order.len() {
            let v = order[head] as usize;
            head += 1;
            neighbors.clear();
            for &j in a.row(v).0 {
                if j != v && !visited[j] {
                    visited[j] = true;
                    neighbors.push(j as u32);
                }
            }
            neighbors.sort_unstable_by_key(|&j| degree(j as usize));
            order.extend_from_slice(&neighbors);
        }
    }
    order.reverse();
    order
}

/// George–Liu pseudo-peripheral vertex: repeat BFS from the far end of the
/// previous sweep while the eccentricity keeps growing.
fn pseudo_peripheral(a: &CsrMatrix, seed: usize) -> usize {
    let n = a.n();
    let mut root = seed;
    let mut depth_prev = 0usize;
    let mut level = vec![u32::MAX; n];
    let mut queue: Vec<u32> = Vec::new();
    for _ in 0..8 {
        level.iter_mut().for_each(|l| *l = u32::MAX);
        queue.clear();
        queue.push(root as u32);
        level[root] = 0;
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head] as usize;
            head += 1;
            for &j in a.row(v).0 {
                if j != v && level[j] == u32::MAX {
                    level[j] = level[v] + 1;
                    queue.push(j as u32);
                }
            }
        }
        // hotgauge-lint: allow(L001, "the BFS queue is seeded with the root before the loop, so it is never empty here")
        let depth = level[*queue.last().unwrap() as usize] as usize;
        if depth <= depth_prev {
            break;
        }
        depth_prev = depth;
        // Smallest-degree vertex of the deepest level.
        root = queue
            .iter()
            .rev()
            .take_while(|&&v| level[v as usize] as usize == depth)
            .map(|&v| v as usize)
            .min_by_key(|&v| a.row(v).0.len())
            .unwrap_or(root);
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    fn poisson(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n);
        for i in 0..n - 1 {
            b.add_conductance(i, i + 1, 1.0);
        }
        b.add_grounded_conductance(0, 1.0);
        b.add_grounded_conductance(n - 1, 1.0);
        b.build()
    }

    /// A 3-D grid Laplacian like the thermal model's, with a grounded top.
    fn grid3d(nx: usize, ny: usize, nz: usize) -> CsrMatrix {
        let node = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
        let mut b = TripletBuilder::new(nx * ny * nz);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    let i = node(x, y, z);
                    if x + 1 < nx {
                        b.add_conductance(i, node(x + 1, y, z), 1.0 + (i % 5) as f64 * 0.1);
                    }
                    if y + 1 < ny {
                        b.add_conductance(i, node(x, y + 1, z), 1.5);
                    }
                    if z + 1 < nz {
                        b.add_conductance(i, node(x, y, z + 1), 4.0);
                    } else {
                        b.add_grounded_conductance(i, 2.0);
                    }
                }
            }
        }
        b.build()
    }

    #[test]
    fn factors_and_solves_poisson_exactly() {
        let a = poisson(50);
        let f = CholeskyFactor::factor(&a, &CholOptions::default()).unwrap();
        let x_true: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).cos() * 3.0).collect();
        let b = a.mul_vec_alloc(&x_true);
        let x = f.solve_alloc(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10, "{got} vs {want}");
        }
    }

    #[test]
    fn solves_grid_system_to_machine_precision() {
        let a = grid3d(9, 7, 4);
        let n = a.n();
        let f = CholeskyFactor::factor(&a, &CholOptions::unbounded()).unwrap();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 37) % 19) as f64 - 9.0).collect();
        let b = a.mul_vec_alloc(&x_true);
        let x = f.solve_alloc(&b);
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 1e-9, "error {err}");
    }

    #[test]
    fn solve_is_reusable_across_rhs() {
        let a = grid3d(6, 6, 3);
        let f = CholeskyFactor::factor(&a, &CholOptions::default()).unwrap();
        let mut work = vec![0.0; a.n()];
        let mut x = vec![0.0; a.n()];
        for seed in 0..4u64 {
            let b: Vec<f64> = (0..a.n())
                .map(|i| ((i as u64).wrapping_mul(seed + 1) % 13) as f64)
                .collect();
            f.solve(&b, &mut x, &mut work);
            let r = a.mul_vec_alloc(&x);
            for (ri, bi) in r.iter().zip(&b) {
                assert!((ri - bi).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn rejects_indefinite_matrix() {
        // A pure Laplacian without grounding is only semi-definite.
        let mut b = TripletBuilder::new(4);
        for i in 0..3 {
            b.add_conductance(i, i + 1, 1.0);
        }
        let a = b.build();
        match CholeskyFactor::factor(&a, &CholOptions::default()) {
            Err(FactorError::NotPositiveDefinite { .. }) => {}
            other => panic!("expected indefinite rejection, got {other:?}"),
        }
    }

    #[test]
    fn rejects_oversized_profile() {
        let a = grid3d(12, 12, 4);
        let opts = CholOptions {
            max_profile_entries: 100,
            max_profile_per_node: usize::MAX,
        };
        match CholeskyFactor::factor(&a, &opts) {
            Err(FactorError::ProfileTooLarge { required, budget }) => {
                assert!(required > budget);
                assert_eq!(budget, 100);
            }
            other => panic!("expected profile rejection, got {other:?}"),
        }
    }

    #[test]
    fn per_node_budget_rejects_wide_envelopes() {
        // A 3-D grid whose RCM envelope is far wider than 2 entries/row.
        let a = grid3d(12, 12, 4);
        let opts = CholOptions {
            max_profile_entries: usize::MAX,
            max_profile_per_node: 2,
        };
        match CholeskyFactor::factor(&a, &opts) {
            Err(FactorError::ProfileTooLarge { required, budget }) => {
                assert_eq!(budget, 2 * a.n());
                assert!(required > budget);
            }
            other => panic!("expected profile rejection, got {other:?}"),
        }
        // A tridiagonal chain fits in 2 entries/row even after RCM.
        let p = poisson(64);
        assert!(CholeskyFactor::factor(&p, &opts).is_ok());
    }

    #[test]
    fn rcm_is_a_permutation_and_shrinks_the_profile() {
        let a = grid3d(10, 8, 5);
        let perm = rcm_order(&a);
        let mut seen = vec![false; a.n()];
        for &p in &perm {
            assert!(!seen[p as usize], "duplicate {p}");
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // The RCM envelope must not exceed the worst natural-order
        // bandwidth times n (it is far smaller for this grid).
        let f = CholeskyFactor::factor(&a, &CholOptions::unbounded()).unwrap();
        assert!(f.profile_entries() < a.n() * 10 * 8);
    }

    #[test]
    fn handles_disconnected_components() {
        let mut b = TripletBuilder::new(6);
        b.add_conductance(0, 1, 1.0);
        b.add_grounded_conductance(0, 1.0);
        b.add_conductance(3, 4, 2.0);
        b.add_grounded_conductance(3, 1.0);
        b.add_grounded_conductance(2, 5.0);
        b.add_grounded_conductance(5, 5.0);
        b.add_grounded_conductance(1, 0.5);
        b.add_grounded_conductance(4, 0.5);
        let a = b.build();
        let f = CholeskyFactor::factor(&a, &CholOptions::default()).unwrap();
        let x_true = vec![1.0, -1.0, 2.0, 0.5, 3.0, -2.0];
        let b = a.mul_vec_alloc(&x_true);
        let x = f.solve_alloc(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_multi_is_bitwise_equal_per_lane() {
        let mut a = grid3d(7, 6, 4);
        let cdt: Vec<f64> = (0..a.n()).map(|i| 1.0 + (i % 7) as f64 * 0.5).collect();
        a.add_to_diagonal(&cdt);
        let n = a.n();
        let f = CholeskyFactor::factor(&a, &CholOptions::unbounded()).unwrap();
        // Odd widths take the runtime-k sweep, the rest the monomorphized
        // dispatch; both must match solo solves bitwise.
        for k in [1usize, 2, 3, 4, 5, 8, 16] {
            let lanes: Vec<Vec<f64>> = (0..k)
                .map(|l| {
                    (0..n)
                        .map(|i| (((i * 17 + l * 5) % 31) as f64) - 15.0)
                        .collect()
                })
                .collect();
            let mut b = vec![0.0; n * k];
            for (l, lane) in lanes.iter().enumerate() {
                for i in 0..n {
                    b[i * k + l] = lane[i];
                }
            }
            let mut x = vec![f64::NAN; n * k];
            let mut work = vec![0.0; n * k];
            f.solve_multi(k, &b, &mut x, &mut work);
            for (l, lane) in lanes.iter().enumerate() {
                let solo = f.solve_alloc(lane);
                for i in 0..n {
                    assert_eq!(
                        x[i * k + l].to_bits(),
                        solo[i].to_bits(),
                        "k={k} lane={l} node={i}"
                    );
                }
            }
        }
    }

    /// `count` disconnected grounded chains of `len` nodes each — a
    /// block-diagonal system whose level schedule is `len` levels of width
    /// `count`, wide enough to engage the sharded sweeps.
    fn chains(count: usize, len: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(count * len);
        for c in 0..count {
            let base = c * len;
            for i in 0..len - 1 {
                b.add_conductance(base + i, base + i + 1, 1.0 + (c % 3) as f64 * 0.25);
            }
            b.add_grounded_conductance(base, 1.0);
            b.add_grounded_conductance(base + len - 1, 0.5);
        }
        b.build()
    }

    #[test]
    fn level_schedule_invariant_holds() {
        for a in [grid3d(7, 6, 4), chains(40, 5), poisson(64)] {
            let f = CholeskyFactor::factor(&a, &CholOptions::unbounded()).unwrap();
            let s = f.schedule();
            assert_eq!(s.scheduled_rows(), a.n());
            let mut level = vec![usize::MAX; a.n()];
            for l in 0..s.levels() {
                let rows = s.level_rows(l);
                assert!(!rows.is_empty(), "empty level {l}");
                for w in rows.windows(2) {
                    assert!(w[0] < w[1], "rows not ascending within level");
                    // Same-level envelopes must be pairwise disjoint — this
                    // is what lets run_level split `work` into exclusive
                    // spans.
                    assert!(
                        f.first[w[1] as usize] > w[0],
                        "same-level envelopes overlap: rows {} and {}",
                        w[0],
                        w[1]
                    );
                }
                for &r in rows {
                    level[r as usize] = l;
                }
            }
            // Every in-envelope predecessor sits in a strictly earlier level.
            for i in 0..a.n() {
                for j in f.first[i] as usize..i {
                    assert!(
                        level[j] < level[i],
                        "row {i} (level {}) depends on row {j} (level {})",
                        level[i],
                        level[j]
                    );
                }
            }
        }
    }

    #[test]
    fn connected_grid_schedule_degenerates_to_a_chain() {
        // On a connected RCM-ordered grid every row's envelope reaches its
        // immediate predecessor, so the schedule is one row per level and
        // the parallel path must stand down.
        let a = grid3d(9, 7, 4);
        let f = CholeskyFactor::factor(&a, &CholOptions::unbounded()).unwrap();
        let s = f.schedule();
        assert_eq!(s.levels(), a.n());
        assert_eq!(s.max_level_width(), 1);
        assert!(!s.parallel_worthwhile());
    }

    #[test]
    fn threaded_solve_is_bitwise_equal_to_serial() {
        let mut a = chains(2500, 4);
        let cdt: Vec<f64> = (0..a.n()).map(|i| 1.0 + (i % 5) as f64 * 0.3).collect();
        a.add_to_diagonal(&cdt);
        let n = a.n();
        let f = CholeskyFactor::factor(&a, &CholOptions::default()).unwrap();
        let s = f.schedule();
        assert!(s.parallel_worthwhile(), "avg {}", s.avg_rows_per_level());
        assert!(
            s.max_level_width() >= 2 * LEVEL_SHARD_MIN_ROWS,
            "width {} too narrow to spawn shards",
            s.max_level_width()
        );
        let b: Vec<f64> = (0..n).map(|i| (((i * 13) % 37) as f64) - 18.0).collect();
        let serial = f.solve_alloc(&b);
        let mut x = vec![f64::NAN; n];
        let mut work = vec![0.0; n];
        for threads in [2usize, 4, 16] {
            f.solve_with_threads(&b, &mut x, &mut work, threads);
            for i in 0..n {
                assert_eq!(
                    x[i].to_bits(),
                    serial[i].to_bits(),
                    "threads={threads} node={i}"
                );
            }
        }
    }

    #[test]
    fn threaded_solve_multi_is_bitwise_equal_to_serial() {
        let mut a = chains(2500, 4);
        let cdt: Vec<f64> = (0..a.n()).map(|i| 1.0 + (i % 7) as f64 * 0.5).collect();
        a.add_to_diagonal(&cdt);
        let n = a.n();
        let f = CholeskyFactor::factor(&a, &CholOptions::default()).unwrap();
        for k in [1usize, 2, 3, 8] {
            let b: Vec<f64> = (0..n * k)
                .map(|i| (((i * 29) % 41) as f64) - 20.0)
                .collect();
            let mut serial = vec![f64::NAN; n * k];
            let mut work = vec![0.0; n * k];
            f.solve_multi(k, &b, &mut serial, &mut work);
            let mut x = vec![f64::NAN; n * k];
            for threads in [2usize, 4] {
                f.solve_multi_with_threads(k, &b, &mut x, &mut work, threads);
                for i in 0..n * k {
                    assert_eq!(
                        x[i].to_bits(),
                        serial[i].to_bits(),
                        "k={k} threads={threads} slot={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn matches_cg_on_backward_euler_system() {
        use crate::solver::{solve_cg, CgConfig};
        let mut a = grid3d(8, 8, 4);
        let cdt: Vec<f64> = (0..a.n()).map(|i| 1.0 + (i % 7) as f64 * 0.5).collect();
        a.add_to_diagonal(&cdt);
        let b: Vec<f64> = (0..a.n()).map(|i| ((i % 11) as f64) - 5.0).collect();
        let f = CholeskyFactor::factor(&a, &CholOptions::unbounded()).unwrap();
        let direct = f.solve_alloc(&b);
        let mut cg = vec![0.0; a.n()];
        let stats = solve_cg(
            &a,
            &b,
            &mut cg,
            &CgConfig {
                tolerance: 1e-12,
                max_iterations: 50_000,
            },
        );
        assert!(stats.converged);
        for (d, c) in direct.iter().zip(&cg) {
            assert!((d - c).abs() < 1e-7, "{d} vs {c}");
        }
    }
}
