//! Initial-condition helpers: cold start and idle warm-up.
//!
//! The paper initializes the thermal stack non-uniformly to model "the fact
//! that CPUs have other workloads running on the system (e.g., background
//! tasks, OS tasks, and recently context switched workloads)" (§III-C), and
//! Fig. 8/11 contrast *no warmup (from ambient)* against an *idle warmup*.

use serde::{Deserialize, Serialize};

use crate::model::{ThermalModel, ThermalSim};

/// The initial thermal condition of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Warmup {
    /// Cold start: the whole stack at ambient.
    Cold,
    /// Idle warm-up: the stack settled under an idle/OS background power
    /// trace before the workload starts.
    Idle,
}

impl Warmup {
    /// Label used in figures, matching the paper's terminology.
    pub fn label(&self) -> &'static str {
        match self {
            Warmup::Cold => "no warmup",
            Warmup::Idle => "idle warmup",
        }
    }

    /// Both warm-up scenarios studied in the paper.
    pub const ALL: [Warmup; 2] = [Warmup::Cold, Warmup::Idle];
}

/// Produces a full-domain initial state for the given warm-up scenario.
///
/// * `Cold` — every node at the stack ambient.
/// * `Idle` — transient simulation under `idle_power` (a per-die-cell power
///   map, watts) for `duration_s`, starting from ambient. A transient (not
///   steady-state) warm-up is used deliberately: an OS that has been running
///   briefly leaves the die warm but the heatsink still cool, which is the
///   condition that makes warmed-up hotspots appear "more than 4× faster"
///   (Fig. 8b).
pub fn initial_state(
    model: &ThermalModel,
    warmup: Warmup,
    idle_power: &[f64],
    duration_s: f64,
    dt_s: f64,
) -> Vec<f64> {
    match warmup {
        Warmup::Cold => vec![model.stack().ambient_c; model.node_count()],
        Warmup::Idle => {
            let mut sim = ThermalSim::new(model.clone(), model.stack().ambient_c);
            let steps = (duration_s / dt_s).ceil().max(1.0) as usize;
            for _ in 0..steps {
                sim.step(idle_power, dt_s);
            }
            sim.state().to_vec()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stack::StackDescription;

    #[test]
    fn cold_state_is_uniform_ambient() {
        let m = ThermalModel::new(StackDescription::client_cpu(10, 10, 500.0));
        let s = initial_state(&m, Warmup::Cold, &vec![0.0; 100], 1.0, 1e-3);
        assert!(s.iter().all(|&t| (t - 40.0).abs() < 1e-12));
    }

    #[test]
    fn idle_state_is_warmer_and_nonuniform() {
        let m = ThermalModel::new(StackDescription::client_cpu(10, 10, 500.0));
        let mut idle = vec![0.0; 100];
        // Heat one corner of the die, as an asymmetric background task would.
        for iy in 0..4 {
            for ix in 0..4 {
                idle[iy * 10 + ix] = 0.05;
            }
        }
        let s = initial_state(&m, Warmup::Idle, &idle, 0.05, 5e-3);
        let max = s.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = s.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max > 40.1, "warmup should heat the stack (max {max})");
        assert!(max - min > 0.01, "warmup state should be non-uniform");
    }

    #[test]
    fn labels() {
        assert_eq!(Warmup::Cold.label(), "no warmup");
        assert_eq!(Warmup::Idle.label(), "idle warmup");
    }
}
