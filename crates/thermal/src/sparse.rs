//! Minimal sparse linear algebra: CSR matrices built from triplets.
//!
//! The thermal RC network produces symmetric positive-definite systems with
//! ~7 nonzeros per row; CSR plus either conjugate gradients
//! (see [`crate::solver`]) or a factor-once direct solver
//! (see [`crate::chol`]) is all that is needed.
//!
//! The matrix-vector kernels shard across `std::thread::scope` row chunks
//! once a matrix is large enough to amortize thread spawning; below
//! [`PARALLEL_NNZ_CROSSOVER`] they stay serial so the small matrices used by
//! tests and coarse grids never pay the spawn cost.

/// Nonzeros below which `mul_vec` stays single-threaded. Spawning a scoped
/// thread costs tens of microseconds; a serial SpMV pass over this many
/// nonzeros costs about the same, so parallelism only pays above it.
pub const PARALLEL_NNZ_CROSSOVER: usize = 1 << 20;

/// Detected hardware parallelism, cached after the first query.
pub fn hardware_threads() -> usize {
    use std::sync::OnceLock;
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Threads worth using for `work` units of row-chunk work: 1 below the
/// crossover, then one more thread per crossover's worth of nonzeros up to
/// the hardware limit.
fn threads_for(work: usize) -> usize {
    if work < PARALLEL_NNZ_CROSSOVER {
        1
    } else {
        hardware_threads().min(work / PARALLEL_NNZ_CROSSOVER + 1)
    }
}

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows (== columns; all matrices here are square).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The stored entries of row `i` as `(column indices, values)`.
    pub fn row(&self, i: usize) -> (&[usize], &[f64]) {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// The diagonal entries (0 where a row has no stored diagonal).
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n];
        for (i, di) in d.iter_mut().enumerate() {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.col_idx[k] == i {
                    *di = self.values[k];
                }
            }
        }
        d
    }

    /// `y = A x`, sharded across row chunks when the matrix is large enough
    /// (see [`PARALLEL_NNZ_CROSSOVER`]).
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match the matrix dimension.
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        self.mul_vec_threads(x, y, threads_for(self.nnz()));
    }

    /// `y = A x` and returns `xᵀ A x` from the same pass — the fused
    /// SpMV + dot the CG iteration needs (`p·Ap`).
    pub fn mul_vec_dot(&self, x: &[f64], y: &mut [f64]) -> f64 {
        self.mul_vec_threads(x, y, threads_for(self.nnz()));
        // One reduction pass over two streams that are still cache-hot from
        // the SpMV; cheaper than threading the accumulator through the
        // sharded kernel.
        x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
    }

    /// `y = A x` with an explicit worker count (1 ⇒ the serial kernel).
    /// Exposed so equivalence tests can exercise the sharded path on any
    /// machine regardless of its core count.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match the matrix dimension or
    /// `threads == 0`.
    pub fn mul_vec_threads(&self, x: &[f64], y: &mut [f64], threads: usize) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        assert!(threads >= 1);
        if threads == 1 || self.n < 2 {
            self.mul_vec_rows(x, y, 0);
            return;
        }
        let threads = threads.min(self.n);
        let rows_per = self.n.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut rest = y;
            let mut row0 = 0usize;
            while !rest.is_empty() {
                let take = rows_per.min(rest.len());
                let (chunk, tail) = rest.split_at_mut(take);
                let start = row0;
                scope.spawn(move || self.mul_vec_rows(x, chunk, start));
                rest = tail;
                row0 += take;
            }
        });
    }

    /// Serial SpMV of rows `row0 .. row0 + y.len()` into `y`.
    fn mul_vec_rows(&self, x: &[f64], y: &mut [f64], row0: usize) {
        for (di, yi) in y.iter_mut().enumerate() {
            let i = row0 + di;
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yi = acc;
        }
    }

    /// Multi-RHS SpMV over a structure-of-arrays block: `x` and `y` hold
    /// `k` interleaved columns in node-major, lane-minor order
    /// (`x[node * k + lane]`), and each row's index list is streamed **once**
    /// for all `k` lanes. The inner lane loop runs over a contiguous slice,
    /// so it auto-vectorizes where the column-at-a-time path reloads
    /// `col_idx` per lane.
    ///
    /// Per lane the accumulation order is identical to the serial
    /// [`Self::mul_vec`] kernel (ascending nonzeros, one final store), so
    /// lane `l` of `y` is bitwise equal to `mul_vec` on lane `l` of `x`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the block lengths are not `n * k`.
    pub fn mul_vec_multi(&self, k: usize, x: &[f64], y: &mut [f64]) {
        assert!(k >= 1);
        assert_eq!(x.len(), self.n * k);
        assert_eq!(y.len(), self.n * k);
        for (i, yrow) in y.chunks_exact_mut(k).enumerate() {
            yrow.fill(0.0);
            for nz in self.row_ptr[i]..self.row_ptr[i + 1] {
                let v = self.values[nz];
                let xrow = &x[self.col_idx[nz] * k..self.col_idx[nz] * k + k];
                for (yl, &xl) in yrow.iter_mut().zip(xrow) {
                    *yl += v * xl;
                }
            }
        }
    }

    /// Multi-RHS fused SpMV + quadratic form: `y = A x` per lane via
    /// [`Self::mul_vec_multi`], then `pap[l] = xₗᵀ A xₗ` accumulated in the
    /// same ascending-row order as the single-RHS [`Self::mul_vec_dot`], so
    /// every lane's dot is bitwise equal to its solo counterpart.
    pub fn mul_vec_dot_multi(&self, k: usize, x: &[f64], y: &mut [f64], pap: &mut [f64]) {
        assert_eq!(pap.len(), k);
        self.mul_vec_multi(k, x, y);
        pap.fill(0.0);
        for (xrow, yrow) in x.chunks_exact(k).zip(y.chunks_exact(k)) {
            for ((pl, &xl), &yl) in pap.iter_mut().zip(xrow).zip(yrow) {
                *pl += xl * yl;
            }
        }
    }

    /// Returns `A x` as a fresh vector.
    pub fn mul_vec_alloc(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.mul_vec(x, &mut y);
        y
    }

    /// Entry `(i, j)` (zero if not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        for k in self.row_ptr[i]..self.row_ptr[i + 1] {
            if self.col_idx[k] == j {
                return self.values[k];
            }
        }
        0.0
    }

    /// Adds `v` to every stored diagonal entry; `v[i]` must exist as a stored
    /// entry (true for all matrices assembled by [`TripletBuilder`] with
    /// explicit diagonals).
    pub fn add_to_diagonal(&mut self, v: &[f64]) {
        assert_eq!(v.len(), self.n);
        for (i, &vi) in v.iter().enumerate() {
            let mut found = false;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.col_idx[k] == i {
                    self.values[k] += vi;
                    found = true;
                    break;
                }
            }
            assert!(found, "row {i} has no stored diagonal entry");
        }
    }

    /// Checks symmetry up to `tol` (O(nnz·log) via lookups; test helper).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                if (self.values[k] - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

/// Accumulates `(row, col, value)` triplets and assembles a [`CsrMatrix`],
/// summing duplicate coordinates.
#[derive(Debug, Clone)]
pub struct TripletBuilder {
    n: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl TripletBuilder {
    /// A builder for an `n × n` matrix.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "matrix too large for u32 indices");
        Self {
            n,
            entries: Vec::new(),
        }
    }

    /// Adds `v` at `(i, j)`.
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.n && j < self.n, "index out of range");
        self.entries.push((i as u32, j as u32, v));
    }

    /// Adds the symmetric conductance pattern for an edge `i — j` with
    /// conductance `g`: `+g` on both diagonals, `−g` off-diagonal.
    pub fn add_conductance(&mut self, i: usize, j: usize, g: f64) {
        debug_assert!(g >= 0.0, "conductance must be non-negative");
        self.add(i, i, g);
        self.add(j, j, g);
        self.add(i, j, -g);
        self.add(j, i, -g);
    }

    /// Adds `g` to the diagonal only (a conductance to an external fixed
    /// potential such as the ambient).
    pub fn add_grounded_conductance(&mut self, i: usize, g: f64) {
        debug_assert!(g >= 0.0);
        self.add(i, i, g);
    }

    /// Assembles the CSR matrix, summing duplicates. Every row is given an
    /// explicit diagonal entry (inserting 0.0 if never touched).
    pub fn build(mut self) -> CsrMatrix {
        for i in 0..self.n {
            self.entries.push((i as u32, i as u32, 0.0));
        }
        self.entries
            .sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);

        let mut row_ptr = Vec::with_capacity(self.n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        let mut cur_row = 0u32;
        let mut iter = self.entries.into_iter().peekable();
        while let Some((r, c, v)) = iter.next() {
            while cur_row < r {
                row_ptr.push(col_idx.len());
                cur_row += 1;
            }
            let mut acc = v;
            while let Some(&(r2, c2, v2)) = iter.peek() {
                if r2 == r && c2 == c {
                    acc += v2;
                    iter.next();
                } else {
                    break;
                }
            }
            col_idx.push(c as usize);
            values.push(acc);
        }
        while (row_ptr.len() as u32) <= cur_row {
            row_ptr.push(col_idx.len());
        }
        while row_ptr.len() < self.n + 1 {
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            n: self.n,
            row_ptr,
            col_idx,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_multiply() {
        let mut b = TripletBuilder::new(3);
        b.add(0, 0, 2.0);
        b.add(0, 1, -1.0);
        b.add(1, 0, -1.0);
        b.add(1, 1, 2.0);
        b.add(1, 2, -1.0);
        b.add(2, 1, -1.0);
        b.add(2, 2, 2.0);
        let a = b.build();
        assert_eq!(a.n(), 3);
        let y = a.mul_vec_alloc(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = TripletBuilder::new(2);
        b.add(0, 0, 1.0);
        b.add(0, 0, 2.5);
        let a = b.build();
        assert_eq!(a.get(0, 0), 3.5);
        assert_eq!(a.get(1, 1), 0.0); // explicit zero diagonal inserted
    }

    #[test]
    fn conductance_pattern_is_symmetric_laplacian() {
        let mut b = TripletBuilder::new(3);
        b.add_conductance(0, 1, 2.0);
        b.add_conductance(1, 2, 3.0);
        let a = b.build();
        assert!(a.is_symmetric(1e-12));
        // Row sums are zero for a pure Laplacian.
        let ones = vec![1.0; 3];
        let y = a.mul_vec_alloc(&ones);
        for v in y {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn grounded_conductance_breaks_row_sum() {
        let mut b = TripletBuilder::new(2);
        b.add_conductance(0, 1, 1.0);
        b.add_grounded_conductance(0, 5.0);
        let a = b.build();
        let y = a.mul_vec_alloc(&[1.0, 1.0]);
        assert!((y[0] - 5.0).abs() < 1e-12);
        assert!(y[1].abs() < 1e-12);
    }

    #[test]
    fn diagonal_extraction() {
        let mut b = TripletBuilder::new(2);
        b.add_conductance(0, 1, 4.0);
        let a = b.build();
        assert_eq!(a.diagonal(), vec![4.0, 4.0]);
    }

    #[test]
    fn add_to_diagonal_mutates() {
        let mut b = TripletBuilder::new(2);
        b.add_conductance(0, 1, 1.0);
        let mut a = b.build();
        a.add_to_diagonal(&[10.0, 20.0]);
        assert_eq!(a.get(0, 0), 11.0);
        assert_eq!(a.get(1, 1), 21.0);
    }

    #[test]
    fn empty_rows_get_zero_diagonal() {
        let b = TripletBuilder::new(4);
        let a = b.build();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.diagonal(), vec![0.0; 4]);
    }

    #[test]
    fn row_access_matches_get() {
        let mut b = TripletBuilder::new(3);
        b.add_conductance(0, 2, 2.0);
        b.add_conductance(1, 2, 1.0);
        let a = b.build();
        for i in 0..3 {
            let (cols, vals) = a.row(i);
            assert_eq!(cols.len(), vals.len());
            for (&j, &v) in cols.iter().zip(vals) {
                assert_eq!(a.get(i, j), v);
            }
        }
    }

    /// A pseudo-random sparse SPD-patterned matrix for kernel equivalence.
    fn random_matrix(n: usize, seed: u64) -> CsrMatrix {
        let mut b = TripletBuilder::new(n);
        let mut s = seed | 1;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for i in 0..n - 1 {
            b.add_conductance(i, i + 1, (rnd() % 100) as f64 / 10.0);
            let j = (rnd() as usize) % n;
            if j != i {
                b.add_conductance(i, j, (rnd() % 50) as f64 / 25.0);
            }
        }
        b.add_grounded_conductance(0, 3.0);
        b.build()
    }

    #[test]
    fn sharded_mul_vec_matches_serial() {
        for n in [1usize, 2, 3, 17, 256, 1023] {
            let a = random_matrix(n.max(2), 0xC0FFEE + n as u64);
            let x: Vec<f64> = (0..a.n()).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
            let mut serial = vec![0.0; a.n()];
            a.mul_vec_threads(&x, &mut serial, 1);
            for threads in [2, 3, 4, 7] {
                let mut par = vec![0.0; a.n()];
                a.mul_vec_threads(&x, &mut par, threads);
                assert_eq!(serial, par, "n={n}, threads={threads}");
            }
        }
    }

    #[test]
    fn mul_vec_dot_returns_quadratic_form() {
        let a = random_matrix(64, 99);
        let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut y = vec![0.0; 64];
        let q = a.mul_vec_dot(&x, &mut y);
        let expect: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((q - expect).abs() < 1e-12);
        assert_eq!(y, a.mul_vec_alloc(&x));
    }

    #[test]
    fn mul_vec_multi_is_bitwise_equal_per_lane() {
        for n in [2usize, 17, 256] {
            let a = random_matrix(n, 0xBADD + n as u64);
            for k in [1usize, 3, 4, 8] {
                // Lane l holds a distinct deterministic vector.
                let lanes: Vec<Vec<f64>> = (0..k)
                    .map(|l| {
                        (0..n)
                            .map(|i| ((i * 7 + l * 13) % 29) as f64 - 14.0)
                            .collect()
                    })
                    .collect();
                let mut x = vec![0.0; n * k];
                for (l, lane) in lanes.iter().enumerate() {
                    for i in 0..n {
                        x[i * k + l] = lane[i];
                    }
                }
                let mut y = vec![f64::NAN; n * k];
                let mut pap = vec![f64::NAN; k];
                a.mul_vec_dot_multi(k, &x, &mut y, &mut pap);
                for (l, lane) in lanes.iter().enumerate() {
                    let mut solo = vec![0.0; n];
                    let solo_pap = a.mul_vec_dot(lane, &mut solo);
                    for i in 0..n {
                        assert_eq!(
                            y[i * k + l].to_bits(),
                            solo[i].to_bits(),
                            "n={n} k={k} lane={l} node={i}"
                        );
                    }
                    assert_eq!(pap[l].to_bits(), solo_pap.to_bits(), "n={n} k={k} lane={l}");
                }
            }
        }
    }

    #[test]
    fn threads_for_respects_crossover() {
        assert_eq!(super::threads_for(0), 1);
        assert_eq!(super::threads_for(PARALLEL_NNZ_CROSSOVER - 1), 1);
        assert!(super::threads_for(PARALLEL_NNZ_CROSSOVER) >= 1);
    }
}
