//! Minimal sparse linear algebra: CSR matrices built from triplets.
//!
//! The thermal RC network produces symmetric positive-definite systems with
//! ~7 nonzeros per row; CSR + conjugate gradients (see [`crate::solver`]) is
//! all that is needed.

/// A compressed-sparse-row matrix.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows (== columns; all matrices here are square).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The diagonal entries (0 where a row has no stored diagonal).
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.n];
        for (i, di) in d.iter_mut().enumerate() {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.col_idx[k] == i {
                    *di = self.values[k];
                }
            }
        }
        d
    }

    /// `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths do not match the matrix dimension.
    pub fn mul_vec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yi = acc;
        }
    }

    /// Returns `A x` as a fresh vector.
    pub fn mul_vec_alloc(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.n];
        self.mul_vec(x, &mut y);
        y
    }

    /// Entry `(i, j)` (zero if not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        for k in self.row_ptr[i]..self.row_ptr[i + 1] {
            if self.col_idx[k] == j {
                return self.values[k];
            }
        }
        0.0
    }

    /// Adds `v` to every stored diagonal entry; `v[i]` must exist as a stored
    /// entry (true for all matrices assembled by [`TripletBuilder`] with
    /// explicit diagonals).
    pub fn add_to_diagonal(&mut self, v: &[f64]) {
        assert_eq!(v.len(), self.n);
        for (i, &vi) in v.iter().enumerate() {
            let mut found = false;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                if self.col_idx[k] == i {
                    self.values[k] += vi;
                    found = true;
                    break;
                }
            }
            assert!(found, "row {i} has no stored diagonal entry");
        }
    }

    /// Checks symmetry up to `tol` (O(nnz·log) via lookups; test helper).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        for i in 0..self.n {
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                let j = self.col_idx[k];
                if (self.values[k] - self.get(j, i)).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

/// Accumulates `(row, col, value)` triplets and assembles a [`CsrMatrix`],
/// summing duplicate coordinates.
#[derive(Debug, Clone)]
pub struct TripletBuilder {
    n: usize,
    entries: Vec<(u32, u32, f64)>,
}

impl TripletBuilder {
    /// A builder for an `n × n` matrix.
    pub fn new(n: usize) -> Self {
        assert!(n < u32::MAX as usize, "matrix too large for u32 indices");
        Self {
            n,
            entries: Vec::new(),
        }
    }

    /// Adds `v` at `(i, j)`.
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.n && j < self.n, "index out of range");
        self.entries.push((i as u32, j as u32, v));
    }

    /// Adds the symmetric conductance pattern for an edge `i — j` with
    /// conductance `g`: `+g` on both diagonals, `−g` off-diagonal.
    pub fn add_conductance(&mut self, i: usize, j: usize, g: f64) {
        debug_assert!(g >= 0.0, "conductance must be non-negative");
        self.add(i, i, g);
        self.add(j, j, g);
        self.add(i, j, -g);
        self.add(j, i, -g);
    }

    /// Adds `g` to the diagonal only (a conductance to an external fixed
    /// potential such as the ambient).
    pub fn add_grounded_conductance(&mut self, i: usize, g: f64) {
        debug_assert!(g >= 0.0);
        self.add(i, i, g);
    }

    /// Assembles the CSR matrix, summing duplicates. Every row is given an
    /// explicit diagonal entry (inserting 0.0 if never touched).
    pub fn build(mut self) -> CsrMatrix {
        for i in 0..self.n {
            self.entries.push((i as u32, i as u32, 0.0));
        }
        self.entries
            .sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);

        let mut row_ptr = Vec::with_capacity(self.n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        let mut cur_row = 0u32;
        let mut iter = self.entries.into_iter().peekable();
        while let Some((r, c, v)) = iter.next() {
            while cur_row < r {
                row_ptr.push(col_idx.len());
                cur_row += 1;
            }
            let mut acc = v;
            while let Some(&(r2, c2, v2)) = iter.peek() {
                if r2 == r && c2 == c {
                    acc += v2;
                    iter.next();
                } else {
                    break;
                }
            }
            col_idx.push(c as usize);
            values.push(acc);
        }
        while (row_ptr.len() as u32) <= cur_row {
            row_ptr.push(col_idx.len());
        }
        while row_ptr.len() < self.n + 1 {
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            n: self.n,
            row_ptr,
            col_idx,
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_multiply() {
        let mut b = TripletBuilder::new(3);
        b.add(0, 0, 2.0);
        b.add(0, 1, -1.0);
        b.add(1, 0, -1.0);
        b.add(1, 1, 2.0);
        b.add(1, 2, -1.0);
        b.add(2, 1, -1.0);
        b.add(2, 2, 2.0);
        let a = b.build();
        assert_eq!(a.n(), 3);
        let y = a.mul_vec_alloc(&[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut b = TripletBuilder::new(2);
        b.add(0, 0, 1.0);
        b.add(0, 0, 2.5);
        let a = b.build();
        assert_eq!(a.get(0, 0), 3.5);
        assert_eq!(a.get(1, 1), 0.0); // explicit zero diagonal inserted
    }

    #[test]
    fn conductance_pattern_is_symmetric_laplacian() {
        let mut b = TripletBuilder::new(3);
        b.add_conductance(0, 1, 2.0);
        b.add_conductance(1, 2, 3.0);
        let a = b.build();
        assert!(a.is_symmetric(1e-12));
        // Row sums are zero for a pure Laplacian.
        let ones = vec![1.0; 3];
        let y = a.mul_vec_alloc(&ones);
        for v in y {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn grounded_conductance_breaks_row_sum() {
        let mut b = TripletBuilder::new(2);
        b.add_conductance(0, 1, 1.0);
        b.add_grounded_conductance(0, 5.0);
        let a = b.build();
        let y = a.mul_vec_alloc(&[1.0, 1.0]);
        assert!((y[0] - 5.0).abs() < 1e-12);
        assert!(y[1].abs() < 1e-12);
    }

    #[test]
    fn diagonal_extraction() {
        let mut b = TripletBuilder::new(2);
        b.add_conductance(0, 1, 4.0);
        let a = b.build();
        assert_eq!(a.diagonal(), vec![4.0, 4.0]);
    }

    #[test]
    fn add_to_diagonal_mutates() {
        let mut b = TripletBuilder::new(2);
        b.add_conductance(0, 1, 1.0);
        let mut a = b.build();
        a.add_to_diagonal(&[10.0, 20.0]);
        assert_eq!(a.get(0, 0), 11.0);
        assert_eq!(a.get(1, 1), 21.0);
    }

    #[test]
    fn empty_rows_get_zero_diagonal() {
        let b = TripletBuilder::new(4);
        let a = b.build();
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.diagonal(), vec![0.0; 4]);
    }
}
