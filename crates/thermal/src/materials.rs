//! Material thermal properties.
//!
//! Values for the case-study stack come from Table II of the paper, converted
//! from the paper's per-micrometer units to SI:
//!
//! | Layer                  | k [W/µm·K] → [W/m·K] | c_v [J/µm³·K] → [J/m³·K] |
//! |------------------------|----------------------|---------------------------|
//! | Thermal grease         | 0.04e-4  → 4.0       | 3.376e-12 → 3.376e6       |
//! | Copper (heat spreader) | 3.9e-4   → 390       | 3.376e-12 → 3.376e6       |
//! | Solder TIM             | 0.25e-4  → 25        | 1.628e-12 → 1.628e6       |
//! | Silicon (IC wafer)     | 1.20e-4  → 120       | 1.651e-12 → 1.651e6       |

use serde::{Deserialize, Serialize};

/// Homogeneous, isotropic material thermal properties (SI units).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Material {
    /// Thermal conductivity, W/(m·K).
    pub conductivity: f64,
    /// Volumetric heat capacity, J/(m³·K).
    pub heat_capacity: f64,
}

impl Material {
    /// Creates a material.
    ///
    /// # Panics
    ///
    /// Panics if either property is non-positive or non-finite.
    pub fn new(conductivity: f64, heat_capacity: f64) -> Self {
        assert!(
            conductivity.is_finite() && conductivity > 0.0,
            "conductivity must be positive"
        );
        assert!(
            heat_capacity.is_finite() && heat_capacity > 0.0,
            "heat capacity must be positive"
        );
        Self {
            conductivity,
            heat_capacity,
        }
    }

    /// Thermal diffusivity `k / c_v`, m²/s.
    pub fn diffusivity(&self) -> f64 {
        self.conductivity / self.heat_capacity
    }

    /// Silicon (IC wafer), Table II.
    pub const SILICON: Material = Material {
        conductivity: 120.0,
        heat_capacity: 1.651e6,
    };

    /// Copper heat spreader, Table II.
    pub const COPPER: Material = Material {
        conductivity: 390.0,
        heat_capacity: 3.376e6,
    };

    /// Solder thermal interface material (TIM1), Table II.
    pub const SOLDER_TIM: Material = Material {
        conductivity: 25.0,
        heat_capacity: 1.628e6,
    };

    /// Thermal grease (TIM2), Table II.
    pub const THERMAL_GREASE: Material = Material {
        conductivity: 4.0,
        heat_capacity: 3.376e6,
    };

    /// Aluminum (heatsink base; HS483-ND is an aluminum extrusion).
    pub const ALUMINUM: Material = Material {
        conductivity: 237.0,
        heat_capacity: 2.42e6,
    };

    /// Package mold / underfill filler used for border cells outside the die
    /// footprint in die-level layers.
    pub const MOLD_FILLER: Material = Material {
        conductivity: 0.9,
        heat_capacity: 1.7e6,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_in_si() {
        // Cross-check the unit conversion against Table II of the paper.
        assert!((Material::THERMAL_GREASE.conductivity - 0.04e-4 * 1e6).abs() < 1e-9);
        assert!((Material::COPPER.conductivity - 3.9e-4 * 1e6).abs() < 1e-9);
        assert!((Material::SOLDER_TIM.conductivity - 0.25e-4 * 1e6).abs() < 1e-9);
        assert!((Material::SILICON.conductivity - 1.20e-4 * 1e6).abs() < 1e-9);
        assert!((Material::SILICON.heat_capacity - 1.651e-12 * 1e18).abs() < 1.0);
        assert!((Material::SOLDER_TIM.heat_capacity - 1.628e-12 * 1e18).abs() < 1.0);
    }

    #[test]
    fn diffusivity_is_ratio() {
        let m = Material::SILICON;
        assert!((m.diffusivity() - 120.0 / 1.651e6).abs() < 1e-12);
    }

    #[test]
    fn silicon_diffuses_faster_than_grease() {
        assert!(Material::SILICON.diffusivity() > Material::THERMAL_GREASE.diffusivity());
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_conductivity() {
        let _ = Material::new(0.0, 1.0);
    }
}
