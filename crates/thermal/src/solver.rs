//! Jacobi-preconditioned conjugate-gradient solver for the SPD systems
//! produced by the RC-network discretization.
//!
//! The transient hot path calls this once per time step with the *same*
//! matrix, so everything reusable lives in a [`CgWorkspace`] that callers
//! cache across solves: the inverted diagonal of the preconditioner and the
//! four iteration vectors. A solve through [`solve_cg_with`] performs no
//! allocations.
//!
//! Each iteration runs exactly three passes over memory: a fused
//! SpMV + `p·Ap` dot ([`crate::sparse::CsrMatrix::mul_vec_dot`]), one fused
//! update of `x`, `r`, `z` that also reduces `r·z`, and the `p` update.
//! Convergence is checked on the preconditioned residual norm `√(r·z)` that
//! the fused pass already produces, so no separate `‖r‖` pass is needed
//! inside the loop; the true relative residual is computed once on exit.
//! The O(n) passes shard across scoped threads above a crossover length,
//! mirroring the SpMV sharding in [`crate::sparse`].

use crate::sparse::{hardware_threads, CsrMatrix};

/// Vector length below which the fused O(n) passes stay single-threaded
/// (same reasoning as [`crate::sparse::PARALLEL_NNZ_CROSSOVER`]: a scoped
/// spawn costs about as much as a serial pass over this many elements).
const PARALLEL_LEN_CROSSOVER: usize = 1 << 20;

/// Outcome of a CG solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − Ax‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Configuration for the CG solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgConfig {
    /// Relative residual tolerance (applied to the preconditioned residual
    /// norm `√(r·D⁻¹r) / √(b·D⁻¹b)` that the iteration tracks for free).
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for CgConfig {
    fn default() -> Self {
        Self {
            tolerance: 1e-9,
            max_iterations: 20_000,
        }
    }
}

/// Reusable state for [`solve_cg_with`]: the Jacobi preconditioner and the
/// iteration vectors, sized for one matrix. Building it costs one pass over
/// the diagonal; reusing it across the thousands of solves of a transient
/// run eliminates every per-solve allocation.
#[derive(Debug, Clone)]
pub struct CgWorkspace {
    inv_diag: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

impl CgWorkspace {
    /// Builds a workspace for `a`, hoisting the inverted-diagonal
    /// preconditioner out of the solve loop.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has a non-positive diagonal entry (not SPD).
    pub fn new(a: &CsrMatrix) -> Self {
        let n = a.n();
        let inv_diag: Vec<f64> = a
            .diagonal()
            .into_iter()
            .map(|d| {
                assert!(d > 0.0, "matrix diagonal must be positive for CG");
                1.0 / d
            })
            .collect();
        Self {
            inv_diag,
            r: vec![0.0; n],
            z: vec![0.0; n],
            p: vec![0.0; n],
            ap: vec![0.0; n],
        }
    }

    /// Dimension this workspace was built for.
    pub fn n(&self) -> usize {
        self.inv_diag.len()
    }
}

/// Solves `A x = b` by preconditioned conjugate gradients with a freshly
/// built workspace. Convenience wrapper over [`solve_cg_with`] for one-off
/// solves; hot paths should cache the [`CgWorkspace`].
///
/// # Panics
///
/// Panics if dimensions disagree or the matrix has a non-positive diagonal
/// entry (not SPD).
pub fn solve_cg(a: &CsrMatrix, b: &[f64], x: &mut [f64], cfg: &CgConfig) -> SolveStats {
    let mut ws = CgWorkspace::new(a);
    solve_cg_with(a, b, x, cfg, &mut ws)
}

/// Solves `A x = b` for SPD `A`, starting from the initial guess already in
/// `x` (a warm start — the previous time step's solution — typically cuts
/// iterations several-fold) and reusing `ws` across calls.
///
/// # Panics
///
/// Panics if dimensions disagree or `ws` was built for a different size.
pub fn solve_cg_with(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    cfg: &CgConfig,
    ws: &mut CgWorkspace,
) -> SolveStats {
    let n = a.n();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    assert_eq!(ws.n(), n, "workspace built for a different matrix size");
    let _span = hotgauge_telemetry::span!("thermal.cg_solve");
    let threads = threads_for_len(n);

    // ‖b‖² in both the reporting (2-)norm and the preconditioned norm.
    let (nb2, nb2_prec) = b
        .iter()
        .zip(&ws.inv_diag)
        .fold((0.0f64, 0.0f64), |(s2, sp), (&bi, &di)| {
            (s2 + bi * bi, sp + bi * bi * di)
        });
    if nb2 == 0.0 {
        x.fill(0.0);
        return SolveStats {
            iterations: 0,
            relative_residual: 0.0,
            converged: true,
        };
    }

    // r = b − A x, z = D⁻¹ r, p = z, rz = r·z — one SpMV plus one fused pass.
    a.mul_vec(x, &mut ws.r);
    let mut rz = 0.0f64;
    for (((&bi, &di), (r, z)), p) in b
        .iter()
        .zip(&ws.inv_diag)
        .zip(ws.r.iter_mut().zip(&mut ws.z))
        .zip(&mut ws.p)
    {
        let ri = bi - *r;
        let zi = ri * di;
        *r = ri;
        *z = zi;
        *p = zi;
        rz += ri * zi;
    }

    let finish = |r: &[f64], iterations: usize, converged: bool| SolveStats {
        iterations,
        relative_residual: norm2(r) / nb2.sqrt(),
        converged,
    };

    if rz <= cfg.tolerance * cfg.tolerance * nb2_prec {
        return finish(&ws.r, 0, true);
    }

    for it in 1..=cfg.max_iterations {
        let pap = a.mul_vec_dot(&ws.p, &mut ws.ap);
        if pap <= 0.0 {
            // Should not happen for SPD systems; bail out conservatively.
            return finish(&ws.r, it, false);
        }
        let alpha = rz / pap;
        let rz_new = fused_axpy_precond(
            x,
            &mut ws.r,
            &mut ws.z,
            &ws.p,
            &ws.ap,
            &ws.inv_diag,
            alpha,
            threads,
        );
        if rz_new <= cfg.tolerance * cfg.tolerance * nb2_prec {
            return finish(&ws.r, it, true);
        }
        let beta = rz_new / rz;
        rz = rz_new;
        fused_p_update(&mut ws.p, &ws.z, beta, threads);
    }

    finish(&ws.r, cfg.max_iterations, false)
}

/// Reusable state for [`solve_cg_multi`]: the shared Jacobi preconditioner
/// plus the four iteration blocks and per-lane scalars for `k` lockstep
/// right-hand sides. All `[n × k]` blocks are node-major, lane-minor
/// (`r[node * k + lane]`), so the per-node lane loops run over contiguous
/// memory and auto-vectorize.
#[derive(Debug, Clone)]
pub struct MultiCgWorkspace {
    k: usize,
    inv_diag: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    pap: Vec<f64>,
    alpha: Vec<f64>,
    rz: Vec<f64>,
    nb2: Vec<f64>,
    nb2_prec: Vec<f64>,
    active: Vec<bool>,
    stats: Vec<SolveStats>,
}

impl MultiCgWorkspace {
    /// Builds a workspace for `k` lockstep solves against `a`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the matrix has a non-positive diagonal entry.
    pub fn new(a: &CsrMatrix, k: usize) -> Self {
        assert!((1..=MAX_LOCKSTEP_WIDTH).contains(&k));
        let n = a.n();
        let inv_diag: Vec<f64> = a
            .diagonal()
            .into_iter()
            .map(|d| {
                assert!(d > 0.0, "matrix diagonal must be positive for CG");
                1.0 / d
            })
            .collect();
        Self {
            k,
            inv_diag,
            r: vec![0.0; n * k],
            z: vec![0.0; n * k],
            p: vec![0.0; n * k],
            ap: vec![0.0; n * k],
            pap: vec![0.0; k],
            alpha: vec![0.0; k],
            rz: vec![0.0; k],
            nb2: vec![0.0; k],
            nb2_prec: vec![0.0; k],
            active: vec![false; k],
            stats: vec![
                SolveStats {
                    iterations: 0,
                    relative_residual: 0.0,
                    converged: false,
                };
                k
            ],
        }
    }

    /// Dimension this workspace was built for.
    pub fn n(&self) -> usize {
        self.inv_diag.len()
    }

    /// Lane count this workspace was built for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Per-lane outcomes of the last [`solve_cg_multi`] call.
    pub fn stats(&self) -> &[SolveStats] {
        &self.stats
    }
}

/// Solves `k` systems `A xₗ = bₗ` in lockstep over `[n × k]` node-major,
/// lane-minor blocks, streaming each matrix row's index list once for all
/// lanes per iteration. Each lane starts from the warm-start guess already
/// in its column of `x` and iterates until *its own* preconditioned residual
/// meets `cfg.tolerance`; converged lanes are masked out (their columns are
/// never touched again) while the rest keep iterating.
///
/// **Bit-exactness:** every lane performs exactly the floating-point
/// operation sequence of a solo [`solve_cg_with`] call on the serial
/// (sub-[`PARALLEL_LEN_CROSSOVER`]) path — same accumulation orders in the
/// norm folds, SpMV, fused update, and `p` update, same per-lane
/// `α`/`β`/convergence decisions — so each column of `x` and each
/// [`SolveStats`] is bitwise identical to its solo counterpart for all
/// `n < PARALLEL_LEN_CROSSOVER` (every grid this workspace targets).
/// Per-lane outcomes land in [`MultiCgWorkspace::stats`].
///
/// # Panics
///
/// Panics if block lengths disagree with the workspace shape.
pub fn solve_cg_multi(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    cfg: &CgConfig,
    ws: &mut MultiCgWorkspace,
) {
    let n = a.n();
    let k = ws.k;
    assert_eq!(b.len(), n * k);
    assert_eq!(x.len(), n * k);
    assert_eq!(ws.n(), n, "workspace built for a different matrix size");
    let _span = hotgauge_telemetry::span!("thermal.cg_solve");
    let tol2 = cfg.tolerance * cfg.tolerance;

    // ‖b‖² per lane in the reporting and preconditioned norms, accumulated
    // ascending-node exactly like the solo fold.
    ws.nb2.fill(0.0);
    ws.nb2_prec.fill(0.0);
    for (brow, &di) in b.chunks_exact(k).zip(&ws.inv_diag) {
        for ((s2, sp), &bi) in ws.nb2.iter_mut().zip(&mut ws.nb2_prec).zip(brow) {
            *s2 += bi * bi;
            *sp += bi * bi * di;
        }
    }
    for l in 0..k {
        ws.active[l] = ws.nb2[l] != 0.0;
        if !ws.active[l] {
            for xrow in x.chunks_exact_mut(k) {
                xrow[l] = 0.0;
            }
            ws.stats[l] = SolveStats {
                iterations: 0,
                relative_residual: 0.0,
                converged: true,
            };
        }
    }

    // r = b − A x, z = D⁻¹ r, p = z, rz = r·z per lane. Zero-rhs lanes have
    // x zeroed above, so touching their (never again read) r/z/p is inert.
    a.mul_vec_multi(k, x, &mut ws.r);
    ws.rz.fill(0.0);
    for (((brow, &di), (rrow, zrow)), prow) in b
        .chunks_exact(k)
        .zip(&ws.inv_diag)
        .zip(ws.r.chunks_exact_mut(k).zip(ws.z.chunks_exact_mut(k)))
        .zip(ws.p.chunks_exact_mut(k))
    {
        for l in 0..k {
            let ri = brow[l] - rrow[l];
            let zi = ri * di;
            rrow[l] = ri;
            zrow[l] = zi;
            prow[l] = zi;
            ws.rz[l] += ri * zi;
        }
    }

    let finish = |r: &[f64], nb2: f64, l: usize, iterations: usize, converged: bool| {
        let rr: f64 = r.chunks_exact(k).map(|row| row[l] * row[l]).sum();
        SolveStats {
            iterations,
            relative_residual: rr.sqrt() / nb2.sqrt(),
            converged,
        }
    };

    for l in 0..k {
        if ws.active[l] && ws.rz[l] <= tol2 * ws.nb2_prec[l] {
            ws.stats[l] = finish(&ws.r, ws.nb2[l], l, 0, true);
            ws.active[l] = false;
        }
    }

    for it in 1..=cfg.max_iterations {
        if !ws.active.iter().any(|&a| a) {
            return;
        }
        // One traversal of the row structure serves every lane.
        a.mul_vec_dot_multi(k, &ws.p, &mut ws.ap, &mut ws.pap);
        for l in 0..k {
            if ws.active[l] {
                if ws.pap[l] <= 0.0 {
                    // Should not happen for SPD systems; bail this lane out.
                    ws.stats[l] = finish(&ws.r, ws.nb2[l], l, it, false);
                    ws.active[l] = false;
                } else {
                    ws.alpha[l] = ws.rz[l] / ws.pap[l];
                }
            }
        }
        // Fused update: x += α p, r −= α ap, z = D⁻¹ r, reducing r·z, with
        // masked lanes frozen. The unguarded loop runs while all lanes are
        // live (the common case), keeping the lane loop branch-free.
        let all = ws.active.iter().all(|&a| a);
        let mut rz_new = [0.0f64; MAX_LOCKSTEP_WIDTH];
        let rz_new = &mut rz_new[..k];
        for (i, ((xrow, (rrow, zrow)), &di)) in x
            .chunks_exact_mut(k)
            .zip(ws.r.chunks_exact_mut(k).zip(ws.z.chunks_exact_mut(k)))
            .zip(&ws.inv_diag)
            .enumerate()
        {
            let prow = &ws.p[i * k..i * k + k];
            let aprow = &ws.ap[i * k..i * k + k];
            if all {
                for l in 0..k {
                    xrow[l] += ws.alpha[l] * prow[l];
                    let ri = rrow[l] - ws.alpha[l] * aprow[l];
                    let zi = ri * di;
                    rrow[l] = ri;
                    zrow[l] = zi;
                    rz_new[l] += ri * zi;
                }
            } else {
                for l in 0..k {
                    if ws.active[l] {
                        xrow[l] += ws.alpha[l] * prow[l];
                        let ri = rrow[l] - ws.alpha[l] * aprow[l];
                        let zi = ri * di;
                        rrow[l] = ri;
                        zrow[l] = zi;
                        rz_new[l] += ri * zi;
                    }
                }
            }
        }
        for (l, &rz) in rz_new.iter().enumerate() {
            if ws.active[l] {
                if rz <= tol2 * ws.nb2_prec[l] {
                    ws.stats[l] = finish(&ws.r, ws.nb2[l], l, it, true);
                    ws.active[l] = false;
                } else {
                    // Reuse alpha as this iteration's per-lane β.
                    ws.alpha[l] = rz / ws.rz[l];
                    ws.rz[l] = rz;
                }
            }
        }
        let all = ws.active.iter().all(|&a| a);
        for (prow, zrow) in ws.p.chunks_exact_mut(k).zip(ws.z.chunks_exact(k)) {
            if all {
                for l in 0..k {
                    prow[l] = zrow[l] + ws.alpha[l] * prow[l];
                }
            } else {
                for l in 0..k {
                    if ws.active[l] {
                        prow[l] = zrow[l] + ws.alpha[l] * prow[l];
                    }
                }
            }
        }
    }
    for l in 0..k {
        if ws.active[l] {
            ws.stats[l] = finish(&ws.r, ws.nb2[l], l, cfg.max_iterations, false);
            ws.active[l] = false;
        }
    }
}

/// Widest lockstep batch the stack-allocated per-iteration lane accumulators
/// support. The sweep executor batches at 4 or 8; 16 leaves headroom.
pub const MAX_LOCKSTEP_WIDTH: usize = 16;

fn threads_for_len(n: usize) -> usize {
    if n < PARALLEL_LEN_CROSSOVER {
        1
    } else {
        hardware_threads().min(n / PARALLEL_LEN_CROSSOVER + 1)
    }
}

/// The fused CG update: `x += α p`, `r −= α ap`, `z = D⁻¹ r`; returns the
/// new `r·z`. One pass over six streams instead of four separate loops.
#[allow(clippy::too_many_arguments)]
fn fused_axpy_precond(
    x: &mut [f64],
    r: &mut [f64],
    z: &mut [f64],
    p: &[f64],
    ap: &[f64],
    inv_diag: &[f64],
    alpha: f64,
    threads: usize,
) -> f64 {
    if threads <= 1 {
        return fused_axpy_precond_serial(x, r, z, p, ap, inv_diag, alpha);
    }
    let chunk = x.len().div_ceil(threads);
    let mut partials = vec![0.0f64; x.chunks(chunk).len()];
    std::thread::scope(|scope| {
        let iter = x
            .chunks_mut(chunk)
            .zip(r.chunks_mut(chunk))
            .zip(z.chunks_mut(chunk))
            .zip(p.chunks(chunk))
            .zip(ap.chunks(chunk))
            .zip(inv_diag.chunks(chunk))
            .zip(partials.iter_mut());
        for ((((((xc, rc), zc), pc), apc), dc), out) in iter {
            scope.spawn(move || *out = fused_axpy_precond_serial(xc, rc, zc, pc, apc, dc, alpha));
        }
    });
    partials.iter().sum()
}

fn fused_axpy_precond_serial(
    x: &mut [f64],
    r: &mut [f64],
    z: &mut [f64],
    p: &[f64],
    ap: &[f64],
    inv_diag: &[f64],
    alpha: f64,
) -> f64 {
    let mut rz = 0.0;
    for i in 0..x.len() {
        x[i] += alpha * p[i];
        let ri = r[i] - alpha * ap[i];
        let zi = ri * inv_diag[i];
        r[i] = ri;
        z[i] = zi;
        rz += ri * zi;
    }
    rz
}

/// `p = z + β p`, sharded like the other kernels.
fn fused_p_update(p: &mut [f64], z: &[f64], beta: f64, threads: usize) {
    if threads <= 1 {
        for (pi, &zi) in p.iter_mut().zip(z) {
            *pi = zi + beta * *pi;
        }
        return;
    }
    let chunk = p.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (pc, zc) in p.chunks_mut(chunk).zip(z.chunks(chunk)) {
            scope.spawn(move || {
                for (pi, &zi) in pc.iter_mut().zip(zc) {
                    *pi = zi + beta * *pi;
                }
            });
        }
    });
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    /// 1-D Poisson matrix with Dirichlet-like grounding at both ends.
    fn poisson(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n);
        for i in 0..n - 1 {
            b.add_conductance(i, i + 1, 1.0);
        }
        b.add_grounded_conductance(0, 1.0);
        b.add_grounded_conductance(n - 1, 1.0);
        b.build()
    }

    #[test]
    fn solves_small_system_exactly() {
        let a = poisson(4);
        let x_true = vec![1.0, -2.0, 3.0, 0.5];
        let b = a.mul_vec_alloc(&x_true);
        let mut x = vec![0.0; 4];
        let stats = solve_cg(&a, &b, &mut x, &CgConfig::default());
        assert!(stats.converged);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-7, "{xi} vs {ti}");
        }
    }

    #[test]
    fn solves_larger_system() {
        let n = 2000;
        let a = poisson(n);
        let x_true: Vec<f64> = (0..n)
            .map(|i| ((i * 37 % 100) as f64) / 10.0 - 5.0)
            .collect();
        let b = a.mul_vec_alloc(&x_true);
        let mut x = vec![0.0; n];
        let stats = solve_cg(
            &a,
            &b,
            &mut x,
            &CgConfig {
                tolerance: 1e-10,
                max_iterations: 50_000,
            },
        );
        assert!(stats.converged, "res = {}", stats.relative_residual);
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 5e-3, "error {err}");
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let n = 1000;
        let a = poisson(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let b = a.mul_vec_alloc(&x_true);

        let mut cold = vec![0.0; n];
        let cold_stats = solve_cg(&a, &b, &mut cold, &CgConfig::default());

        // Warm start from a slightly perturbed truth.
        let mut warm: Vec<f64> = x_true.iter().map(|v| v + 1e-6).collect();
        let warm_stats = solve_cg(&a, &b, &mut warm, &CgConfig::default());
        assert!(warm_stats.iterations < cold_stats.iterations);
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let a = poisson(10);
        let mut x = vec![3.0; 10];
        let stats = solve_cg(&a, &[0.0; 10], &mut x, &CgConfig::default());
        assert!(stats.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn reports_nonconvergence_when_capped() {
        let n = 500;
        let a = poisson(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let stats = solve_cg(
            &a,
            &b,
            &mut x,
            &CgConfig {
                tolerance: 1e-14,
                max_iterations: 2,
            },
        );
        assert!(!stats.converged);
        assert_eq!(stats.iterations, 2);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_diagonal() {
        let b = TripletBuilder::new(2);
        let a = b.build(); // all-zero diagonal
        let mut x = vec![0.0; 2];
        let _ = solve_cg(&a, &[1.0, 1.0], &mut x, &CgConfig::default());
    }

    #[test]
    fn workspace_reuse_matches_fresh_solves() {
        let a = poisson(300);
        let mut ws = CgWorkspace::new(&a);
        for seed in 0..3u64 {
            let b: Vec<f64> = (0..300)
                .map(|i| (((i as u64 + 1) * (seed + 3)) % 17) as f64 - 8.0)
                .collect();
            let mut x_fresh = vec![0.0; 300];
            let fresh = solve_cg(&a, &b, &mut x_fresh, &CgConfig::default());
            let mut x_reused = vec![0.0; 300];
            let reused = solve_cg_with(&a, &b, &mut x_reused, &CgConfig::default(), &mut ws);
            assert_eq!(fresh.iterations, reused.iterations);
            assert_eq!(x_fresh, x_reused);
        }
    }

    #[test]
    fn final_residual_is_a_true_two_norm_residual() {
        let a = poisson(120);
        let b: Vec<f64> = (0..120).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut x = vec![0.0; 120];
        let stats = solve_cg(
            &a,
            &b,
            &mut x,
            &CgConfig {
                tolerance: 1e-10,
                max_iterations: 10_000,
            },
        );
        assert!(stats.converged);
        let mut r = a.mul_vec_alloc(&x);
        for (ri, bi) in r.iter_mut().zip(&b) {
            *ri = bi - *ri;
        }
        let true_res = norm2(&r) / norm2(&b);
        assert!(
            (stats.relative_residual - true_res).abs() < 1e-12 + true_res,
            "reported {} vs recomputed {}",
            stats.relative_residual,
            true_res
        );
    }

    /// Pack per-lane vectors into a node-major lane-minor SoA block.
    fn pack(lanes: &[Vec<f64>]) -> Vec<f64> {
        let k = lanes.len();
        let n = lanes[0].len();
        let mut out = vec![0.0; n * k];
        for (l, lane) in lanes.iter().enumerate() {
            for (i, &v) in lane.iter().enumerate() {
                out[i * k + l] = v;
            }
        }
        out
    }

    #[test]
    fn lockstep_cg_is_bitwise_equal_to_solo_solves() {
        let n = 400;
        let a = poisson(n);
        let cfg = CgConfig {
            tolerance: 1e-8,
            max_iterations: 20_000,
        };
        for k in [1usize, 2, 4, 8] {
            // Distinct rhs and warm starts per lane so lanes converge at
            // different iterations and the masking path is exercised.
            let bs: Vec<Vec<f64>> = (0..k)
                .map(|l| {
                    (0..n)
                        .map(|i| (((i * 13 + l * 7) % 23) as f64) - 11.0 * (l as f64 + 1.0) / 4.0)
                        .collect()
                })
                .collect();
            let x0s: Vec<Vec<f64>> = (0..k)
                .map(|l| (0..n).map(|i| ((i + l) as f64 * 0.01).sin()).collect())
                .collect();
            let b = pack(&bs);
            let mut x = pack(&x0s);
            let mut ws = MultiCgWorkspace::new(&a, k);
            solve_cg_multi(&a, &b, &mut x, &cfg, &mut ws);
            for l in 0..k {
                let mut solo_x = x0s[l].clone();
                let solo = solve_cg(&a, &bs[l], &mut solo_x, &cfg);
                let stats = ws.stats()[l];
                assert_eq!(stats.iterations, solo.iterations, "k={k} lane={l}");
                assert_eq!(stats.converged, solo.converged);
                assert_eq!(
                    stats.relative_residual.to_bits(),
                    solo.relative_residual.to_bits()
                );
                for i in 0..n {
                    assert_eq!(
                        x[i * k + l].to_bits(),
                        solo_x[i].to_bits(),
                        "k={k} lane={l} node={i}"
                    );
                }
            }
        }
    }

    #[test]
    fn lockstep_cg_masks_zero_rhs_and_capped_lanes() {
        let n = 200;
        let a = poisson(n);
        // Lane 0: zero rhs (instant exact solution). Lane 1: real system.
        let bs = vec![
            vec![0.0; n],
            (0..n).map(|i| ((i % 5) as f64) - 2.0).collect(),
        ];
        let b = pack(&bs);
        let mut x = pack(&[vec![3.0; n], vec![0.0; n]]);
        let cfg = CgConfig {
            tolerance: 1e-10,
            max_iterations: 20_000,
        };
        let mut ws = MultiCgWorkspace::new(&a, 2);
        solve_cg_multi(&a, &b, &mut x, &cfg, &mut ws);
        assert!(ws.stats()[0].converged);
        assert_eq!(ws.stats()[0].iterations, 0);
        assert!((0..n).all(|i| x[i * 2] == 0.0));
        assert!(ws.stats()[1].converged);

        // An iteration cap hits every lane with the solo count.
        let capped = CgConfig {
            tolerance: 1e-14,
            max_iterations: 2,
        };
        let mut x2 = pack(&[bs[1].clone(), bs[1].clone()]);
        let b2 = pack(&[bs[1].clone(), bs[1].clone()]);
        let mut ws2 = MultiCgWorkspace::new(&a, 2);
        solve_cg_multi(&a, &b2, &mut x2, &capped, &mut ws2);
        for s in ws2.stats() {
            assert!(!s.converged);
            assert_eq!(s.iterations, 2);
        }
    }

    #[test]
    fn fused_kernels_match_separate_passes_across_thread_counts() {
        let n = 1537;
        let mut x1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut r1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
        let mut z1 = vec![0.0; n];
        let p: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
        let ap: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) - 5.0).collect();
        let d: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + (i % 5) as f64)).collect();
        let alpha = 0.37;
        let rz1 = fused_axpy_precond_serial(&mut x1, &mut r1, &mut z1, &p, &ap, &d, alpha);
        for threads in [2, 3, 5] {
            let mut x2: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
            let mut r2: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
            let mut z2 = vec![0.0; n];
            let rz2 = fused_axpy_precond(&mut x2, &mut r2, &mut z2, &p, &ap, &d, alpha, threads);
            assert_eq!(x1, x2, "threads={threads}");
            assert_eq!(r1, r2);
            assert_eq!(z1, z2);
            assert!((rz1 - rz2).abs() < 1e-9 * rz1.abs().max(1.0));

            let mut p1 = p.clone();
            fused_p_update(&mut p1, &z1, 0.25, 1);
            let mut p2 = p.clone();
            fused_p_update(&mut p2, &z2, 0.25, threads);
            assert_eq!(p1, p2);
        }
    }
}
