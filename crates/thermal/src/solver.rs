//! Jacobi-preconditioned conjugate-gradient solver for the SPD systems
//! produced by the RC-network discretization.
//!
//! The transient hot path calls this once per time step with the *same*
//! matrix, so everything reusable lives in a [`CgWorkspace`] that callers
//! cache across solves: the inverted diagonal of the preconditioner and the
//! four iteration vectors. A solve through [`solve_cg_with`] performs no
//! allocations.
//!
//! Each iteration runs exactly three passes over memory: a fused
//! SpMV + `p·Ap` dot ([`crate::sparse::CsrMatrix::mul_vec_dot`]), one fused
//! update of `x`, `r`, `z` that also reduces `r·z`, and the `p` update.
//! Convergence is checked on the preconditioned residual norm `√(r·z)` that
//! the fused pass already produces, so no separate `‖r‖` pass is needed
//! inside the loop; the true relative residual is computed once on exit.
//! The O(n) passes shard across scoped threads above a crossover length,
//! mirroring the SpMV sharding in [`crate::sparse`].

use crate::sparse::{hardware_threads, CsrMatrix};

/// Vector length below which the fused O(n) passes stay single-threaded
/// (same reasoning as [`crate::sparse::PARALLEL_NNZ_CROSSOVER`]: a scoped
/// spawn costs about as much as a serial pass over this many elements).
const PARALLEL_LEN_CROSSOVER: usize = 1 << 20;

/// Outcome of a CG solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − Ax‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Configuration for the CG solver.
#[derive(Debug, Clone, Copy)]
pub struct CgConfig {
    /// Relative residual tolerance (applied to the preconditioned residual
    /// norm `√(r·D⁻¹r) / √(b·D⁻¹b)` that the iteration tracks for free).
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for CgConfig {
    fn default() -> Self {
        Self {
            tolerance: 1e-9,
            max_iterations: 20_000,
        }
    }
}

/// Reusable state for [`solve_cg_with`]: the Jacobi preconditioner and the
/// iteration vectors, sized for one matrix. Building it costs one pass over
/// the diagonal; reusing it across the thousands of solves of a transient
/// run eliminates every per-solve allocation.
#[derive(Debug, Clone)]
pub struct CgWorkspace {
    inv_diag: Vec<f64>,
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
}

impl CgWorkspace {
    /// Builds a workspace for `a`, hoisting the inverted-diagonal
    /// preconditioner out of the solve loop.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has a non-positive diagonal entry (not SPD).
    pub fn new(a: &CsrMatrix) -> Self {
        let n = a.n();
        let inv_diag: Vec<f64> = a
            .diagonal()
            .into_iter()
            .map(|d| {
                assert!(d > 0.0, "matrix diagonal must be positive for CG");
                1.0 / d
            })
            .collect();
        Self {
            inv_diag,
            r: vec![0.0; n],
            z: vec![0.0; n],
            p: vec![0.0; n],
            ap: vec![0.0; n],
        }
    }

    /// Dimension this workspace was built for.
    pub fn n(&self) -> usize {
        self.inv_diag.len()
    }
}

/// Solves `A x = b` by preconditioned conjugate gradients with a freshly
/// built workspace. Convenience wrapper over [`solve_cg_with`] for one-off
/// solves; hot paths should cache the [`CgWorkspace`].
///
/// # Panics
///
/// Panics if dimensions disagree or the matrix has a non-positive diagonal
/// entry (not SPD).
pub fn solve_cg(a: &CsrMatrix, b: &[f64], x: &mut [f64], cfg: &CgConfig) -> SolveStats {
    let mut ws = CgWorkspace::new(a);
    solve_cg_with(a, b, x, cfg, &mut ws)
}

/// Solves `A x = b` for SPD `A`, starting from the initial guess already in
/// `x` (a warm start — the previous time step's solution — typically cuts
/// iterations several-fold) and reusing `ws` across calls.
///
/// # Panics
///
/// Panics if dimensions disagree or `ws` was built for a different size.
pub fn solve_cg_with(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    cfg: &CgConfig,
    ws: &mut CgWorkspace,
) -> SolveStats {
    let n = a.n();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);
    assert_eq!(ws.n(), n, "workspace built for a different matrix size");
    let _span = hotgauge_telemetry::span!("thermal.cg_solve");
    let threads = threads_for_len(n);

    // ‖b‖² in both the reporting (2-)norm and the preconditioned norm.
    let (nb2, nb2_prec) = b
        .iter()
        .zip(&ws.inv_diag)
        .fold((0.0f64, 0.0f64), |(s2, sp), (&bi, &di)| {
            (s2 + bi * bi, sp + bi * bi * di)
        });
    if nb2 == 0.0 {
        x.fill(0.0);
        return SolveStats {
            iterations: 0,
            relative_residual: 0.0,
            converged: true,
        };
    }

    // r = b − A x, z = D⁻¹ r, p = z, rz = r·z — one SpMV plus one fused pass.
    a.mul_vec(x, &mut ws.r);
    let mut rz = 0.0f64;
    for (((&bi, &di), (r, z)), p) in b
        .iter()
        .zip(&ws.inv_diag)
        .zip(ws.r.iter_mut().zip(&mut ws.z))
        .zip(&mut ws.p)
    {
        let ri = bi - *r;
        let zi = ri * di;
        *r = ri;
        *z = zi;
        *p = zi;
        rz += ri * zi;
    }

    let finish = |r: &[f64], iterations: usize, converged: bool| SolveStats {
        iterations,
        relative_residual: norm2(r) / nb2.sqrt(),
        converged,
    };

    if rz <= cfg.tolerance * cfg.tolerance * nb2_prec {
        return finish(&ws.r, 0, true);
    }

    for it in 1..=cfg.max_iterations {
        let pap = a.mul_vec_dot(&ws.p, &mut ws.ap);
        if pap <= 0.0 {
            // Should not happen for SPD systems; bail out conservatively.
            return finish(&ws.r, it, false);
        }
        let alpha = rz / pap;
        let rz_new = fused_axpy_precond(
            x,
            &mut ws.r,
            &mut ws.z,
            &ws.p,
            &ws.ap,
            &ws.inv_diag,
            alpha,
            threads,
        );
        if rz_new <= cfg.tolerance * cfg.tolerance * nb2_prec {
            return finish(&ws.r, it, true);
        }
        let beta = rz_new / rz;
        rz = rz_new;
        fused_p_update(&mut ws.p, &ws.z, beta, threads);
    }

    finish(&ws.r, cfg.max_iterations, false)
}

fn threads_for_len(n: usize) -> usize {
    if n < PARALLEL_LEN_CROSSOVER {
        1
    } else {
        hardware_threads().min(n / PARALLEL_LEN_CROSSOVER + 1)
    }
}

/// The fused CG update: `x += α p`, `r −= α ap`, `z = D⁻¹ r`; returns the
/// new `r·z`. One pass over six streams instead of four separate loops.
#[allow(clippy::too_many_arguments)]
fn fused_axpy_precond(
    x: &mut [f64],
    r: &mut [f64],
    z: &mut [f64],
    p: &[f64],
    ap: &[f64],
    inv_diag: &[f64],
    alpha: f64,
    threads: usize,
) -> f64 {
    if threads <= 1 {
        return fused_axpy_precond_serial(x, r, z, p, ap, inv_diag, alpha);
    }
    let chunk = x.len().div_ceil(threads);
    let mut partials = vec![0.0f64; x.chunks(chunk).len()];
    std::thread::scope(|scope| {
        let iter = x
            .chunks_mut(chunk)
            .zip(r.chunks_mut(chunk))
            .zip(z.chunks_mut(chunk))
            .zip(p.chunks(chunk))
            .zip(ap.chunks(chunk))
            .zip(inv_diag.chunks(chunk))
            .zip(partials.iter_mut());
        for ((((((xc, rc), zc), pc), apc), dc), out) in iter {
            scope.spawn(move || *out = fused_axpy_precond_serial(xc, rc, zc, pc, apc, dc, alpha));
        }
    });
    partials.iter().sum()
}

fn fused_axpy_precond_serial(
    x: &mut [f64],
    r: &mut [f64],
    z: &mut [f64],
    p: &[f64],
    ap: &[f64],
    inv_diag: &[f64],
    alpha: f64,
) -> f64 {
    let mut rz = 0.0;
    for i in 0..x.len() {
        x[i] += alpha * p[i];
        let ri = r[i] - alpha * ap[i];
        let zi = ri * inv_diag[i];
        r[i] = ri;
        z[i] = zi;
        rz += ri * zi;
    }
    rz
}

/// `p = z + β p`, sharded like the other kernels.
fn fused_p_update(p: &mut [f64], z: &[f64], beta: f64, threads: usize) {
    if threads <= 1 {
        for (pi, &zi) in p.iter_mut().zip(z) {
            *pi = zi + beta * *pi;
        }
        return;
    }
    let chunk = p.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (pc, zc) in p.chunks_mut(chunk).zip(z.chunks(chunk)) {
            scope.spawn(move || {
                for (pi, &zi) in pc.iter_mut().zip(zc) {
                    *pi = zi + beta * *pi;
                }
            });
        }
    });
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    /// 1-D Poisson matrix with Dirichlet-like grounding at both ends.
    fn poisson(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n);
        for i in 0..n - 1 {
            b.add_conductance(i, i + 1, 1.0);
        }
        b.add_grounded_conductance(0, 1.0);
        b.add_grounded_conductance(n - 1, 1.0);
        b.build()
    }

    #[test]
    fn solves_small_system_exactly() {
        let a = poisson(4);
        let x_true = vec![1.0, -2.0, 3.0, 0.5];
        let b = a.mul_vec_alloc(&x_true);
        let mut x = vec![0.0; 4];
        let stats = solve_cg(&a, &b, &mut x, &CgConfig::default());
        assert!(stats.converged);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-7, "{xi} vs {ti}");
        }
    }

    #[test]
    fn solves_larger_system() {
        let n = 2000;
        let a = poisson(n);
        let x_true: Vec<f64> = (0..n)
            .map(|i| ((i * 37 % 100) as f64) / 10.0 - 5.0)
            .collect();
        let b = a.mul_vec_alloc(&x_true);
        let mut x = vec![0.0; n];
        let stats = solve_cg(
            &a,
            &b,
            &mut x,
            &CgConfig {
                tolerance: 1e-10,
                max_iterations: 50_000,
            },
        );
        assert!(stats.converged, "res = {}", stats.relative_residual);
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 5e-3, "error {err}");
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let n = 1000;
        let a = poisson(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let b = a.mul_vec_alloc(&x_true);

        let mut cold = vec![0.0; n];
        let cold_stats = solve_cg(&a, &b, &mut cold, &CgConfig::default());

        // Warm start from a slightly perturbed truth.
        let mut warm: Vec<f64> = x_true.iter().map(|v| v + 1e-6).collect();
        let warm_stats = solve_cg(&a, &b, &mut warm, &CgConfig::default());
        assert!(warm_stats.iterations < cold_stats.iterations);
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let a = poisson(10);
        let mut x = vec![3.0; 10];
        let stats = solve_cg(&a, &[0.0; 10], &mut x, &CgConfig::default());
        assert!(stats.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn reports_nonconvergence_when_capped() {
        let n = 500;
        let a = poisson(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let stats = solve_cg(
            &a,
            &b,
            &mut x,
            &CgConfig {
                tolerance: 1e-14,
                max_iterations: 2,
            },
        );
        assert!(!stats.converged);
        assert_eq!(stats.iterations, 2);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_diagonal() {
        let b = TripletBuilder::new(2);
        let a = b.build(); // all-zero diagonal
        let mut x = vec![0.0; 2];
        let _ = solve_cg(&a, &[1.0, 1.0], &mut x, &CgConfig::default());
    }

    #[test]
    fn workspace_reuse_matches_fresh_solves() {
        let a = poisson(300);
        let mut ws = CgWorkspace::new(&a);
        for seed in 0..3u64 {
            let b: Vec<f64> = (0..300)
                .map(|i| (((i as u64 + 1) * (seed + 3)) % 17) as f64 - 8.0)
                .collect();
            let mut x_fresh = vec![0.0; 300];
            let fresh = solve_cg(&a, &b, &mut x_fresh, &CgConfig::default());
            let mut x_reused = vec![0.0; 300];
            let reused = solve_cg_with(&a, &b, &mut x_reused, &CgConfig::default(), &mut ws);
            assert_eq!(fresh.iterations, reused.iterations);
            assert_eq!(x_fresh, x_reused);
        }
    }

    #[test]
    fn final_residual_is_a_true_two_norm_residual() {
        let a = poisson(120);
        let b: Vec<f64> = (0..120).map(|i| ((i % 7) as f64) - 3.0).collect();
        let mut x = vec![0.0; 120];
        let stats = solve_cg(
            &a,
            &b,
            &mut x,
            &CgConfig {
                tolerance: 1e-10,
                max_iterations: 10_000,
            },
        );
        assert!(stats.converged);
        let mut r = a.mul_vec_alloc(&x);
        for (ri, bi) in r.iter_mut().zip(&b) {
            *ri = bi - *ri;
        }
        let true_res = norm2(&r) / norm2(&b);
        assert!(
            (stats.relative_residual - true_res).abs() < 1e-12 + true_res,
            "reported {} vs recomputed {}",
            stats.relative_residual,
            true_res
        );
    }

    #[test]
    fn fused_kernels_match_separate_passes_across_thread_counts() {
        let n = 1537;
        let mut x1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
        let mut r1: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
        let mut z1 = vec![0.0; n];
        let p: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
        let ap: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) - 5.0).collect();
        let d: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + (i % 5) as f64)).collect();
        let alpha = 0.37;
        let rz1 = fused_axpy_precond_serial(&mut x1, &mut r1, &mut z1, &p, &ap, &d, alpha);
        for threads in [2, 3, 5] {
            let mut x2: Vec<f64> = (0..n).map(|i| (i as f64 * 0.1).sin()).collect();
            let mut r2: Vec<f64> = (0..n).map(|i| (i as f64 * 0.2).cos()).collect();
            let mut z2 = vec![0.0; n];
            let rz2 = fused_axpy_precond(&mut x2, &mut r2, &mut z2, &p, &ap, &d, alpha, threads);
            assert_eq!(x1, x2, "threads={threads}");
            assert_eq!(r1, r2);
            assert_eq!(z1, z2);
            assert!((rz1 - rz2).abs() < 1e-9 * rz1.abs().max(1.0));

            let mut p1 = p.clone();
            fused_p_update(&mut p1, &z1, 0.25, 1);
            let mut p2 = p.clone();
            fused_p_update(&mut p2, &z2, 0.25, threads);
            assert_eq!(p1, p2);
        }
    }
}
