//! Jacobi-preconditioned conjugate-gradient solver for the SPD systems
//! produced by the RC-network discretization.

use crate::sparse::CsrMatrix;

/// Outcome of a CG solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveStats {
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − Ax‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Whether the tolerance was reached.
    pub converged: bool,
}

/// Configuration for the CG solver.
#[derive(Debug, Clone, Copy)]
pub struct CgConfig {
    /// Relative residual tolerance.
    pub tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
}

impl Default for CgConfig {
    fn default() -> Self {
        Self {
            tolerance: 1e-9,
            max_iterations: 20_000,
        }
    }
}

/// Solves `A x = b` for SPD `A` by preconditioned conjugate gradients,
/// starting from the initial guess already in `x` (a warm start — the
/// previous time step's solution — typically cuts iterations several-fold).
///
/// # Panics
///
/// Panics if dimensions disagree or the matrix has a non-positive diagonal
/// entry (not SPD).
pub fn solve_cg(a: &CsrMatrix, b: &[f64], x: &mut [f64], cfg: &CgConfig) -> SolveStats {
    let n = a.n();
    assert_eq!(b.len(), n);
    assert_eq!(x.len(), n);

    let diag = a.diagonal();
    let inv_diag: Vec<f64> = diag
        .iter()
        .map(|&d| {
            assert!(d > 0.0, "matrix diagonal must be positive for CG");
            1.0 / d
        })
        .collect();

    let norm_b = norm2(b);
    if norm_b == 0.0 {
        x.fill(0.0);
        return SolveStats {
            iterations: 0,
            relative_residual: 0.0,
            converged: true,
        };
    }

    // r = b - A x
    let mut r = vec![0.0; n];
    a.mul_vec(x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    let mut z: Vec<f64> = r.iter().zip(&inv_diag).map(|(ri, di)| ri * di).collect();
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    let mut res = norm2(&r) / norm_b;
    if res <= cfg.tolerance {
        return SolveStats {
            iterations: 0,
            relative_residual: res,
            converged: true,
        };
    }

    for it in 1..=cfg.max_iterations {
        a.mul_vec(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            // Should not happen for SPD systems; bail out conservatively.
            return SolveStats {
                iterations: it,
                relative_residual: res,
                converged: false,
            };
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        res = norm2(&r) / norm_b;
        if res <= cfg.tolerance {
            return SolveStats {
                iterations: it,
                relative_residual: res,
                converged: true,
            };
        }
        for i in 0..n {
            z[i] = r[i] * inv_diag[i];
        }
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    SolveStats {
        iterations: cfg.max_iterations,
        relative_residual: res,
        converged: false,
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::TripletBuilder;

    /// 1-D Poisson matrix with Dirichlet-like grounding at both ends.
    fn poisson(n: usize) -> CsrMatrix {
        let mut b = TripletBuilder::new(n);
        for i in 0..n - 1 {
            b.add_conductance(i, i + 1, 1.0);
        }
        b.add_grounded_conductance(0, 1.0);
        b.add_grounded_conductance(n - 1, 1.0);
        b.build()
    }

    #[test]
    fn solves_small_system_exactly() {
        let a = poisson(4);
        let x_true = vec![1.0, -2.0, 3.0, 0.5];
        let b = a.mul_vec_alloc(&x_true);
        let mut x = vec![0.0; 4];
        let stats = solve_cg(&a, &b, &mut x, &CgConfig::default());
        assert!(stats.converged);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-7, "{xi} vs {ti}");
        }
    }

    #[test]
    fn solves_larger_system() {
        let n = 2000;
        let a = poisson(n);
        let x_true: Vec<f64> = (0..n)
            .map(|i| ((i * 37 % 100) as f64) / 10.0 - 5.0)
            .collect();
        let b = a.mul_vec_alloc(&x_true);
        let mut x = vec![0.0; n];
        let stats = solve_cg(
            &a,
            &b,
            &mut x,
            &CgConfig {
                tolerance: 1e-10,
                max_iterations: 50_000,
            },
        );
        assert!(stats.converged, "res = {}", stats.relative_residual);
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(err < 5e-3, "error {err}");
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let n = 1000;
        let a = poisson(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let b = a.mul_vec_alloc(&x_true);

        let mut cold = vec![0.0; n];
        let cold_stats = solve_cg(&a, &b, &mut cold, &CgConfig::default());

        // Warm start from a slightly perturbed truth.
        let mut warm: Vec<f64> = x_true.iter().map(|v| v + 1e-6).collect();
        let warm_stats = solve_cg(&a, &b, &mut warm, &CgConfig::default());
        assert!(warm_stats.iterations < cold_stats.iterations);
    }

    #[test]
    fn zero_rhs_gives_zero_solution() {
        let a = poisson(10);
        let mut x = vec![3.0; 10];
        let stats = solve_cg(&a, &[0.0; 10], &mut x, &CgConfig::default());
        assert!(stats.converged);
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn reports_nonconvergence_when_capped() {
        let n = 500;
        let a = poisson(n);
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        let stats = solve_cg(
            &a,
            &b,
            &mut x,
            &CgConfig {
                tolerance: 1e-14,
                max_iterations: 2,
            },
        );
        assert!(!stats.converged);
        assert_eq!(stats.iterations, 2);
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_diagonal() {
        let b = TripletBuilder::new(2);
        let a = b.build(); // all-zero diagonal
        let mut x = vec![0.0; 2];
        let _ = solve_cg(&a, &[1.0, 1.0], &mut x, &CgConfig::default());
    }
}
