//! Compact transient thermal model (CTTM) for the HotGauge reproduction —
//! the Rust stand-in for 3D-ICE 3.0.
//!
//! The crate implements the same modeling approach as 3D-ICE: a finite-volume
//! thermal RC network over a layered stack, supporting both **steady-state**
//! and **transient** simulation, plus the paper's additions — an active/bulk
//! silicon split for realistic vertical spreading and **non-uniform
//! temperature initialization** (idle warm-up).
//!
//! * [`materials`] — thermal properties (Table II values);
//! * [`stack`] — layer stack and domain description (Fig. 4);
//! * [`sparse`] / [`solver`] / [`chol`] — CSR matrices, preconditioned CG,
//!   and the factor-once skyline Cholesky for the constant backward-Euler
//!   system;
//! * [`model`] — RC-network assembly, [`model::ThermalModel`] (steady) and
//!   [`model::ThermalSim`] (transient, backward Euler, solver selected by
//!   [`model::SolverStrategy`]);
//! * [`frame`] — active-layer temperature snapshots consumed by the hotspot
//!   metrics;
//! * [`analysis`] — Ψ_j,a and TDP (Table IV);
//! * [`warmup`] — cold / idle-warm-up initial conditions (Fig. 8, 11);
//! * [`export`] — PPM heat maps and CSV dumps of frames.
//!
//! # Examples
//!
//! ```
//! use hotgauge_thermal::prelude::*;
//!
//! // A 3 mm × 3 mm die at 300 µm resolution with the paper's stack.
//! let stack = StackDescription::client_cpu(10, 10, 300.0);
//! let model = ThermalModel::new(stack);
//! let mut sim = ThermalSim::new(model, 40.0);
//!
//! // 2 W uniformly over the die for 1 ms.
//! let power = vec![0.02; 100];
//! for _ in 0..5 {
//!     sim.step(&power, 200e-6);
//! }
//! let frame = sim.die_frame();
//! assert!(frame.max() > 40.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod chol;
pub mod export;
pub mod frame;
pub mod materials;
pub mod model;
pub mod solver;
pub mod sparse;
pub mod stack;
pub mod warmup;

pub use crate::analysis::{psi_tdp, PsiTdp, PAPER_THERMAL_BUDGET_C};
pub use crate::chol::{CholOptions, CholeskyFactor, FactorError};
pub use crate::export::{frame_to_csv, frame_to_ppm, write_ppm, ColorMap};
pub use crate::frame::ThermalFrame;
pub use crate::materials::Material;
pub use crate::model::{step_lockstep, LockstepScratch, SolverStrategy, ThermalModel, ThermalSim};
pub use crate::solver::{
    solve_cg, solve_cg_multi, solve_cg_with, CgConfig, CgWorkspace, MultiCgWorkspace, SolveStats,
    MAX_LOCKSTEP_WIDTH,
};
pub use crate::stack::{Layer, StackDescription, DEFAULT_BORDER_M, HS483_FILM_COEFF};
pub use crate::warmup::{initial_state, Warmup};

/// Convenient glob import of the most used types.
pub mod prelude {
    pub use crate::analysis::{psi_tdp, PsiTdp, PAPER_THERMAL_BUDGET_C};
    pub use crate::chol::{CholOptions, CholeskyFactor};
    pub use crate::frame::ThermalFrame;
    pub use crate::materials::Material;
    pub use crate::model::{SolverStrategy, ThermalModel, ThermalSim};
    pub use crate::solver::{CgConfig, CgWorkspace, SolveStats};
    pub use crate::stack::{Layer, StackDescription};
    pub use crate::warmup::{initial_state, Warmup};
}
