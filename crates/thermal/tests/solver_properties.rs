//! Property tests for the two thermal solvers: the factor-once direct
//! Cholesky path and the preconditioned CG path must agree on random SPD
//! RC-network systems, and factoring once must be equivalent to
//! refactoring before every solve.
#![recursion_limit = "256"]

use proptest::prelude::*;

use hotgauge_thermal::chol::{CholOptions, CholeskyFactor};
use hotgauge_thermal::solver::{solve_cg, CgConfig};
use hotgauge_thermal::sparse::{CsrMatrix, TripletBuilder};

/// Builds a random backward-Euler style system `C/Δt + G` over an RC
/// network: a chain guarantees connectivity, extra random edges add
/// fill, every node gets a grounded conductance and a capacitance term,
/// so the assembled matrix is SPD and strictly diagonally dominant.
fn rc_system(n: usize, seed: u64) -> CsrMatrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // Conductances in [0.05, 10.05): strictly positive, well scaled.
    fn g_of(bits: u64) -> f64 {
        0.05 + (bits % 1000) as f64 / 100.0
    }

    let mut b = TripletBuilder::new(n);
    for i in 1..n {
        b.add_conductance(i - 1, i, g_of(next()));
    }
    // Random long-range edges (roughly one per node).
    for _ in 0..n {
        let i = (next() % n as u64) as usize;
        let j = (next() % n as u64) as usize;
        if i != j {
            b.add_conductance(i.min(j), i.max(j), g_of(next()));
        }
    }
    for i in 0..n {
        b.add_grounded_conductance(i, g_of(next())); // heat path to ambient
        b.add_grounded_conductance(i, 0.2 + g_of(next())); // C/Δt lump
    }
    b.build()
}

/// Builds a block-diagonal SPD RC system of `components` disconnected
/// grounded chains of `len` nodes each. Disconnected components are the
/// case where the triangular sweeps' dependency levels come out wide
/// (level `d` holds node `d` of every chain); a connected network's RCM
/// envelope degenerates to one row per level.
fn rc_chains(components: usize, len: usize, seed: u64) -> CsrMatrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    fn g_of(bits: u64) -> f64 {
        0.05 + (bits % 1000) as f64 / 100.0
    }

    let n = components * len;
    let mut b = TripletBuilder::new(n);
    for c in 0..components {
        let base = c * len;
        for i in 1..len {
            b.add_conductance(base + i - 1, base + i, g_of(next()));
        }
        for i in 0..len {
            b.add_grounded_conductance(base + i, g_of(next()));
            b.add_grounded_conductance(base + i, 0.2 + g_of(next()));
        }
    }
    b.build()
}

/// `level[i]` for every row, recovered from the schedule's row lists.
fn level_of(f: &CholeskyFactor) -> Vec<usize> {
    let s = f.schedule();
    let mut level = vec![usize::MAX; f.n()];
    for l in 0..s.levels() {
        for &r in s.level_rows(l) {
            level[r as usize] = l;
        }
    }
    level
}

fn rhs(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = (i as u64 + 1)
                .wrapping_mul(seed | 1)
                .wrapping_mul(0x2545F4914F6CDD1D);
            -1.0 + (x % 2048) as f64 / 1024.0
        })
        .collect()
}

fn rel_diff(a: &[f64], b: &[f64]) -> f64 {
    let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    let den: f64 = b.iter().map(|y| y * y).sum::<f64>().max(1e-300);
    (num / den).sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn direct_and_cg_agree_on_random_rc_networks(
        n in 4usize..60,
        seed in 0u64..10_000,
    ) {
        let a = rc_system(n, seed);
        let factor = CholeskyFactor::factor(&a, &CholOptions::unbounded())
            .expect("SPD RC system factors");
        let b = rhs(n, seed ^ 0xABCD);

        let direct = factor.solve_alloc(&b);

        let mut cg = vec![0.0; n];
        let stats = solve_cg(&a, &b, &mut cg, &CgConfig {
            tolerance: 1e-13,
            max_iterations: 10 * n + 100,
        });
        prop_assert!(stats.converged, "CG must converge on an SPD system");
        prop_assert!(
            rel_diff(&direct, &cg) < 1e-8,
            "solvers disagree: rel diff {} on n={n} seed={seed}",
            rel_diff(&direct, &cg)
        );
    }

    #[test]
    fn factor_once_matches_factor_per_solve(
        n in 4usize..50,
        seed in 0u64..10_000,
        steps in 2usize..6,
    ) {
        let a = rc_system(n, seed);
        let opts = CholOptions::unbounded();
        let once = CholeskyFactor::factor(&a, &opts).expect("factors");

        for k in 0..steps {
            let b = rhs(n, seed.wrapping_add(k as u64));
            let fresh = CholeskyFactor::factor(&a, &opts).expect("factors");
            // Same matrix, same deterministic algorithm: solutions are
            // bitwise identical, not merely close.
            prop_assert_eq!(once.solve_alloc(&b), fresh.solve_alloc(&b));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Level-schedule dependency invariant on random SPD RC networks:
    // every row's in-envelope predecessors sit in strictly earlier
    // levels, every row is scheduled exactly once, and rows within a
    // level are ascending (the order the sharder relies on).
    #[test]
    fn level_schedule_predecessors_are_strictly_earlier(
        n in 4usize..80,
        seed in 0u64..10_000,
        components in 1usize..6,
    ) {
        let a = if components == 1 {
            rc_system(n, seed)
        } else {
            rc_chains(components, n.div_ceil(components).max(2), seed)
        };
        let f = CholeskyFactor::factor(&a, &CholOptions::unbounded())
            .expect("SPD RC system factors");
        let s = f.schedule();
        prop_assert_eq!(s.scheduled_rows(), f.n());
        let level = level_of(&f);
        prop_assert!(level.iter().all(|&l| l != usize::MAX));
        let first = f.envelope_first();
        for l in 0..s.levels() {
            let rows = s.level_rows(l);
            prop_assert!(rows.windows(2).all(|w| w[0] < w[1]));
            for &r in rows {
                let i = r as usize;
                for (j, &lj) in level.iter().enumerate().take(i).skip(first[i] as usize) {
                    prop_assert!(
                        lj < l,
                        "row {i} (level {l}) depends on row {j} (level {lj})"
                    );
                }
            }
        }
    }

    // The level-parallel forward/backward sweeps are bitwise equal to the
    // serial sweeps at every thread budget. Disconnected chains make the
    // levels wide enough that the parallel plan actually engages.
    #[test]
    fn parallel_sweeps_bitwise_equal_to_serial(
        components in 65usize..96,
        len in 2usize..5,
        seed in 0u64..10_000,
    ) {
        let a = rc_chains(components, len, seed);
        let f = CholeskyFactor::factor(&a, &CholOptions::unbounded())
            .expect("factors");
        prop_assert!(f.schedule().parallel_worthwhile());
        let n = f.n();
        let b = rhs(n, seed ^ 0x5A5A);
        let serial = f.solve_alloc(&b);
        for threads in [1usize, 2, 4] {
            let mut x = vec![0.0; n];
            let mut work = vec![0.0; n];
            f.solve_with_threads(&b, &mut x, &mut work, threads);
            for (i, (&p, &s)) in x.iter().zip(&serial).enumerate() {
                prop_assert!(
                    p.to_bits() == s.to_bits(),
                    "threads={threads} node={i}: {p:e} != {s:e}"
                );
            }
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The multi-RHS lockstep sweeps stay bitwise equal to per-lane solo
    // solves at every thread budget and lane width.
    #[test]
    fn parallel_multi_rhs_bitwise_equal_to_serial(
        components in 65usize..80,
        seed in 0u64..10_000,
    ) {
        let a = rc_chains(components, 3, seed);
        let f = CholeskyFactor::factor(&a, &CholOptions::unbounded())
            .expect("factors");
        let n = f.n();
        for k in [1usize, 2, 8] {
            // Node-major, lane-minor right-hand sides.
            let mut b = vec![0.0; n * k];
            for lane in 0..k {
                let lane_b = rhs(n, seed.wrapping_add(lane as u64));
                for node in 0..n {
                    b[node * k + lane] = lane_b[node];
                }
            }
            let mut x = vec![0.0; n * k];
            let mut work = vec![0.0; n * k];
            f.solve_multi(k, &b, &mut x, &mut work);
            for threads in [1usize, 2, 4] {
                let mut xt = vec![0.0; n * k];
                let mut wt = vec![0.0; n * k];
                f.solve_multi_with_threads(k, &b, &mut xt, &mut wt, threads);
                prop_assert!(
                    x.iter().zip(&xt).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "k={k} threads={threads} diverged from serial lockstep"
                );
            }
            // Each lane also matches a solo solve of that lane bitwise.
            for lane in 0..k {
                let lane_b: Vec<f64> = (0..n).map(|node| b[node * k + lane]).collect();
                let solo = f.solve_alloc(&lane_b);
                prop_assert!(
                    (0..n).all(|node| x[node * k + lane].to_bits() == solo[node].to_bits()),
                    "k={k} lane={lane} diverged from solo solve"
                );
            }
        }
    }
}
