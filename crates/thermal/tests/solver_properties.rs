//! Property tests for the two thermal solvers: the factor-once direct
//! Cholesky path and the preconditioned CG path must agree on random SPD
//! RC-network systems, and factoring once must be equivalent to
//! refactoring before every solve.

use proptest::prelude::*;

use hotgauge_thermal::chol::{CholOptions, CholeskyFactor};
use hotgauge_thermal::solver::{solve_cg, CgConfig};
use hotgauge_thermal::sparse::{CsrMatrix, TripletBuilder};

/// Builds a random backward-Euler style system `C/Δt + G` over an RC
/// network: a chain guarantees connectivity, extra random edges add
/// fill, every node gets a grounded conductance and a capacitance term,
/// so the assembled matrix is SPD and strictly diagonally dominant.
fn rc_system(n: usize, seed: u64) -> CsrMatrix {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // Conductances in [0.05, 10.05): strictly positive, well scaled.
    fn g_of(bits: u64) -> f64 {
        0.05 + (bits % 1000) as f64 / 100.0
    }

    let mut b = TripletBuilder::new(n);
    for i in 1..n {
        b.add_conductance(i - 1, i, g_of(next()));
    }
    // Random long-range edges (roughly one per node).
    for _ in 0..n {
        let i = (next() % n as u64) as usize;
        let j = (next() % n as u64) as usize;
        if i != j {
            b.add_conductance(i.min(j), i.max(j), g_of(next()));
        }
    }
    for i in 0..n {
        b.add_grounded_conductance(i, g_of(next())); // heat path to ambient
        b.add_grounded_conductance(i, 0.2 + g_of(next())); // C/Δt lump
    }
    b.build()
}

fn rhs(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = (i as u64 + 1)
                .wrapping_mul(seed | 1)
                .wrapping_mul(0x2545F4914F6CDD1D);
            -1.0 + (x % 2048) as f64 / 1024.0
        })
        .collect()
}

fn rel_diff(a: &[f64], b: &[f64]) -> f64 {
    let num: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
    let den: f64 = b.iter().map(|y| y * y).sum::<f64>().max(1e-300);
    (num / den).sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn direct_and_cg_agree_on_random_rc_networks(
        n in 4usize..60,
        seed in 0u64..10_000,
    ) {
        let a = rc_system(n, seed);
        let factor = CholeskyFactor::factor(&a, &CholOptions::unbounded())
            .expect("SPD RC system factors");
        let b = rhs(n, seed ^ 0xABCD);

        let direct = factor.solve_alloc(&b);

        let mut cg = vec![0.0; n];
        let stats = solve_cg(&a, &b, &mut cg, &CgConfig {
            tolerance: 1e-13,
            max_iterations: 10 * n + 100,
        });
        prop_assert!(stats.converged, "CG must converge on an SPD system");
        prop_assert!(
            rel_diff(&direct, &cg) < 1e-8,
            "solvers disagree: rel diff {} on n={n} seed={seed}",
            rel_diff(&direct, &cg)
        );
    }

    #[test]
    fn factor_once_matches_factor_per_solve(
        n in 4usize..50,
        seed in 0u64..10_000,
        steps in 2usize..6,
    ) {
        let a = rc_system(n, seed);
        let opts = CholOptions::unbounded();
        let once = CholeskyFactor::factor(&a, &opts).expect("factors");

        for k in 0..steps {
            let b = rhs(n, seed.wrapping_add(k as u64));
            let fresh = CholeskyFactor::factor(&a, &opts).expect("factors");
            // Same matrix, same deterministic algorithm: solutions are
            // bitwise identical, not merely close.
            prop_assert_eq!(once.solve_alloc(&b), fresh.solve_alloc(&b));
        }
    }
}
