//! Idle / OS-background workload used for the paper's idle warm-up
//! (Fig. 8b, Fig. 11b): low-intensity housekeeping activity that leaves the
//! die warm and non-uniform before the measured workload starts.

use crate::profile::{BranchBehavior, InstMix, MemoryBehavior, Phase, WorkloadProfile};

/// Profile of a light OS background task: short bursts of branchy integer
/// code over a small working set, heavily serialized (low IPC ⇒ low power).
pub fn idle_profile() -> WorkloadProfile {
    let p = WorkloadProfile {
        name: "idle".to_owned(),
        mix: InstMix {
            loads: 0.28,
            stores: 0.14,
            branches: 0.22,
            int_simple: 0.30,
            int_complex: 0.02,
            fp: 0.03,
            avx: 0.01,
        },
        mem: MemoryBehavior {
            working_set_bytes: 256 * 1024,
            big_set_bytes: 16 * 1024 * 1024,
            big_fraction: 0.05,
            stream_fraction: 0.1,
        },
        branch: BranchBehavior {
            predictability: 0.92,
            static_branches: 1024,
        },
        serial_fraction: 0.45,
        code_footprint_bytes: 512 * 1024,
        phases: vec![Phase::neutral(1_000_000)],
    };
    // hotgauge-lint: allow(L001, "the idle profile is a compile-time constant validated by tests")
    p.validate().expect("idle profile is valid");
    p
}

/// Duty cycle of the idle task: the fraction of each window during which a
/// core executes the background task (it halts the rest of the time). Used
/// by the co-simulation to scale idle activity into power.
pub const IDLE_DUTY_CYCLE: f64 = 0.22;

/// Idle warm-up duration used in the case study, seconds. Long enough to
/// warm the die and part of the spreader but far shorter than the heatsink's
/// time constant — which is exactly the state that accelerates hotspot onset
/// in Fig. 8b.
pub const IDLE_WARMUP_DURATION_S: f64 = 1.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_profile_is_valid_and_low_intensity() {
        let p = idle_profile();
        assert!(p.validate().is_ok());
        assert!(p.serial_fraction > 0.3, "idle should be heavily serialized");
        assert!(p.mix.fp + p.mix.avx < 0.1);
    }

    #[test]
    fn duty_cycle_is_small() {
        const { assert!(IDLE_DUTY_CYCLE > 0.0 && IDLE_DUTY_CYCLE < 0.25) }
    }
}
