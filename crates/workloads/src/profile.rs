//! Statistical workload profiles.
//!
//! A [`WorkloadProfile`] captures the microarchitectural signature of a
//! benchmark — instruction mix, memory behavior, branch predictability,
//! dependency-chain density, and phase structure. The generator
//! (`crate::generator`) turns a profile into a deterministic micro-op stream
//! for the interval core model.
//!
//! This is the substitution for running real SPEC2006 binaries under a
//! Pin-based simulator: the hotspot methodology consumes only per-unit
//! activity densities over 1 M-cycle windows, which these profiles control
//! directly.

use serde::{Deserialize, Serialize};

/// Instruction-class mix. Fractions must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstMix {
    /// Memory loads.
    pub loads: f64,
    /// Memory stores.
    pub stores: f64,
    /// Branches.
    pub branches: f64,
    /// Simple integer ALU ops.
    pub int_simple: f64,
    /// Complex integer ops (mul/div).
    pub int_complex: f64,
    /// Scalar floating point.
    pub fp: f64,
    /// AVX-512 vector ops.
    pub avx: f64,
}

impl InstMix {
    /// Sum of all fractions (should be ≈ 1).
    pub fn total(&self) -> f64 {
        self.loads
            + self.stores
            + self.branches
            + self.int_simple
            + self.int_complex
            + self.fp
            + self.avx
    }

    /// Checks that the mix is a probability distribution.
    pub fn validate(&self) -> Result<(), String> {
        let t = self.total();
        if (t - 1.0).abs() > 1e-6 {
            return Err(format!("instruction mix sums to {t}, expected 1.0"));
        }
        for (name, v) in [
            ("loads", self.loads),
            ("stores", self.stores),
            ("branches", self.branches),
            ("int_simple", self.int_simple),
            ("int_complex", self.int_complex),
            ("fp", self.fp),
            ("avx", self.avx),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} fraction {v} out of range"));
            }
        }
        Ok(())
    }
}

/// Data-memory access behavior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBehavior {
    /// Primary (hot) working-set size, bytes.
    pub working_set_bytes: u64,
    /// Secondary (cold/large) set size, bytes.
    pub big_set_bytes: u64,
    /// Fraction of accesses that go to the big set.
    pub big_fraction: f64,
    /// Fraction of accesses that stream sequentially (rest are random).
    pub stream_fraction: f64,
}

/// Control-flow behavior.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BranchBehavior {
    /// Probability a branch follows its learned per-PC bias
    /// (1.0 = perfectly predictable, 0.5 = random).
    pub predictability: f64,
    /// Number of distinct static branch sites.
    pub static_branches: u32,
}

/// One execution phase: SPEC workloads alternate between phases of different
/// computational intensity (the paper attributes late hotspots to "a sudden
/// and dramatic spike in computational intensity at a certain phase").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Phase length in instructions.
    pub length_instrs: u64,
    /// Multiplier on dependency-chain density (higher = more serialization,
    /// lower IPC, lower power).
    pub serial_scale: f64,
    /// Multiplier on the big-set access fraction (memory intensity).
    pub mem_scale: f64,
    /// Multiplier on FP/AVX share (compute intensity shifts toward the FP
    /// stack during hot phases).
    pub fp_scale: f64,
}

impl Phase {
    /// A neutral phase of the given length.
    pub fn neutral(length_instrs: u64) -> Self {
        Self {
            length_instrs,
            serial_scale: 1.0,
            mem_scale: 1.0,
            fp_scale: 1.0,
        }
    }
}

/// A complete statistical benchmark profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Benchmark name (e.g. `"gcc"`).
    pub name: String,
    /// Baseline instruction mix.
    pub mix: InstMix,
    /// Memory behavior.
    pub mem: MemoryBehavior,
    /// Branch behavior.
    pub branch: BranchBehavior,
    /// Probability that a compute op carries a serializing dependency
    /// (extra latency 1–3 cycles), limiting ILP.
    pub serial_fraction: f64,
    /// Code footprint in bytes (drives L1I behavior).
    pub code_footprint_bytes: u64,
    /// Phase sequence, cycled endlessly.
    pub phases: Vec<Phase>,
}

impl WorkloadProfile {
    /// Checks profile invariants.
    pub fn validate(&self) -> Result<(), String> {
        self.mix.validate()?;
        if !(0.0..=1.0).contains(&self.serial_fraction) {
            return Err("serial_fraction out of range".into());
        }
        if !(0.5..=1.0).contains(&self.branch.predictability) {
            return Err("branch predictability must be in [0.5, 1.0]".into());
        }
        if !(0.0..=1.0).contains(&self.mem.big_fraction)
            || !(0.0..=1.0).contains(&self.mem.stream_fraction)
        {
            return Err("memory fractions out of range".into());
        }
        if self.phases.is_empty() {
            return Err("profile needs at least one phase".into());
        }
        if self.code_footprint_bytes < 64 {
            return Err("code footprint too small".into());
        }
        Ok(())
    }

    /// Total instructions in one pass over all phases.
    pub fn phase_cycle_instrs(&self) -> u64 {
        self.phases.iter().map(|p| p.length_instrs).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> InstMix {
        InstMix {
            loads: 0.25,
            stores: 0.10,
            branches: 0.15,
            int_simple: 0.35,
            int_complex: 0.05,
            fp: 0.08,
            avx: 0.02,
        }
    }

    fn profile() -> WorkloadProfile {
        WorkloadProfile {
            name: "test".into(),
            mix: mix(),
            mem: MemoryBehavior {
                working_set_bytes: 64 * 1024,
                big_set_bytes: 64 * 1024 * 1024,
                big_fraction: 0.05,
                stream_fraction: 0.5,
            },
            branch: BranchBehavior {
                predictability: 0.95,
                static_branches: 256,
            },
            serial_fraction: 0.2,
            code_footprint_bytes: 16 * 1024,
            phases: vec![Phase::neutral(1_000_000)],
        }
    }

    #[test]
    fn valid_profile_passes() {
        assert!(profile().validate().is_ok());
        assert!((mix().total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bad_mix_fails() {
        let mut p = profile();
        p.mix.loads = 0.9;
        assert!(p.validate().is_err());
    }

    #[test]
    fn bad_predictability_fails() {
        let mut p = profile();
        p.branch.predictability = 0.3;
        assert!(p.validate().is_err());
    }

    #[test]
    fn empty_phases_fail() {
        let mut p = profile();
        p.phases.clear();
        assert!(p.validate().is_err());
    }

    #[test]
    fn phase_cycle_length() {
        let mut p = profile();
        p.phases = vec![Phase::neutral(100), Phase::neutral(300)];
        assert_eq!(p.phase_cycle_instrs(), 400);
    }
}
