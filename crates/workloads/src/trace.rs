//! Micro-op trace recording and replay.
//!
//! The original toolchain is trace-driven (Pin traces of real binaries fed
//! to Sniper). This module provides the equivalent capability for the Rust
//! toolchain: any [`InstrSource`] can be recorded into a compact binary
//! trace, persisted, and replayed deterministically — useful for sharing
//! exact workload windows, regression-pinning a simulation, or feeding the
//! core model from externally produced traces.
//!
//! Encoding (little-endian, 18 bytes per record after an 8-byte header):
//! `class:u8, extra_latency:u8, pc:u64, addr_or_taken:u64`.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use hotgauge_perf::instr::{Instr, InstrClass, InstrSource};

/// Magic prefix of the trace format (version 1).
const MAGIC: u64 = 0x4854_4743_5452_0001; // "HTGCTR\0\x01"

fn class_to_u8(c: InstrClass) -> u8 {
    match c {
        InstrClass::IntSimple => 0,
        InstrClass::IntComplex => 1,
        InstrClass::FpScalar => 2,
        InstrClass::Avx512 => 3,
        InstrClass::Load => 4,
        InstrClass::Store => 5,
        InstrClass::Branch => 6,
    }
}

fn class_from_u8(v: u8) -> Option<InstrClass> {
    Some(match v {
        0 => InstrClass::IntSimple,
        1 => InstrClass::IntComplex,
        2 => InstrClass::FpScalar,
        3 => InstrClass::Avx512,
        4 => InstrClass::Load,
        5 => InstrClass::Store,
        6 => InstrClass::Branch,
        _ => return None,
    })
}

/// An in-memory recorded trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    instrs: Vec<Instr>,
}

impl Trace {
    /// Records `n` micro-ops from a source.
    pub fn record<S: InstrSource>(src: &mut S, n: usize) -> Self {
        let instrs = (0..n).map(|_| src.next_instr()).collect();
        Self { instrs }
    }

    /// Number of recorded micro-ops.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// The recorded micro-ops.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Serializes to the compact binary format.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(8 + self.instrs.len() * 18);
        buf.put_u64_le(MAGIC);
        for i in &self.instrs {
            buf.put_u8(class_to_u8(i.class));
            buf.put_u8(i.extra_latency);
            buf.put_u64_le(i.pc);
            let payload = if i.class == InstrClass::Branch {
                i.taken as u64
            } else {
                i.addr
            };
            buf.put_u64_le(payload);
        }
        buf.freeze()
    }

    /// Deserializes from the binary format.
    ///
    /// Returns `Err` with a description on malformed input.
    pub fn from_bytes(mut data: Bytes) -> Result<Self, String> {
        if data.remaining() < 8 {
            return Err("trace too short for header".into());
        }
        if data.get_u64_le() != MAGIC {
            return Err("bad trace magic".into());
        }
        if !data.remaining().is_multiple_of(18) {
            return Err(format!("truncated trace body ({} bytes)", data.remaining()));
        }
        let mut instrs = Vec::with_capacity(data.remaining() / 18);
        while data.has_remaining() {
            let class = class_from_u8(data.get_u8()).ok_or("unknown instruction class")?;
            let extra_latency = data.get_u8();
            let pc = data.get_u64_le();
            let payload = data.get_u64_le();
            let (addr, taken) = if class == InstrClass::Branch {
                (0, payload != 0)
            } else {
                (payload, false)
            };
            instrs.push(Instr {
                class,
                pc,
                addr,
                taken,
                extra_latency,
            });
        }
        Ok(Self { instrs })
    }

    /// A replaying source over this trace. The replay loops endlessly, like
    /// a steady-state region of interest.
    pub fn replay(&self) -> TraceReplay<'_> {
        TraceReplay {
            trace: self,
            pos: 0,
        }
    }
}

/// Replays a [`Trace`] as an [`InstrSource`], looping at the end.
#[derive(Debug)]
pub struct TraceReplay<'a> {
    trace: &'a Trace,
    pos: usize,
}

impl InstrSource for TraceReplay<'_> {
    fn next_instr(&mut self) -> Instr {
        let i = self.trace.instrs[self.pos];
        self.pos = (self.pos + 1) % self.trace.instrs.len();
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WorkloadGen;
    use crate::spec2006;

    fn sample_trace(n: usize) -> Trace {
        let mut gen = WorkloadGen::new(spec2006::profile("gcc").unwrap(), 42);
        Trace::record(&mut gen, n)
    }

    #[test]
    fn roundtrip_is_lossless() {
        let t = sample_trace(5_000);
        let bytes = t.to_bytes();
        let back = Trace::from_bytes(bytes).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn replay_matches_recording_and_loops() {
        let t = sample_trace(100);
        let mut r = t.replay();
        for i in 0..300 {
            assert_eq!(r.next_instr(), t.instrs()[i % 100]);
        }
    }

    #[test]
    fn rejects_bad_magic_and_truncation() {
        assert!(Trace::from_bytes(Bytes::from_static(b"short")).is_err());
        let mut bad = BytesMut::new();
        bad.put_u64_le(0xDEAD_BEEF);
        assert!(Trace::from_bytes(bad.freeze()).is_err());
        let t = sample_trace(3);
        let mut data = t.to_bytes().to_vec();
        data.pop();
        assert!(Trace::from_bytes(Bytes::from(data)).is_err());
    }

    #[test]
    fn replayed_trace_drives_the_core_identically() {
        use hotgauge_perf::config::{CoreConfig, MemoryConfig};
        use hotgauge_perf::engine::CoreSim;

        let t = sample_trace(50_000);
        let mut a = CoreSim::new(CoreConfig::default(), MemoryConfig::default());
        let mut b = CoreSim::new(CoreConfig::default(), MemoryConfig::default());
        let wa = a.run_instructions(&mut t.replay(), 50_000);
        let wb = b.run_instructions(&mut t.replay(), 50_000);
        assert_eq!(wa, wb);
        assert!(wa.ipc() > 0.05);
    }

    #[test]
    fn record_size_is_18_bytes_per_instr() {
        let t = sample_trace(10);
        assert_eq!(t.to_bytes().len(), 8 + 10 * 18);
        assert_eq!(t.len(), 10);
        assert!(!t.is_empty());
    }
}
