//! Bursty server-trace workload profiles.
//!
//! The SPEC2006 proxies ([`crate::spec2006`]) either climb steadily to a
//! hotspot or never get near one — friendly cases for the pipeline's
//! sub-threshold prefilter, which skips the per-substep analysis whenever a
//! frame provably cannot contain a hotspot. Latency-serving workloads
//! behave differently: request bursts alternate with idle polling at
//! millisecond scale, so the die **hovers around the hotspot temperature
//! threshold T_th**, crossing it every few windows in both directions. That
//! is the prefilter's worst case (every skip decision flips back and forth)
//! and the reason these profiles exist (see ROADMAP).
//!
//! Each profile encodes one bursty service archetype through the phase
//! mechanism the generator already cycles deterministically: a
//! compute-dense burst phase (low serialization, cache-resident, boosted
//! FP/SIMD issue) followed by a lull phase (serialized, memory-stalled).
//! Phase lengths are chosen so one burst+lull cycle spans a handful of
//! 1 M-cycle co-sim windows — fast enough to straddle T_th repeatedly
//! within a TUH-scale horizon, slow enough that the thermal state actually
//! swings.

// The working-set tables keep `1 * MIB`-style entries aligned with their
// neighbours, matching spec2006.rs.
#![allow(clippy::identity_op)]

use crate::profile::{BranchBehavior, InstMix, MemoryBehavior, Phase, WorkloadProfile};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

/// Names of the modeled server traces.
pub const SERVER_BENCHMARKS: [&str; 3] = ["server_web", "server_kv", "server_analytics"];

/// Builds the profile for a server trace by name.
///
/// Returns `None` for unknown names; see [`SERVER_BENCHMARKS`].
pub fn profile(name: &str) -> Option<WorkloadProfile> {
    let p = match name {
        // Web/RPC frontend: short request-handling bursts (dense integer
        // with template/JSON FP-ish massaging) against poll lulls. The
        // fastest oscillator of the set — bursts of ~2 windows.
        "server_web" => WorkloadProfile {
            name: "server_web".to_owned(),
            mix: InstMix {
                loads: 0.26,
                stores: 0.12,
                branches: 0.19,
                int_simple: 0.33,
                int_complex: 0.04,
                fp: 0.05,
                avx: 0.01,
            },
            mem: MemoryBehavior {
                working_set_bytes: 768 * KIB,
                big_set_bytes: 48 * MIB,
                big_fraction: 0.04,
                stream_fraction: 0.25,
            },
            branch: BranchBehavior {
                predictability: 0.92,
                static_branches: 3072,
            },
            serial_fraction: 0.16,
            code_footprint_bytes: 1 * MIB,
            phases: vec![
                // Request burst: connection handling + response rendering.
                Phase {
                    length_instrs: 2_000_000,
                    serial_scale: 0.35,
                    mem_scale: 0.45,
                    fp_scale: 1.6,
                },
                // Poll lull: epoll/park loop, pointer-chasing bookkeeping.
                Phase {
                    length_instrs: 2_500_000,
                    serial_scale: 1.9,
                    mem_scale: 2.4,
                    fp_scale: 0.5,
                },
            ],
        },
        // In-memory KV store: mostly memory-bound gets/puts over a large
        // heap, with periodic compaction/GC bursts that are compute-dense.
        "server_kv" => WorkloadProfile {
            name: "server_kv".to_owned(),
            mix: InstMix {
                loads: 0.33,
                stores: 0.13,
                branches: 0.17,
                int_simple: 0.29,
                int_complex: 0.02,
                fp: 0.05,
                avx: 0.01,
            },
            mem: MemoryBehavior {
                working_set_bytes: 2 * MIB,
                big_set_bytes: 192 * MIB,
                big_fraction: 0.22,
                stream_fraction: 0.15,
            },
            branch: BranchBehavior {
                predictability: 0.90,
                static_branches: 1536,
            },
            serial_fraction: 0.24,
            code_footprint_bytes: 512 * KIB,
            phases: vec![
                // Serving: random access over the heap, latency-bound.
                Phase {
                    length_instrs: 4_000_000,
                    serial_scale: 1.5,
                    mem_scale: 1.6,
                    fp_scale: 0.7,
                },
                // Compaction burst: sequential merge, cache-friendly.
                Phase {
                    length_instrs: 2_500_000,
                    serial_scale: 0.4,
                    mem_scale: 0.35,
                    fp_scale: 1.4,
                },
            ],
        },
        // Streaming analytics: long scan lulls (bandwidth-bound) broken by
        // vectorized aggregation bursts — the slowest oscillator.
        "server_analytics" => WorkloadProfile {
            name: "server_analytics".to_owned(),
            mix: InstMix {
                loads: 0.30,
                stores: 0.11,
                branches: 0.08,
                int_simple: 0.22,
                int_complex: 0.02,
                fp: 0.17,
                avx: 0.10,
            },
            mem: MemoryBehavior {
                working_set_bytes: 8 * MIB,
                big_set_bytes: 256 * MIB,
                big_fraction: 0.18,
                stream_fraction: 0.85,
            },
            branch: BranchBehavior {
                predictability: 0.97,
                static_branches: 256,
            },
            serial_fraction: 0.14,
            code_footprint_bytes: 256 * KIB,
            phases: vec![
                Phase {
                    length_instrs: 6_000_000,
                    serial_scale: 1.3,
                    mem_scale: 1.5,
                    fp_scale: 0.8,
                },
                Phase {
                    length_instrs: 3_000_000,
                    serial_scale: 0.45,
                    mem_scale: 0.3,
                    fp_scale: 1.7,
                },
            ],
        },
        _ => return None,
    };
    debug_assert!(p.validate().is_ok(), "server profile table invalid");
    Some(p)
}

/// Profiles for every modeled server trace.
pub fn all_profiles() -> Vec<WorkloadProfile> {
    SERVER_BENCHMARKS
        .iter()
        // hotgauge-lint: allow(L001, "SERVER_BENCHMARKS and the profile table are maintained together; a miss is a table bug")
        .map(|n| profile(n).expect("all named server traces exist"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_server_traces_have_valid_profiles() {
        for name in SERVER_BENCHMARKS {
            let p = profile(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(p.validate().is_ok(), "{name}");
            assert_eq!(p.name, name);
        }
        assert_eq!(all_profiles().len(), SERVER_BENCHMARKS.len());
    }

    #[test]
    fn unknown_server_trace_is_none() {
        assert!(profile("server_doom").is_none());
    }

    #[test]
    fn server_names_do_not_collide_with_spec2006() {
        for name in SERVER_BENCHMARKS {
            assert!(
                crate::spec2006::profile(name).is_none(),
                "{name} shadows a SPEC proxy"
            );
        }
    }

    #[test]
    fn every_trace_alternates_burst_and_lull() {
        for p in all_profiles() {
            assert!(p.phases.len() >= 2, "{}: needs a burst/lull cycle", p.name);
            let burst = p
                .phases
                .iter()
                .map(|ph| ph.serial_scale)
                .fold(f64::INFINITY, f64::min);
            let lull = p
                .phases
                .iter()
                .map(|ph| ph.serial_scale)
                .fold(0.0, f64::max);
            assert!(
                burst < 0.5 && lull > 1.2,
                "{}: burst {burst} / lull {lull} must contrast strongly",
                p.name
            );
        }
    }
}
