//! Deterministic micro-op stream generation from a [`WorkloadProfile`].

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use hotgauge_perf::instr::{Instr, InstrClass, InstrSource};

use crate::profile::WorkloadProfile;

/// A deterministic, infinite micro-op stream for one profile.
///
/// Two generators with the same `(profile, seed)` produce identical streams,
/// which makes every figure of the reproduction bit-reproducible. `Clone`
/// snapshots the stream position, so a cloned co-simulation replays the
/// identical instruction sequence.
#[derive(Clone, Debug)]
pub struct WorkloadGen {
    profile: WorkloadProfile,
    rng: SmallRng,
    /// Dynamic instruction counter.
    icount: u64,
    /// Position within the phase cycle.
    phase_pos: u64,
    phase_idx: usize,
    /// Per-static-branch bias bit (the branch's usual direction).
    branch_bias: Vec<bool>,
    /// Current sequential-stream address.
    stream_addr: u64,
    /// Current code position within the footprint.
    pc: u64,
    /// Base address of the current hot code region (inner loop).
    region_base: u64,
    /// Salt for the per-PC static-instruction hash.
    class_salt: u64,
    /// `ceil(stream_fraction * 2^53)` — see [`bool_threshold`].
    stream_thresh: u64,
    /// `ceil(predictability * 2^53)` — see [`bool_threshold`].
    pred_thresh: u64,
    /// `static_branches - 1` when the count is a power of two (every shipped
    /// profile), else `u64::MAX` to select the modulo fallback.
    bias_mask: u64,
    /// Phase-constant values hoisted out of the per-instruction path, valid
    /// for `derived_phase`. Phases run for tens of thousands of
    /// instructions, so recomputing the scaled mix and cumulative class
    /// thresholds per instruction was pure waste — co-simulation warm-up
    /// alone draws millions of instructions per run.
    derived: PhaseDerived,
    /// Which `phase_idx` `derived` was computed for (`usize::MAX` = stale).
    derived_phase: usize,
}

/// Per-phase constants of the instruction stream: the cumulative class
/// thresholds (in the exact f64 accumulation order of the original
/// per-instruction walk, so streams are bit-identical), the scaled serial
/// fraction, and the scaled cold-set fraction.
#[derive(Clone, Copy, Debug, Default)]
struct PhaseDerived {
    /// Cumulative thresholds: loads, +stores, +branches, +int_simple,
    /// +int_complex, +fp. A class roll `r` falls in the first class whose
    /// threshold exceeds it; `r >= fp_cum` is AVX.
    loads_cum: f64,
    stores_cum: f64,
    branches_cum: f64,
    int_simple_cum: f64,
    int_complex_cum: f64,
    fp_cum: f64,
    /// `ceil((serial_fraction * serial_scale).min(1.0) * 2^53)`.
    serial_thresh: u64,
    /// `ceil((mem.big_fraction * mem_scale).min(1.0) * 2^53)`.
    big_thresh: u64,
    /// The phase's `length_instrs`, so the per-instruction phase advance
    /// does not re-index the phase table.
    phase_len: u64,
}

/// Base of the data segment for generated addresses.
const DATA_BASE: u64 = 0x1000_0000;
/// Base of the large (cold) data segment.
const BIG_BASE: u64 = 0x8000_0000;
/// Base of the code segment.
const CODE_BASE: u64 = 0x40_0000;

/// `ceil(5e-4 * 2^53)`: the hot-region migration probability as a
/// [`bool_threshold`] (pinned against the computed value by a test).
const REGION_MIGRATE_THRESH: u64 = 4_503_599_627_371;

/// `ceil(p * 2^53)`, the integer acceptance threshold equivalent to
/// `Rng::gen_bool(p)`: `gen_bool` draws 53 mantissa bits `x` and tests
/// `x * 2^-53 < p`. Both the int→float conversion of `x` and the
/// power-of-two scalings are exact, so the comparison over the reals is
/// `x < p * 2^53`, i.e. `x < ceil(p * 2^53)` for integer `x`. Comparing the
/// raw draw against a precomputed threshold accepts bit-for-bit the same
/// samples while keeping float conversions off the per-instruction path.
fn bool_threshold(p: f64) -> u64 {
    (p * (1u64 << 53) as f64).ceil().max(0.0) as u64
}

/// Integer-threshold form of `gen_bool` — consumes exactly one `next_u64`,
/// like the floating-point version it replaces.
#[inline]
fn draw_bool(rng: &mut SmallRng, thresh: u64) -> bool {
    (rng.next_u64() >> 11) < thresh
}

impl WorkloadGen {
    /// Creates a generator for `profile` with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation.
    pub fn new(profile: WorkloadProfile, seed: u64) -> Self {
        profile
            .validate()
            // hotgauge-lint: allow(L001, "profiles come from the compile-time SPEC2006/idle tables or from callers that validated them; documented panic")
            .unwrap_or_else(|e| panic!("invalid profile {}: {e}", profile.name));
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let branch_bias: Vec<bool> = (0..profile.branch.static_branches)
            .map(|_| rng.gen_bool(0.5))
            .collect();
        let bias_len = branch_bias.len() as u64;
        let bias_mask = if bias_len.is_power_of_two() {
            bias_len - 1
        } else {
            u64::MAX
        };
        let stream_thresh = bool_threshold(profile.mem.stream_fraction);
        let pred_thresh = bool_threshold(profile.branch.predictability);
        Self {
            profile,
            rng,
            icount: 0,
            phase_pos: 0,
            phase_idx: 0,
            branch_bias,
            stream_addr: DATA_BASE,
            pc: CODE_BASE,
            region_base: CODE_BASE,
            class_salt: seed.wrapping_mul(0xA076_1D64_78BD_642F) | 1,
            stream_thresh,
            pred_thresh,
            bias_mask,
            derived: PhaseDerived::default(),
            derived_phase: usize::MAX,
        }
    }

    /// Recomputes the phase-constant values for the current phase. Every
    /// arithmetic step mirrors the original per-instruction computation —
    /// same operations, same order — so the generated stream is bit-exact.
    fn refresh_derived(&mut self) {
        let phase = self.profile.phases[self.phase_idx];
        let mix = self.profile.mix;
        // Phase-scaled FP share: hot phases shift weight from int to FP/AVX.
        let fp = (mix.fp * phase.fp_scale).min(0.9);
        let avx = (mix.avx * phase.fp_scale).min(0.9 - fp);
        let shift = (fp - mix.fp) + (avx - mix.avx);
        let int_simple = (mix.int_simple - shift).max(0.0);
        let loads_cum = mix.loads;
        let stores_cum = loads_cum + mix.stores;
        let branches_cum = stores_cum + mix.branches;
        let int_simple_cum = branches_cum + int_simple;
        let int_complex_cum = int_simple_cum + mix.int_complex;
        let fp_cum = int_complex_cum + fp;
        self.derived = PhaseDerived {
            loads_cum,
            stores_cum,
            branches_cum,
            int_simple_cum,
            int_complex_cum,
            fp_cum,
            serial_thresh: bool_threshold(
                (self.profile.serial_fraction * phase.serial_scale).min(1.0),
            ),
            big_thresh: bool_threshold((self.profile.mem.big_fraction * phase.mem_scale).min(1.0)),
            phase_len: phase.length_instrs,
        };
        self.derived_phase = self.phase_idx;
    }

    /// The profile driving this stream.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Instructions generated so far.
    pub fn generated(&self) -> u64 {
        self.icount
    }

    /// Skips `n` instructions of the dynamic stream without generating them,
    /// advancing the phase position accordingly. Used by the sampling
    /// co-simulation: only a sample of each 1 M-cycle window is simulated in
    /// detail, but phase progression must track *all* instructions the
    /// window represents.
    pub fn skip(&mut self, n: u64) {
        self.icount += n;
        let cycle = self.profile.phase_cycle_instrs();
        let mut rem = n % cycle;
        while rem > 0 {
            let left = self.profile.phases[self.phase_idx].length_instrs - self.phase_pos;
            if rem >= left {
                rem -= left;
                self.phase_pos = 0;
                self.phase_idx = (self.phase_idx + 1) % self.profile.phases.len();
            } else {
                self.phase_pos += rem;
                rem = 0;
            }
        }
    }

    fn next_pc(&mut self) -> u64 {
        // Loop-dominated code model: execution stays inside a hot region
        // (an inner loop) and occasionally migrates to a different region of
        // the footprint, as phase-structured programs do. Large footprints
        // therefore cost I-cache misses at region switches, not on every
        // fetch — walking the whole text sequentially would thrash the L1I
        // in a way real programs do not.
        const HOT_REGION_BYTES: u64 = 8 * 1024;
        let footprint = self.profile.code_footprint_bytes;
        let region = HOT_REGION_BYTES.min(footprint);
        if draw_bool(&mut self.rng, REGION_MIGRATE_THRESH) {
            // Migrate to a new hot region.
            let regions = (footprint / region).max(1);
            self.region_base = CODE_BASE + self.rng.gen_range(0..regions) * region;
        }
        self.pc += 4;
        if self.pc < self.region_base || self.pc >= self.region_base + region {
            self.pc = self.region_base;
        }
        self.pc
    }

    fn data_address(&mut self, big_thresh: u64) -> u64 {
        let mem = self.profile.mem;
        if draw_bool(&mut self.rng, big_thresh) {
            // Cold/large set: random within big_set.
            let lines = (mem.big_set_bytes / 64).max(1);
            BIG_BASE + self.rng.gen_range(0..lines) * 64
        } else if draw_bool(&mut self.rng, self.stream_thresh) {
            // Sequential streaming through the working set.
            self.stream_addr += 64;
            if self.stream_addr >= DATA_BASE + mem.working_set_bytes {
                self.stream_addr = DATA_BASE;
            }
            self.stream_addr
        } else {
            // Random within the hot working set.
            let lines = (mem.working_set_bytes / 64).max(1);
            DATA_BASE + self.rng.gen_range(0..lines) * 64
        }
    }

    /// Deterministic per-PC roll in [0, 1): real programs execute the *same*
    /// instruction at a given PC on every pass, which is what lets branch
    /// predictors and instruction caches train. Salted by the phase so phase
    /// transitions change the executed code.
    fn class_roll(&self, pc: u64) -> f64 {
        let mut z = pc ^ ((self.phase_idx as u64) << 48) ^ self.class_salt;
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    }

    fn branch_outcome(&mut self, pc: u64) -> bool {
        // Every shipped profile has a power-of-two static-branch count, so
        // the index is a mask; the modulo fallback keeps arbitrary counts
        // working identically.
        let idx = if self.bias_mask != u64::MAX {
            ((pc / 4) & self.bias_mask) as usize
        } else {
            ((pc / 4) % self.branch_bias.len() as u64) as usize
        };
        let bias = self.branch_bias[idx];
        if draw_bool(&mut self.rng, self.pred_thresh) {
            bias
        } else {
            !bias
        }
    }
}

impl InstrSource for WorkloadGen {
    fn next_instr(&mut self) -> Instr {
        self.icount += 1;
        if self.derived_phase != self.phase_idx {
            self.refresh_derived();
        }
        let d = self.derived;
        // Inline phase advance against the cached length (`advance_phase`
        // with the table lookup folded into `derived`).
        self.phase_pos += 1;
        if self.phase_pos >= d.phase_len {
            self.phase_pos = 0;
            self.phase_idx = (self.phase_idx + 1) % self.profile.phases.len();
        }

        let pc = self.next_pc();
        let r: f64 = self.class_roll(pc);
        // The roll lands in the first class whose cumulative threshold
        // exceeds it (thresholds precomputed per phase in `refresh_derived`).
        let mut ins = if r < d.loads_cum {
            Instr::load(pc, self.data_address(d.big_thresh))
        } else if r < d.stores_cum {
            Instr::store(pc, self.data_address(d.big_thresh))
        } else if r < d.branches_cum {
            let taken = self.branch_outcome(pc);
            Instr::branch(pc, taken)
        } else if r < d.int_simple_cum {
            Instr::compute(InstrClass::IntSimple, pc)
        } else if r < d.int_complex_cum {
            let mut i = Instr::compute(InstrClass::IntComplex, pc);
            // Complex ops (mul/div) carry real latency.
            i.extra_latency = 2;
            i
        } else if r < d.fp_cum {
            Instr::compute(InstrClass::FpScalar, pc)
        } else {
            Instr::compute(InstrClass::Avx512, pc)
        };

        // Dependency-chain serialization, scaled by the phase.
        if !matches!(ins.class, InstrClass::IntComplex) && draw_bool(&mut self.rng, d.serial_thresh)
        {
            ins.extra_latency = ins.extra_latency.max(self.rng.gen_range(1..=2));
        }
        ins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{BranchBehavior, InstMix, MemoryBehavior, Phase};

    fn profile() -> WorkloadProfile {
        WorkloadProfile {
            name: "synthetic".into(),
            mix: InstMix {
                loads: 0.25,
                stores: 0.10,
                branches: 0.15,
                int_simple: 0.35,
                int_complex: 0.05,
                fp: 0.08,
                avx: 0.02,
            },
            mem: MemoryBehavior {
                working_set_bytes: 256 * 1024,
                big_set_bytes: 64 * 1024 * 1024,
                big_fraction: 0.02,
                stream_fraction: 0.5,
            },
            branch: BranchBehavior {
                predictability: 0.94,
                static_branches: 512,
            },
            serial_fraction: 0.15,
            code_footprint_bytes: 32 * 1024,
            phases: vec![Phase::neutral(100_000)],
        }
    }

    #[test]
    fn bool_threshold_matches_gen_bool_exactly() {
        // draw_bool must accept bit-for-bit the same samples as gen_bool for
        // any probability, including the scaled per-phase values and edge
        // cases; both consume exactly one draw, so the streams stay aligned.
        let ps = [
            0.0, 1e-9, 5e-4, 0.02, 0.15, 0.3, 0.5, 0.93, 0.94, 0.9999, 1.0, 1.5,
        ];
        for (i, &p) in ps.iter().enumerate() {
            let t = bool_threshold(p);
            let mut a = SmallRng::seed_from_u64(i as u64);
            let mut b = a.clone();
            for _ in 0..50_000 {
                assert_eq!(a.gen_bool(p), draw_bool(&mut b, t), "p = {p}");
            }
        }
        assert_eq!(bool_threshold(5e-4), REGION_MIGRATE_THRESH);
    }

    #[test]
    fn modulo_fallback_matches_mask_path() {
        // A non-power-of-two static-branch count exercises the modulo
        // fallback; the two index computations agree wherever both apply.
        let mut p = profile();
        p.branch.static_branches = 384;
        let mut g = WorkloadGen::new(p, 11);
        assert_eq!(g.bias_mask, u64::MAX);
        for _ in 0..20_000 {
            let i = g.next_instr();
            if i.class == InstrClass::Branch {
                // The modulo path indexed in bounds.
                assert!(i.pc >= CODE_BASE);
            }
        }
    }

    #[test]
    fn determinism() {
        let mut a = WorkloadGen::new(profile(), 7);
        let mut b = WorkloadGen::new(profile(), 7);
        for _ in 0..10_000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WorkloadGen::new(profile(), 1);
        let mut b = WorkloadGen::new(profile(), 2);
        let differs = (0..1000).any(|_| a.next_instr() != b.next_instr());
        assert!(differs);
    }

    #[test]
    fn mix_fractions_are_respected() {
        let mut g = WorkloadGen::new(profile(), 3);
        let n = 200_000;
        let mut loads = 0;
        let mut branches = 0;
        let mut fp = 0;
        for _ in 0..n {
            match g.next_instr().class {
                InstrClass::Load => loads += 1,
                InstrClass::Branch => branches += 1,
                InstrClass::FpScalar | InstrClass::Avx512 => fp += 1,
                _ => {}
            }
        }
        let fl = loads as f64 / n as f64;
        let fb = branches as f64 / n as f64;
        let ff = fp as f64 / n as f64;
        assert!((fl - 0.25).abs() < 0.02, "load fraction {fl}");
        assert!((fb - 0.15).abs() < 0.02, "branch fraction {fb}");
        assert!((ff - 0.10).abs() < 0.02, "fp fraction {ff}");
    }

    #[test]
    fn addresses_stay_in_segments() {
        let mut g = WorkloadGen::new(profile(), 4);
        for _ in 0..50_000 {
            let i = g.next_instr();
            if matches!(i.class, InstrClass::Load | InstrClass::Store) {
                let in_hot = (DATA_BASE..DATA_BASE + 256 * 1024 + 64).contains(&i.addr);
                let in_big = (BIG_BASE..BIG_BASE + 64 * 1024 * 1024 + 64).contains(&i.addr);
                assert!(in_hot || in_big, "address {:x} outside segments", i.addr);
            }
            assert!(i.pc >= CODE_BASE && i.pc < CODE_BASE + 32 * 1024 + 4);
        }
    }

    #[test]
    fn phase_scaling_changes_fp_share() {
        let mut p = profile();
        p.phases = vec![Phase {
            length_instrs: 50_000,
            serial_scale: 1.0,
            mem_scale: 1.0,
            fp_scale: 5.0,
        }];
        let mut g = WorkloadGen::new(p, 5);
        let n = 50_000;
        let fp = (0..n).filter(|_| g.next_instr().class.is_fp()).count() as f64 / n as f64;
        assert!(fp > 0.3, "fp share under 5x scale: {fp}");
    }

    #[test]
    fn skip_advances_phase_like_generation() {
        let mut p = profile();
        p.phases = vec![
            Phase::neutral(1000),
            Phase {
                length_instrs: 500,
                serial_scale: 2.0,
                mem_scale: 1.0,
                fp_scale: 1.0,
            },
        ];
        let mut a = WorkloadGen::new(p.clone(), 9);
        let mut b = WorkloadGen::new(p, 9);
        // Generating n instructions and skipping n must land in the same
        // phase position.
        for _ in 0..1234 {
            a.next_instr();
        }
        b.skip(1234);
        assert_eq!(a.phase_idx, b.phase_idx);
        assert_eq!(a.phase_pos, b.phase_pos);
        assert_eq!(a.generated(), b.generated());
        // Skipping a whole number of cycles is a no-op on phase position.
        let (pi, pp) = (b.phase_idx, b.phase_pos);
        b.skip(1500 * 4);
        assert_eq!((pi, pp), (b.phase_idx, b.phase_pos));
    }

    #[test]
    fn generated_counts() {
        let mut g = WorkloadGen::new(profile(), 6);
        for _ in 0..123 {
            g.next_instr();
        }
        assert_eq!(g.generated(), 123);
    }
}
