//! Deterministic SPEC CPU2006 proxy workloads for the HotGauge reproduction.
//!
//! The original study traces real SPEC2006 binaries with a Pin-based
//! simulator; this crate substitutes **statistical workload models**: one
//! calibrated profile per benchmark ([`spec2006`]), bursty server traces
//! that hover at the hotspot threshold ([`server`]), a deterministic
//! micro-op stream generator ([`generator`]), the idle/OS background task
//! used for thermal warm-up ([`idle`]), and binary trace recording/replay
//! ([`trace`]) for Sniper-style trace-driven runs.
//!
//! [`benchmark_profile`] is the combined name lookup the pipeline uses: it
//! resolves `idle`, every SPEC2006 proxy, and every server trace.
//!
//! # Examples
//!
//! ```
//! use hotgauge_perf::prelude::*;
//! use hotgauge_workloads::prelude::*;
//!
//! let profile = spec2006::profile("gcc").unwrap();
//! let mut stream = WorkloadGen::new(profile, /*seed=*/ 0);
//! let mut core = CoreSim::new(CoreConfig::default(), MemoryConfig::default());
//! core.warm_up(&mut stream, 500_000);
//! let window = core.run_cycles(&mut stream, 200_000);
//! assert!(window.ipc() > 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod generator;
pub mod idle;
pub mod profile;
pub mod server;
pub mod spec2006;
pub mod trace;

pub use crate::generator::WorkloadGen;
pub use crate::idle::{idle_profile, IDLE_DUTY_CYCLE, IDLE_WARMUP_DURATION_S};
pub use crate::profile::{BranchBehavior, InstMix, MemoryBehavior, Phase, WorkloadProfile};
pub use crate::trace::{Trace, TraceReplay};

/// Resolves any modeled benchmark name — `idle`, a SPEC2006 proxy, or a
/// server trace — to its workload profile.
pub fn benchmark_profile(name: &str) -> Option<WorkloadProfile> {
    if name == "idle" {
        return Some(idle_profile());
    }
    spec2006::profile(name).or_else(|| server::profile(name))
}

/// Convenient glob import of the most used items.
pub mod prelude {
    pub use crate::benchmark_profile;
    pub use crate::generator::WorkloadGen;
    pub use crate::idle::{idle_profile, IDLE_DUTY_CYCLE, IDLE_WARMUP_DURATION_S};
    pub use crate::profile::{InstMix, MemoryBehavior, Phase, WorkloadProfile};
    pub use crate::server;
    pub use crate::spec2006;
}
