//! SPEC CPU2006 proxy profiles.
//!
//! One calibrated [`WorkloadProfile`] per benchmark of the paper's evaluation
//! set (the non-Fortran SPEC2006 workloads, §III-D footnote 2). The profiles
//! encode each benchmark's published microarchitectural signature:
//! instruction mix, working-set and streaming behavior, branch
//! predictability, ILP, code footprint, and phase structure. They are what
//! stands in for tracing the real binaries with a Pin-based simulator.

// The cache-size tables below keep `1 * MIB`-style entries aligned with
// their neighbours.
#![allow(clippy::identity_op)]

use crate::profile::{BranchBehavior, InstMix, MemoryBehavior, Phase, WorkloadProfile};

const KIB: u64 = 1024;
const MIB: u64 = 1024 * 1024;

/// Names of all modeled benchmarks (SPEC2006 integer first, then FP).
pub const ALL_BENCHMARKS: [&str; 19] = [
    "perlbench",
    "bzip2",
    "gcc",
    "mcf",
    "gobmk",
    "hmmer",
    "sjeng",
    "libquantum",
    "h264ref",
    "omnetpp",
    "astar",
    "xalancbmk",
    "milc",
    "namd",
    "dealII",
    "soplex",
    "povray",
    "lbm",
    "sphinx3",
];

/// The five benchmarks of the paper's `C_dyn` validation set (Table III).
pub const VALIDATION_BENCHMARKS: [&str; 5] = ["bzip2", "gcc", "omnetpp", "povray", "hmmer"];

#[allow(clippy::too_many_arguments)]
fn mk(
    name: &str,
    mix: InstMix,
    ws: u64,
    big: u64,
    big_frac: f64,
    stream: f64,
    pred: f64,
    statics: u32,
    serial: f64,
    code: u64,
    phases: Vec<Phase>,
) -> WorkloadProfile {
    let p = WorkloadProfile {
        name: name.to_owned(),
        mix,
        mem: MemoryBehavior {
            working_set_bytes: ws,
            big_set_bytes: big,
            big_fraction: big_frac,
            stream_fraction: stream,
        },
        branch: BranchBehavior {
            predictability: pred,
            static_branches: statics,
        },
        serial_fraction: serial,
        code_footprint_bytes: code,
        phases,
    };
    p.validate()
        // hotgauge-lint: allow(L001, "the profile table is compile-time data; an invalid entry is caught by the all_profiles test, not reachable from user input")
        .unwrap_or_else(|e| panic!("profile {name} invalid: {e}"));
    p
}

fn mix(
    loads: f64,
    stores: f64,
    branches: f64,
    int_simple: f64,
    int_complex: f64,
    fp: f64,
    avx: f64,
) -> InstMix {
    InstMix {
        loads,
        stores,
        branches,
        int_simple,
        int_complex,
        fp,
        avx,
    }
}

/// Builds the profile for a benchmark by name.
///
/// Returns `None` for unknown names; see [`ALL_BENCHMARKS`].
pub fn profile(name: &str) -> Option<WorkloadProfile> {
    let p = match name {
        // ---------------- SPEC2006 integer ----------------
        "perlbench" => mk(
            "perlbench",
            mix(0.24, 0.12, 0.21, 0.33, 0.04, 0.05, 0.01),
            512 * KIB,
            32 * MIB,
            0.02,
            0.3,
            0.93,
            2048,
            0.18,
            400 * KIB,
            vec![
                Phase::neutral(4_000_000),
                Phase {
                    length_instrs: 1_000_000,
                    serial_scale: 0.6,
                    mem_scale: 1.5,
                    fp_scale: 1.0,
                },
            ],
        ),
        "bzip2" => mk(
            "bzip2",
            // Dense integer compute — the paper's >8 W/mm² power-density
            // example (§II-A).
            mix(0.26, 0.11, 0.15, 0.38, 0.06, 0.03, 0.01),
            4 * MIB,
            64 * MIB,
            0.01,
            0.6,
            0.91,
            512,
            0.10,
            64 * KIB,
            vec![
                Phase::neutral(3_000_000),
                Phase {
                    length_instrs: 2_000_000,
                    serial_scale: 0.5,
                    mem_scale: 0.5,
                    fp_scale: 1.0,
                },
            ],
        ),
        "gcc" => mk(
            "gcc",
            // Large code footprint, heavy rename/ROB churn, bursty phases.
            mix(0.25, 0.13, 0.20, 0.33, 0.03, 0.05, 0.01),
            2 * MIB,
            128 * MIB,
            0.04,
            0.3,
            0.94,
            4096,
            0.15,
            2 * MIB,
            vec![
                Phase::neutral(2_000_000),
                // Compute burst: low serialization, compute-dense.
                Phase {
                    length_instrs: 1_500_000,
                    serial_scale: 0.35,
                    mem_scale: 0.4,
                    fp_scale: 2.0,
                },
                Phase {
                    length_instrs: 1_000_000,
                    serial_scale: 1.4,
                    mem_scale: 2.0,
                    fp_scale: 1.0,
                },
            ],
        ),
        "mcf" => mk(
            "mcf",
            // Pointer-chasing, hugely memory-bound.
            mix(0.35, 0.09, 0.17, 0.30, 0.02, 0.06, 0.01),
            1 * MIB,
            256 * MIB,
            0.35,
            0.05,
            0.90,
            512,
            0.30,
            64 * KIB,
            // Memory-bound crawl for most of the run, then a dense
            // optimization burst very late — one of the paper's long-TUH
            // tail workloads (TUH up to ~150 ms).
            vec![
                Phase {
                    length_instrs: 140_000_000,
                    serial_scale: 1.2,
                    mem_scale: 1.0,
                    fp_scale: 1.0,
                },
                Phase {
                    length_instrs: 10_000_000,
                    serial_scale: 0.25,
                    mem_scale: 0.15,
                    fp_scale: 2.0,
                },
            ],
        ),
        "gobmk" => mk(
            "gobmk",
            // Go AI: very branchy with hard-to-predict branches and
            // alternating search phases — the paper's MLTD case study and
            // warm-up-sensitive TUH example (Fig. 9, Fig. 11).
            mix(0.25, 0.12, 0.24, 0.30, 0.03, 0.05, 0.01),
            512 * KIB,
            32 * MIB,
            0.03,
            0.15,
            0.86,
            8192,
            0.18,
            512 * KIB,
            vec![
                Phase::neutral(1_500_000),
                Phase {
                    length_instrs: 1_500_000,
                    serial_scale: 0.4,
                    mem_scale: 0.6,
                    fp_scale: 1.2,
                },
            ],
        ),
        "hmmer" => mk(
            "hmmer",
            // Profile HMM dynamic programming: extremely high ILP, small
            // working set, near-perfect branches (highest validated C_dyn).
            mix(0.30, 0.10, 0.08, 0.45, 0.04, 0.02, 0.01),
            64 * KIB,
            8 * MIB,
            0.005,
            0.8,
            0.97,
            128,
            0.04,
            32 * KIB,
            vec![Phase::neutral(2_000_000)],
        ),
        "sjeng" => mk(
            "sjeng",
            mix(0.24, 0.10, 0.22, 0.34, 0.04, 0.05, 0.01),
            256 * KIB,
            16 * MIB,
            0.02,
            0.1,
            0.88,
            4096,
            0.20,
            256 * KIB,
            vec![Phase::neutral(2_500_000)],
        ),
        "libquantum" => mk(
            "libquantum",
            // Quantum register streaming: perfectly regular, memory bound —
            // TUH insensitive to core placement in the paper (Fig. 11).
            mix(0.25, 0.15, 0.12, 0.38, 0.02, 0.07, 0.01),
            32 * MIB,
            64 * MIB,
            0.20,
            0.95,
            0.99,
            64,
            0.12,
            16 * KIB,
            // Long uniform streaming, then a compute-dense gate-fusion
            // burst: a mid-range TUH benchmark insensitive to placement.
            vec![
                Phase::neutral(40_000_000),
                Phase {
                    length_instrs: 6_000_000,
                    serial_scale: 0.5,
                    mem_scale: 0.3,
                    fp_scale: 1.6,
                },
            ],
        ),
        "h264ref" => mk(
            "h264ref",
            // Video encode: SIMD-flavored integer with motion-search bursts.
            mix(0.28, 0.10, 0.12, 0.34, 0.04, 0.06, 0.06),
            1 * MIB,
            32 * MIB,
            0.02,
            0.6,
            0.93,
            1024,
            0.10,
            512 * KIB,
            vec![
                Phase::neutral(2_000_000),
                Phase {
                    length_instrs: 1_000_000,
                    serial_scale: 0.5,
                    mem_scale: 0.8,
                    fp_scale: 1.8,
                },
            ],
        ),
        "omnetpp" => mk(
            "omnetpp",
            // Discrete-event simulation: pointer-heavy, poor locality.
            mix(0.30, 0.13, 0.20, 0.27, 0.02, 0.07, 0.01),
            1 * MIB,
            64 * MIB,
            0.15,
            0.1,
            0.92,
            2048,
            0.25,
            512 * KIB,
            vec![
                Phase::neutral(50_000_000),
                Phase {
                    length_instrs: 5_000_000,
                    serial_scale: 0.45,
                    mem_scale: 0.4,
                    fp_scale: 1.5,
                },
            ],
        ),
        "astar" => mk(
            "astar",
            mix(0.30, 0.10, 0.17, 0.32, 0.03, 0.07, 0.01),
            2 * MIB,
            32 * MIB,
            0.10,
            0.2,
            0.88,
            1024,
            0.22,
            128 * KIB,
            vec![Phase::neutral(2_500_000)],
        ),
        "xalancbmk" => mk(
            "xalancbmk",
            mix(0.28, 0.11, 0.23, 0.28, 0.02, 0.07, 0.01),
            1 * MIB,
            64 * MIB,
            0.08,
            0.2,
            0.92,
            4096,
            0.20,
            1 * MIB,
            vec![Phase::neutral(3_000_000)],
        ),
        // ---------------- SPEC2006 floating point (non-Fortran) -----------
        "milc" => mk(
            "milc",
            // Lattice QCD: vector FP over large streamed arrays.
            mix(0.30, 0.12, 0.05, 0.16, 0.02, 0.22, 0.13),
            16 * MIB,
            128 * MIB,
            0.20,
            0.85,
            0.98,
            128,
            0.18,
            64 * KIB,
            vec![
                Phase::neutral(3_000_000),
                Phase {
                    length_instrs: 1_500_000,
                    serial_scale: 0.7,
                    mem_scale: 1.6,
                    fp_scale: 1.2,
                },
            ],
        ),
        "namd" => mk(
            "namd",
            // Molecular dynamics: compute-dense FP kernels, small WS,
            // the paper's cold-start-sensitive TUH example.
            mix(0.22, 0.08, 0.07, 0.15, 0.03, 0.30, 0.15),
            1 * MIB,
            16 * MIB,
            0.02,
            0.5,
            0.98,
            256,
            0.08,
            128 * KIB,
            vec![
                Phase {
                    length_instrs: 2_000_000,
                    serial_scale: 0.6,
                    mem_scale: 0.8,
                    fp_scale: 1.3,
                },
                Phase::neutral(1_000_000),
            ],
        ),
        "dealII" => mk(
            "dealII",
            mix(0.28, 0.10, 0.10, 0.19, 0.03, 0.24, 0.06),
            2 * MIB,
            64 * MIB,
            0.05,
            0.4,
            0.96,
            1024,
            0.14,
            1 * MIB,
            vec![Phase::neutral(2_500_000)],
        ),
        "soplex" => mk(
            "soplex",
            // Sparse LP solver: indirect accesses over large matrices.
            mix(0.32, 0.10, 0.12, 0.20, 0.02, 0.20, 0.04),
            2 * MIB,
            64 * MIB,
            0.15,
            0.3,
            0.94,
            1024,
            0.22,
            256 * KIB,
            vec![
                Phase::neutral(25_000_000),
                Phase {
                    length_instrs: 4_000_000,
                    serial_scale: 0.5,
                    mem_scale: 0.5,
                    fp_scale: 1.5,
                },
            ],
        ),
        "povray" => mk(
            "povray",
            // Ray tracing: FP compute-dense, tiny working set, highest
            // validated C_dyn (1.62 nF model @14 nm).
            mix(0.26, 0.09, 0.12, 0.14, 0.03, 0.31, 0.05),
            128 * KIB,
            4 * MIB,
            0.005,
            0.2,
            0.95,
            2048,
            0.06,
            256 * KIB,
            vec![Phase::neutral(3_000_000)],
        ),
        "lbm" => mk(
            "lbm",
            // Lattice-Boltzmann: pure streaming, memory-bandwidth bound.
            mix(0.28, 0.14, 0.03, 0.13, 0.01, 0.28, 0.13),
            32 * MIB,
            128 * MIB,
            0.40,
            0.98,
            0.995,
            32,
            0.15,
            16 * KIB,
            vec![
                Phase::neutral(60_000_000),
                Phase {
                    length_instrs: 8_000_000,
                    serial_scale: 0.55,
                    mem_scale: 0.35,
                    fp_scale: 1.4,
                },
            ],
        ),
        "sphinx3" => mk(
            "sphinx3",
            // Speech recognition: FP scoring over acoustic models.
            mix(0.30, 0.08, 0.10, 0.20, 0.02, 0.25, 0.05),
            512 * KIB,
            32 * MIB,
            0.10,
            0.5,
            0.94,
            512,
            0.12,
            256 * KIB,
            vec![
                Phase::neutral(2_500_000),
                Phase {
                    length_instrs: 1_000_000,
                    serial_scale: 0.7,
                    mem_scale: 1.4,
                    fp_scale: 1.3,
                },
            ],
        ),
        _ => return None,
    };
    Some(p)
}

/// Profiles for every modeled benchmark.
pub fn all_profiles() -> Vec<WorkloadProfile> {
    ALL_BENCHMARKS
        .iter()
        // hotgauge-lint: allow(L001, "ALL_BENCHMARKS and the profile table are maintained together; a miss is a table bug")
        .map(|n| profile(n).expect("all named benchmarks exist"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_have_valid_profiles() {
        for name in ALL_BENCHMARKS {
            let p = profile(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(p.validate().is_ok(), "{name}");
            assert_eq!(p.name, name);
        }
        assert_eq!(all_profiles().len(), ALL_BENCHMARKS.len());
    }

    #[test]
    fn unknown_benchmark_is_none() {
        assert!(profile("doom").is_none());
    }

    #[test]
    fn validation_set_is_subset() {
        for v in VALIDATION_BENCHMARKS {
            assert!(ALL_BENCHMARKS.contains(&v));
        }
    }

    #[test]
    fn fp_benchmarks_have_fp_heavy_mix() {
        for name in ["milc", "namd", "povray", "lbm"] {
            let p = profile(name).unwrap();
            assert!(
                p.mix.fp + p.mix.avx > 0.25,
                "{name}: fp share {}",
                p.mix.fp + p.mix.avx
            );
        }
    }

    #[test]
    fn memory_bound_benchmarks_have_large_cold_sets() {
        for name in ["mcf", "lbm", "libquantum"] {
            let p = profile(name).unwrap();
            assert!(p.mem.big_fraction >= 0.2, "{name}");
            assert!(p.mem.big_set_bytes >= 64 * MIB, "{name}");
        }
    }

    #[test]
    fn gobmk_is_branchy_and_unpredictable() {
        let p = profile("gobmk").unwrap();
        assert!(p.mix.branches >= 0.2);
        assert!(p.branch.predictability <= 0.9);
    }

    #[test]
    fn distinct_benchmarks_have_distinct_profiles() {
        let all = all_profiles();
        for i in 0..all.len() {
            for j in (i + 1)..all.len() {
                assert_ne!(all[i], all[j], "{} == {}", all[i].name, all[j].name);
            }
        }
    }
}
