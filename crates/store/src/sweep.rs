//! The work-stealing sweep executor with a result store in front.
//!
//! [`run_many_stored_with`] partitions a sweep into store hits and misses:
//! hits stream straight from disk (after full snapshot verification),
//! misses run through [`hotgauge_core::run_many_batched_with`] with their
//! *original* configs — the executor applies its own serial-forcing rule —
//! so a fresh result is bit-identical to what a storeless sweep would have
//! produced, and so is a stored one (it was persisted from exactly such a
//! run). Keys, however, are computed over the *effective* config (after
//! serial forcing, via [`hotgauge_core::sweep_serial_forced`]): the key
//! must address what the executor actually runs, or a `--threads 1` sweep
//! and a `--threads 8` sweep would collide on runs whose recorded
//! `AnalysisConfig`s differ.
//!
//! Delta mode ([`DeltaBasis`]) restricts which keys may be served: only
//! keys present in the previous sweep's index are eligible; everything
//! else re-simulates (and re-persists) even if some other sweep stored it.

use std::sync::atomic::{AtomicUsize, Ordering};

use hotgauge_core::pipeline::{RunResult, SimConfig, SweepProgress};
use hotgauge_core::{run_many_batched_with, sweep_serial_forced};

use crate::key::{run_key, ContentKey};
use crate::store::{DeltaBasis, ResultStore, StoreStats};
use crate::StoreError;

/// Where one sweep result came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunSource {
    /// Freshly simulated this sweep.
    Simulated,
    /// Served from the result store.
    Store,
}

impl RunSource {
    /// The NDJSON row tag (`"sim"` / `"store"`).
    pub fn label(&self) -> &'static str {
        match self {
            RunSource::Simulated => "sim",
            RunSource::Store => "store",
        }
    }
}

/// One sweep's results with their content keys, per-run provenance, and
/// the store counters accumulated by exactly this sweep.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Run results, in input order.
    pub results: Vec<RunResult>,
    /// Content key of each run (effective-config keyed), in input order.
    pub keys: Vec<ContentKey>,
    /// Provenance of each result, in input order.
    pub sources: Vec<RunSource>,
    /// Store counters for this sweep alone (all zero for storeless runs).
    pub stats: StoreStats,
}

/// The content key of `cfg` as submitted to a sweep at `threads`: applies
/// the executor's serial-forcing rule before keying, so the key addresses
/// the effective config a fresh sweep would record.
pub fn sweep_key(cfg: &SimConfig, threads: usize) -> ContentKey {
    if sweep_serial_forced(threads) {
        let mut eff = cfg.clone();
        eff.analysis = eff.analysis.serial();
        run_key(&eff)
    } else {
        run_key(cfg)
    }
}

/// A storeless sweep that still computes per-run content keys (the
/// `hotgauge sweep` path without `--store`). All results are freshly
/// simulated; stats stay zero.
pub fn run_many_keyed_with(
    cfgs: Vec<SimConfig>,
    threads: usize,
    batch: usize,
    on_done: Option<&(dyn Fn(SweepProgress) + Sync)>,
) -> SweepOutcome {
    let keys: Vec<ContentKey> = cfgs.iter().map(|c| sweep_key(c, threads)).collect();
    let sources = vec![RunSource::Simulated; cfgs.len()];
    let results = run_many_batched_with(cfgs, threads, batch, on_done);
    SweepOutcome {
        results,
        keys,
        sources,
        stats: StoreStats::default(),
    }
}

/// Runs a sweep with `store` in front of the executor.
///
/// For each config: if its key is delta-eligible (in the basis, or no
/// basis given) and the store holds a verified snapshot, the result is
/// served from disk; otherwise the run is simulated through the normal
/// pooled executor and the fresh result persisted. `on_done` fires once
/// per run either way — hits first (they complete immediately), then
/// simulated runs as workers finish them — with `done` counting monotonically
/// over the whole sweep. Results keep input order and are bit-identical to
/// a storeless [`run_many_batched_with`] over the same configs.
pub fn run_many_stored_with(
    cfgs: Vec<SimConfig>,
    threads: usize,
    batch: usize,
    store: &mut ResultStore,
    delta: Option<&DeltaBasis>,
    on_done: Option<&(dyn Fn(SweepProgress) + Sync)>,
) -> Result<SweepOutcome, StoreError> {
    let n = cfgs.len();
    let before = store.stats();
    let keys: Vec<ContentKey> = cfgs.iter().map(|c| sweep_key(c, threads)).collect();

    let mut results: Vec<Option<RunResult>> = (0..n).map(|_| None).collect();
    let mut sources = vec![RunSource::Simulated; n];
    let mut hits = 0usize;
    for i in 0..n {
        let eligible = delta.is_none_or(|basis| basis.contains(&keys[i]));
        if !eligible {
            store.record_miss();
            continue;
        }
        if let Some(result) = store.get(&keys[i]) {
            results[i] = Some(result);
            sources[i] = RunSource::Store;
            hits += 1;
            if let Some(cb) = on_done {
                cb(SweepProgress {
                    done: hits,
                    total: n,
                    benchmark: cfgs[i].benchmark.clone(),
                    node: cfgs[i].node,
                    target_core: cfgs[i].target_core,
                });
            }
        }
    }

    let miss_idx: Vec<usize> = (0..n).filter(|&i| results[i].is_none()).collect();
    if !miss_idx.is_empty() {
        // The executor sees the ORIGINAL configs and applies its own serial
        // forcing, so the recorded `RunResult.config` matches a storeless
        // sweep bit for bit.
        let miss_cfgs: Vec<SimConfig> = miss_idx.iter().map(|&i| cfgs[i].clone()).collect();
        let done_so_far = AtomicUsize::new(hits);
        let wrapped = |p: SweepProgress| {
            if let Some(cb) = on_done {
                let done = done_so_far.fetch_add(1, Ordering::Relaxed) + 1;
                cb(SweepProgress {
                    done,
                    total: n,
                    ..p
                });
            }
        };
        let wrapped_ref: Option<&(dyn Fn(SweepProgress) + Sync)> = if on_done.is_some() {
            Some(&wrapped)
        } else {
            None
        };
        let fresh = run_many_batched_with(miss_cfgs, threads, batch, wrapped_ref);
        if fresh.len() != miss_idx.len() {
            return Err(StoreError::Internal(
                "executor returned a wrong result count",
            ));
        }
        for (&i, result) in miss_idx.iter().zip(fresh) {
            store.put(&keys[i], &result)?;
            results[i] = Some(result);
        }
        store.flush()?;
    }

    let mut merged = Vec::with_capacity(n);
    for slot in results {
        match slot {
            Some(result) => merged.push(result),
            None => return Err(StoreError::Internal("a sweep slot was left unfilled")),
        }
    }
    Ok(SweepOutcome {
        results: merged,
        keys,
        sources,
        stats: store.stats().delta_since(before),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_source_labels() {
        assert_eq!(RunSource::Simulated.label(), "sim");
        assert_eq!(RunSource::Store.label(), "store");
    }

    #[test]
    fn sweep_key_applies_serial_forcing_only_for_pools() {
        use hotgauge_core::AnalysisConfig;
        use hotgauge_floorplan::tech::TechNode;
        let mut cfg = SimConfig::new(TechNode::N7, "hmmer");
        cfg.analysis = AnalysisConfig {
            threads: 4,
            ..cfg.analysis
        };
        let serial = sweep_key(&cfg, 1);
        let pooled = sweep_key(&cfg, 2);
        assert_ne!(
            serial, pooled,
            "a pooled sweep serial-forces the analysis config, changing the key"
        );
        let mut forced = cfg.clone();
        forced.analysis = forced.analysis.serial();
        assert_eq!(pooled, run_key(&forced));
        assert_eq!(
            sweep_key(&forced, 1),
            pooled,
            "already-serial config keys identically"
        );
    }
}
