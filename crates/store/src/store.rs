//! On-disk result store: content-addressed objects plus an atomic index.
//!
//! Layout under the store root:
//!
//! ```text
//! <root>/index.json            # StoreIndex: key → sweep coordinates
//! <root>/objects/<key>.json    # StoredRun snapshots, one per key
//! <root>/quarantine/<key>.json # objects that failed read verification
//! ```
//!
//! Durability protocol: every write (object and index) goes through
//! temp-file-plus-rename ([`hotgauge_telemetry::manifest::write_json_atomic`]),
//! so a crash mid-write leaves either the old object or a stray temp file —
//! never a torn object at the addressed path. Reads still assume nothing:
//! a snapshot is served only if it parses, carries the current
//! [`STORE_SCHEMA_VERSION`], its embedded key matches the address, *and*
//! the key recomputed from the embedded result's config matches too.
//! Anything else is moved to `quarantine/` and counted as a miss, so the
//! sweep re-simulates it — corruption can cost time, never correctness.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::{Path, PathBuf};

use hotgauge_core::pipeline::RunResult;
use hotgauge_telemetry::counter;
use hotgauge_telemetry::manifest::{write_json_atomic, StoreManifest};
use serde::{Deserialize, Serialize};

use crate::key::{run_key, ContentKey};
use crate::snapshot::{stored_value, StoredRun, STORE_SCHEMA_VERSION};
use crate::StoreError;

/// Index file name under the store root.
pub const INDEX_FILE: &str = "index.json";
/// Directory of content-addressed snapshot objects.
pub const OBJECTS_DIR: &str = "objects";
/// Directory where failed-verification objects are moved.
pub const QUARANTINE_DIR: &str = "quarantine";

/// One index row: a stored key plus the human-readable sweep coordinates
/// it came from (for inspection and delta tooling; the key alone is
/// authoritative).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndexEntry {
    /// The content key of the stored object.
    pub key: ContentKey,
    /// Benchmark name of the run.
    pub benchmark: String,
    /// Technology node label (e.g. `"7nm"`).
    pub node: String,
    /// Core the workload was pinned to.
    pub target_core: usize,
    /// Workload RNG seed.
    pub seed: u64,
}

/// The serialized form of `index.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoreIndex {
    /// Snapshot schema version the objects were written under.
    pub schema_version: u32,
    /// All stored keys, sorted by key hex.
    pub entries: Vec<IndexEntry>,
}

/// Lookup/persist counters for one store session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that fell through to simulation (includes quarantines and
    /// delta-ineligible keys).
    pub misses: u64,
    /// Fresh results persisted.
    pub writes: u64,
    /// Objects that failed read verification and were quarantined.
    pub quarantined: u64,
}

impl StoreStats {
    /// Total lookups (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from disk; `1.0` when nothing was looked
    /// up (an empty sweep is vacuously all-hit).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.lookups();
        if lookups == 0 {
            1.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }

    /// Accumulates another session's counters into this one.
    pub fn merge(&mut self, other: StoreStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.writes += other.writes;
        self.quarantined += other.quarantined;
    }

    /// The counters accumulated since `before` was captured.
    pub fn delta_since(&self, before: StoreStats) -> StoreStats {
        StoreStats {
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
            writes: self.writes - before.writes,
            quarantined: self.quarantined - before.quarantined,
        }
    }

    /// The manifest block mirroring these counters.
    pub fn to_manifest(&self) -> StoreManifest {
        StoreManifest {
            hits: self.hits,
            misses: self.misses,
            writes: self.writes,
            quarantined: self.quarantined,
            hit_rate: self.hit_rate(),
        }
    }
}

/// A content-addressed store of run snapshots rooted at one directory.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    entries: BTreeMap<ContentKey, IndexEntry>,
    stats: StoreStats,
}

impl ResultStore {
    /// Opens (creating if needed) a store at `root`. An unreadable or
    /// malformed existing index is treated as empty — the objects are still
    /// on disk and get re-verified object-by-object on lookup, so the worst
    /// case is re-simulation, not wrong results.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        for dir in [
            root.clone(),
            root.join(OBJECTS_DIR),
            root.join(QUARANTINE_DIR),
        ] {
            fs::create_dir_all(&dir).map_err(|e| StoreError::io(&dir, e))?;
        }
        let index_path = root.join(INDEX_FILE);
        let mut entries = BTreeMap::new();
        if let Ok(text) = fs::read_to_string(&index_path) {
            if let Ok(index) = serde_json::from_str::<StoreIndex>(&text) {
                if index.schema_version == STORE_SCHEMA_VERSION {
                    for entry in index.entries {
                        entries.insert(entry.key.clone(), entry);
                    }
                }
            }
        }
        Ok(ResultStore {
            root,
            entries,
            stats: StoreStats::default(),
        })
    }

    /// The store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path of the object addressed by `key`.
    pub fn object_path(&self, key: &ContentKey) -> PathBuf {
        self.root.join(OBJECTS_DIR).join(format!("{key}.json"))
    }

    /// Whether the index lists `key` (cheap; does not touch the object).
    pub fn contains(&self, key: &ContentKey) -> bool {
        self.entries.contains_key(key)
    }

    /// The keys currently indexed, in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &ContentKey> {
        self.entries.keys()
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up `key`, returning the stored result only if the snapshot
    /// passes full verification (parse, schema version, address match,
    /// recomputed content key). Failures quarantine the object and count
    /// as a miss.
    pub fn get(&mut self, key: &ContentKey) -> Option<RunResult> {
        let path = self.object_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(_) => {
                self.note_miss();
                return None;
            }
        };
        let verified = serde_json::from_str::<StoredRun>(&text)
            .ok()
            .filter(|stored| stored.schema_version == STORE_SCHEMA_VERSION)
            .filter(|stored| stored.key == *key)
            .filter(|stored| run_key(&stored.result.config) == *key);
        match verified {
            Some(stored) => {
                self.stats.hits += 1;
                counter!("store.hits", 1);
                Some(stored.result)
            }
            None => {
                self.quarantine(key, &path);
                self.note_miss();
                None
            }
        }
    }

    /// Records a lookup that bypassed the store (e.g. a delta-ineligible
    /// key), keeping hit-rate accounting honest.
    pub fn record_miss(&mut self) {
        self.note_miss();
    }

    /// Persists `result` under `key` (atomic write) and indexes it.
    pub fn put(&mut self, key: &ContentKey, result: &RunResult) -> Result<(), StoreError> {
        let path = self.object_path(key);
        write_json_atomic(&path, &stored_value(key, result))
            .map_err(|e| StoreError::io(&path, e))?;
        self.entries.insert(
            key.clone(),
            IndexEntry {
                key: key.clone(),
                benchmark: result.config.benchmark.clone(),
                node: result.config.node.label().to_owned(),
                target_core: result.config.target_core,
                seed: result.config.seed,
            },
        );
        self.stats.writes += 1;
        counter!("store.writes", 1);
        Ok(())
    }

    /// Atomically rewrites `index.json` from the in-memory entry map.
    pub fn flush(&self) -> Result<(), StoreError> {
        let index = StoreIndex {
            schema_version: STORE_SCHEMA_VERSION,
            entries: self.entries.values().cloned().collect(),
        };
        let path = self.root.join(INDEX_FILE);
        write_json_atomic(&path, &index).map_err(|e| StoreError::io(&path, e))
    }

    /// The counters accumulated since [`ResultStore::open`].
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    fn note_miss(&mut self) {
        self.stats.misses += 1;
        counter!("store.misses", 1);
    }

    fn quarantine(&mut self, key: &ContentKey, path: &Path) {
        let dest = self.root.join(QUARANTINE_DIR).join(format!("{key}.json"));
        // Best-effort: if the rename fails the object stays where it is and
        // keeps failing verification, which is safe (it is never served).
        let _ = fs::rename(path, &dest);
        self.entries.remove(key);
        self.stats.quarantined += 1;
        counter!("store.quarantined", 1);
    }
}

/// The key set of a previous sweep, used by delta mode: only keys in the
/// basis may be served from the store; everything else re-simulates even
/// if some other sweep happens to have stored it.
#[derive(Debug, Clone, Default)]
pub struct DeltaBasis {
    keys: BTreeSet<ContentKey>,
}

impl DeltaBasis {
    /// Loads a basis from a previous sweep's `index.json` (or a directory
    /// containing one). Unlike a store's own index, a delta basis must
    /// parse: silently treating a corrupt basis as empty would turn delta
    /// mode into a full re-simulation without telling the caller.
    pub fn from_index_file(path: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let mut path = path.into();
        if path.is_dir() {
            path = path.join(INDEX_FILE);
        }
        let text = fs::read_to_string(&path).map_err(|e| StoreError::io(&path, e))?;
        let index = serde_json::from_str::<StoreIndex>(&text).map_err(|e| StoreError::Parse {
            path: path.clone(),
            detail: e.to_string(),
        })?;
        if index.schema_version != STORE_SCHEMA_VERSION {
            return Err(StoreError::Parse {
                path,
                detail: format!(
                    "basis schema version {} does not match current {}",
                    index.schema_version, STORE_SCHEMA_VERSION
                ),
            });
        }
        Ok(DeltaBasis {
            keys: index.entries.into_iter().map(|e| e.key).collect(),
        })
    }

    /// A basis over an explicit key set.
    pub fn from_keys(keys: impl IntoIterator<Item = ContentKey>) -> Self {
        DeltaBasis {
            keys: keys.into_iter().collect(),
        }
    }

    /// Whether `key` was part of the previous sweep.
    pub fn contains(&self, key: &ContentKey) -> bool {
        self.keys.contains(key)
    }

    /// Number of keys in the basis.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the basis is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hotgauge-store-{tag}-{}-{:p}",
            std::process::id(),
            &tag
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn stats_hit_rate_and_merge() {
        let mut a = StoreStats {
            hits: 3,
            misses: 1,
            writes: 1,
            quarantined: 0,
        };
        assert_eq!(a.lookups(), 4);
        assert!((a.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(StoreStats::default().hit_rate(), 1.0);
        let b = StoreStats {
            hits: 1,
            misses: 3,
            writes: 3,
            quarantined: 2,
        };
        a.merge(b);
        assert_eq!(
            a,
            StoreStats {
                hits: 4,
                misses: 4,
                writes: 4,
                quarantined: 2
            }
        );
        let manifest = a.to_manifest();
        assert_eq!(manifest.hits, 4);
        assert!((manifest.hit_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn open_on_missing_root_creates_layout() {
        let root = scratch_dir("layout");
        let store = ResultStore::open(&root).unwrap();
        assert!(store.is_empty());
        assert!(root.join(OBJECTS_DIR).is_dir());
        assert!(root.join(QUARANTINE_DIR).is_dir());
        store.flush().unwrap();
        assert!(root.join(INDEX_FILE).is_file());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_index_opens_empty() {
        let root = scratch_dir("badindex");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join(INDEX_FILE), "{ not json").unwrap();
        let store = ResultStore::open(&root).unwrap();
        assert!(store.is_empty());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn delta_basis_rejects_corrupt_index() {
        let root = scratch_dir("badbasis");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join(INDEX_FILE), "{ not json").unwrap();
        assert!(matches!(
            DeltaBasis::from_index_file(&root),
            Err(StoreError::Parse { .. })
        ));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_object_counts_as_miss() {
        let root = scratch_dir("miss");
        let mut store = ResultStore::open(&root).unwrap();
        let key = crate::key::key_of_value(&serde::Value::Null);
        assert!(store.get(&key).is_none());
        assert_eq!(store.stats().misses, 1);
        assert_eq!(store.stats().hits, 0);
        let _ = fs::remove_dir_all(&root);
    }
}
