//! **Content-addressed result store and resident sweep service.**
//!
//! HotGauge's figure grids are wide sweeps of deterministic co-simulation
//! runs that get re-executed every time a config evolves. This crate turns
//! the batch executor into an incremental system: every completed
//! [`hotgauge_core::pipeline::RunResult`] is persisted into a snapshot
//! store addressed by a stable content key of its *effective* simulation
//! input — the [`SimConfig`](hotgauge_core::pipeline::SimConfig) after the
//! sweep executor's serial-forcing rule, plus the resolved workload profile
//! (the seed rides inside the config). Re-running a sweep then serves
//! unchanged runs from disk bit-identically and simulates only the rest.
//!
//! The layers, bottom up:
//!
//! * [`key`] — canonical JSON serialization (sorted object keys, normalized
//!   numbers) hashed with 128-bit FNV-1a into a [`ContentKey`]. Keys are
//!   pure functions of the value tree: invariant under field reordering and
//!   re-serialization, stable across processes and machines.
//! * [`snapshot`] — the schema-versioned on-disk object
//!   ([`snapshot::StoredRun`]) wrapping one run result.
//! * [`store`] — [`store::ResultStore`]: an `objects/<key>.json` tree plus
//!   an atomic `index.json`. Writes go through temp-file+rename; reads
//!   verify schema, address, and content key, quarantining (never serving)
//!   anything torn or stale. [`store::DeltaBasis`] captures a previous
//!   sweep's key set for delta mode.
//! * [`sweep`] — [`sweep::run_many_stored_with`]: the work-stealing
//!   executor with a store in front. Hits stream straight from disk,
//!   misses run through `hotgauge_core::run_many_batched_with` unchanged,
//!   so results are bit-identical to a storeless sweep in either case.
//! * [`service`] — the NDJSON request/row protocol behind `hotgauge serve`
//!   and `hotgauge sweep`: one independently parseable, schema-tagged JSON
//!   line per completed run.
//!
//! Telemetry: `store.hits` / `store.misses` / `store.writes` /
//! `store.quarantined` count lookups and persists (the `store.` counter
//! namespace belongs to this crate alone).
//!
//! The correctness contract — store-served results bit-identical to fresh
//! simulation, keys stable across processes, delta mode never serving a
//! stale row after any config/profile/seed mutation — is pinned by
//! `tests/store_roundtrip.rs`, `tests/sweep_delta.rs`, and the store
//! dimension of `tests/sweep_equivalence.rs`.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::io;
use std::path::PathBuf;

pub mod key;
pub mod service;
pub mod snapshot;
pub mod store;
pub mod sweep;

pub use crate::key::{canonical_string, key_of_value, run_key, ContentKey, KEY_DOMAIN};
pub use crate::service::{
    request_config, rows_for_outcome, run_requests, serve, write_row_line, ServeOptions,
    ServeSummary, SweepRequest, SweepRow, ROW_SCHEMA_VERSION,
};
pub use crate::snapshot::{StoredRun, STORE_SCHEMA_VERSION};
pub use crate::store::{DeltaBasis, IndexEntry, ResultStore, StoreIndex, StoreStats};
pub use crate::sweep::{
    run_many_keyed_with, run_many_stored_with, sweep_key, RunSource, SweepOutcome,
};

/// Errors surfaced by the store and service layers.
///
/// Corruption of individual snapshot objects is *not* an error: torn or
/// stale objects are quarantined and re-simulated (fail-safe). `StoreError`
/// covers the cases that cannot be healed by re-simulation — unusable store
/// roots, unwritable snapshots, malformed requests.
#[derive(Debug)]
pub enum StoreError {
    /// A filesystem operation on the store failed.
    Io {
        /// The path the operation touched.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A document that must parse (e.g. a delta-basis index) did not.
    Parse {
        /// The path of the document.
        path: PathBuf,
        /// What went wrong.
        detail: String,
    },
    /// A sweep/service request was malformed.
    InvalidRequest(String),
    /// An internal invariant broke; indicates a bug, not bad input.
    Internal(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store io error at {}: {source}", path.display())
            }
            StoreError::Parse { path, detail } => {
                write!(f, "cannot parse {}: {detail}", path.display())
            }
            StoreError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            StoreError::Internal(msg) => write!(f, "internal store invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StoreError {
    pub(crate) fn io(path: impl Into<PathBuf>, source: io::Error) -> Self {
        StoreError::Io {
            path: path.into(),
            source,
        }
    }
}
