//! The schema-versioned on-disk snapshot wrapping one run result.

use hotgauge_core::pipeline::RunResult;
use serde::{Deserialize, Serialize, Value};

use crate::key::ContentKey;

/// Version stamped into every stored object; bump on breaking changes to
/// the snapshot layout *or* to any serialized type inside [`RunResult`].
/// A mismatched version is treated like corruption: quarantine and
/// re-simulate, never deserialize across versions.
pub const STORE_SCHEMA_VERSION: u32 = 1;

/// One persisted run: the object behind `objects/<key>.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StoredRun {
    /// Snapshot schema version ([`STORE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The content address this object was stored under; re-verified
    /// against both the file name and the result's recomputed key on read.
    pub key: ContentKey,
    /// The simulation output, bit-preserved through JSON.
    pub result: RunResult,
}

/// The serialized form of a [`StoredRun`] without cloning the result:
/// field names and order must match the derive on [`StoredRun`] (the
/// roundtrip test in `tests/store_roundtrip.rs` pins the equivalence).
pub fn stored_value(key: &ContentKey, result: &RunResult) -> Value {
    Value::Map(vec![
        (
            "schema_version".to_owned(),
            Value::U64(u64::from(STORE_SCHEMA_VERSION)),
        ),
        ("key".to_owned(), key.to_value()),
        ("result".to_owned(), serde_json::to_value(result)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotgauge_core::pipeline::{run_sim, SimConfig};
    use hotgauge_floorplan::tech::TechNode;

    #[test]
    fn stored_value_matches_derived_serialization() {
        let mut cfg = SimConfig::new(TechNode::N7, "hmmer");
        cfg.cell_um = 420.0;
        cfg.sample_instrs = 6_000;
        cfg.max_time_s = 3e-4;
        let result = run_sim(cfg);
        let key = crate::key::run_key(&result.config);
        let direct = stored_value(&key, &result);
        let derived = StoredRun {
            schema_version: STORE_SCHEMA_VERSION,
            key,
            result,
        };
        assert_eq!(
            serde_json::to_string(&direct).unwrap(),
            serde_json::to_string(&derived).unwrap()
        );
    }
}
