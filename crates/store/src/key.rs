//! Stable content keys over canonical JSON.
//!
//! A [`ContentKey`] addresses one simulation run: it is the 128-bit FNV-1a
//! hash of the *canonical string* of a JSON value tree built from the key
//! domain tag, the effective [`SimConfig`], and the resolved workload
//! profile. Canonicalization makes the key a pure function of the value —
//! not of field order, serialization style, or process:
//!
//! * object keys are sorted lexicographically (the vendored `serde` `Value`
//!   preserves insertion order, so two trees describing the same object can
//!   differ in entry order);
//! * numbers are written in a normalized form: integers as integer text,
//!   finite floats via Rust's shortest-roundtrip `Display` with `-0.0`
//!   folded to `0`, non-finite floats as `null`. This makes the canonical
//!   text *idempotent under re-parse*: the vendored JSON parser reads `"5"`
//!   back as an integer and `"-0"` as `0`, and both re-render to the same
//!   canonical text that produced them;
//! * strings are escaped deterministically.
//!
//! The [`KEY_DOMAIN`] tag is hashed into every key. Bump it whenever the
//! key derivation itself changes meaning (new fields sourced from outside
//! the config, a different profile fingerprint); every old key then misses
//! and the store re-simulates rather than serving stale rows.

use std::fmt;
use std::fmt::Write as _;

use hotgauge_core::pipeline::SimConfig;
use serde::{Deserialize, Serialize, Value};

/// Domain/version tag mixed into every key. Bumping it invalidates every
/// previously stored key (forcing re-simulation, never wrong results).
pub const KEY_DOMAIN: &str = "hotgauge.store.key.v1";

/// Hex width of a key: 128 FNV-1a bits.
pub const KEY_HEX_LEN: usize = 32;

/// A 128-bit content address, stored as 32 lowercase hex characters.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContentKey(String);

impl ContentKey {
    /// The lowercase hex form.
    pub fn as_hex(&self) -> &str {
        &self.0
    }

    /// Parses a hex key, validating shape (32 lowercase hex chars).
    pub fn from_hex(s: &str) -> Result<Self, crate::StoreError> {
        let ok = s.len() == KEY_HEX_LEN
            && s.bytes()
                .all(|b| b.is_ascii_hexdigit() && !b.is_ascii_uppercase());
        if ok {
            Ok(ContentKey(s.to_owned()))
        } else {
            Err(crate::StoreError::InvalidRequest(format!(
                "malformed content key `{s}` (expected {KEY_HEX_LEN} lowercase hex chars)"
            )))
        }
    }
}

impl fmt::Display for ContentKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Serialize for ContentKey {
    fn to_value(&self) -> Value {
        Value::Str(self.0.clone())
    }
}

impl Deserialize for ContentKey {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::custom("expected content-key string"))?;
        ContentKey::from_hex(s).map_err(serde::Error::custom)
    }
}

/// The content key of a run: hashes the key domain, the config (which
/// carries the seed), and the resolved workload profile. Callers that sweep
/// through the pooled executor must pass the *effective* config — after the
/// serial-forcing rule — so the key addresses exactly what a fresh sweep
/// would produce (see [`crate::sweep::run_many_stored_with`]).
pub fn run_key(cfg: &SimConfig) -> ContentKey {
    let payload = Value::Map(vec![
        ("domain".to_owned(), Value::Str(KEY_DOMAIN.to_owned())),
        ("config".to_owned(), serde_json::to_value(cfg)),
        ("profile".to_owned(), profile_value(&cfg.benchmark)),
    ]);
    key_of_value(&payload)
}

/// The resolved workload profile of `benchmark` as a value tree, or `null`
/// for names the workload layer cannot resolve (such runs fail validation
/// long before reaching the store, but the key stays total).
pub fn profile_value(benchmark: &str) -> Value {
    match hotgauge_workloads::benchmark_profile(benchmark) {
        Some(profile) => serde_json::to_value(&profile),
        None => Value::Null,
    }
}

/// Hashes any value tree into a [`ContentKey`] via its canonical string.
pub fn key_of_value(v: &Value) -> ContentKey {
    ContentKey(format!(
        "{:032x}",
        fnv1a_128(canonical_string(v).as_bytes())
    ))
}

/// The canonical (compact, key-sorted, number-normalized) JSON text of a
/// value tree; see the module docs for the normalization rules.
pub fn canonical_string(v: &Value) -> String {
    let mut out = String::new();
    write_canonical(v, &mut out);
    out
}

fn write_canonical(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(i) => {
            let _ = write!(out, "{i}");
        }
        Value::U64(u) => {
            let _ = write!(out, "{u}");
        }
        Value::F64(x) => write_canonical_f64(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canonical(item, out);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            let mut sorted: Vec<&(String, Value)> = entries.iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            out.push('{');
            for (i, (k, val)) in sorted.into_iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_canonical(val, out);
            }
            out.push('}');
        }
    }
}

/// Normalized float text: non-finite folds to `null` (matching the JSON
/// writer, which cannot represent it), `-0.0` folds to `0`, and everything
/// else uses Rust's shortest-roundtrip `Display` — which prints integral
/// floats as integer text, exactly what the parser hands back for them.
fn write_canonical_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == 0.0 {
        out.push('0');
    } else {
        let _ = write!(out, "{x}");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// 128-bit FNV-1a. Dependency-free, byte-order independent, and identical
/// on every platform/process — the properties a content address needs; the
/// store is not a security boundary, so a non-cryptographic hash is fine.
fn fnv1a_128(bytes: &[u8]) -> u128 {
    const OFFSET_BASIS: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;
    let mut hash = OFFSET_BASIS;
    for &b in bytes {
        hash ^= u128::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotgauge_floorplan::tech::TechNode;

    #[test]
    fn canonical_sorts_keys_and_recurses() {
        let v = Value::Map(vec![
            ("z".to_owned(), Value::U64(1)),
            (
                "a".to_owned(),
                Value::Map(vec![
                    ("y".to_owned(), Value::Bool(true)),
                    ("x".to_owned(), Value::Null),
                ]),
            ),
        ]);
        assert_eq!(canonical_string(&v), r#"{"a":{"x":null,"y":true},"z":1}"#);
    }

    #[test]
    fn canonical_number_normalization() {
        assert_eq!(canonical_string(&Value::F64(-0.0)), "0");
        assert_eq!(canonical_string(&Value::F64(5.0)), "5");
        assert_eq!(canonical_string(&Value::F64(f64::NAN)), "null");
        assert_eq!(canonical_string(&Value::F64(0.001)), "0.001");
        assert_eq!(canonical_string(&Value::I64(-3)), "-3");
        assert_eq!(canonical_string(&Value::U64(3)), "3");
    }

    #[test]
    fn canonical_text_is_idempotent_under_reparse() {
        let v = Value::Map(vec![
            ("f".to_owned(), Value::F64(5.0)),
            ("z".to_owned(), Value::F64(-0.0)),
            ("s".to_owned(), Value::Str("a\"b\\c\n".to_owned())),
            ("small".to_owned(), Value::F64(1.25e-4)),
        ]);
        let text = canonical_string(&v);
        let reparsed: Value = serde_json::from_str(&text).unwrap();
        assert_eq!(canonical_string(&reparsed), text);
        assert_eq!(key_of_value(&reparsed), key_of_value(&v));
    }

    #[test]
    fn map_order_never_changes_the_key() {
        let fwd = Value::Map(vec![
            ("a".to_owned(), Value::U64(1)),
            ("b".to_owned(), Value::Str("x".to_owned())),
        ]);
        let rev = Value::Map(vec![
            ("b".to_owned(), Value::Str("x".to_owned())),
            ("a".to_owned(), Value::U64(1)),
        ]);
        assert_eq!(key_of_value(&fwd), key_of_value(&rev));
    }

    #[test]
    fn run_key_separates_config_and_seed_mutations() {
        let base = SimConfig::new(TechNode::N7, "hmmer");
        let k0 = run_key(&base);
        let mut seeded = base.clone();
        seeded.seed = 17;
        let mut other_bench = base.clone();
        other_bench.benchmark = "povray".to_owned();
        let mut other_node = base.clone();
        other_node.node = TechNode::N10;
        let keys = [
            k0.clone(),
            run_key(&seeded),
            run_key(&other_bench),
            run_key(&other_node),
        ];
        for (i, a) in keys.iter().enumerate() {
            for b in keys.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
        assert_eq!(run_key(&base), k0, "keys are deterministic");
    }

    #[test]
    fn content_key_hex_round_trips() {
        let k = key_of_value(&Value::Null);
        assert_eq!(k.as_hex().len(), KEY_HEX_LEN);
        let back = ContentKey::from_hex(k.as_hex()).unwrap();
        assert_eq!(back, k);
        assert!(ContentKey::from_hex("nope").is_err());
        assert!(ContentKey::from_hex(&k.as_hex().to_uppercase()).is_err());
    }
}
