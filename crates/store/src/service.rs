//! The NDJSON request/row protocol behind `hotgauge serve` and
//! `hotgauge sweep`.
//!
//! Requests arrive one JSON object per line ([`SweepRequest`]); a blank
//! line (or end of input) flushes the accumulated requests as one job
//! batch through the store-aware executor, and each completed run is
//! emitted as one [`SweepRow`] — an independently parseable,
//! schema-version-tagged JSON line. Rows are written (and the writer
//! flushed) per batch, so a downstream consumer can stream results while
//! the service keeps accepting work. Malformed request lines produce an
//! `{"schema_version":1,"error":"..."}` line and do not abort the
//! session; errors that make the *store* unusable do.

use std::io::{BufRead, Write};

use hotgauge_core::experiments::Fidelity;
use hotgauge_core::pipeline::SimConfig;
use hotgauge_floorplan::tech::TechNode;
use hotgauge_thermal::warmup::Warmup;
use serde::{Deserialize, Serialize};

use crate::key::ContentKey;
use crate::store::{DeltaBasis, ResultStore, StoreStats};
use crate::sweep::{run_many_keyed_with, run_many_stored_with, SweepOutcome};
use crate::StoreError;

/// Version stamped into every emitted row (and error line); bump on
/// breaking row-schema changes.
pub const ROW_SCHEMA_VERSION: u32 = 1;

/// Seconds per millisecond, for the request's `ms` horizon field.
const SECONDS_PER_MS: f64 = 1e-3;

/// The Skylake proxy floorplan has 7 cores (`target_core` ∈ 0..7).
const CORES: usize = 7;

/// One sweep request line: which run to (re)simulate or serve.
///
/// Every field except `benchmark` is optional and defaults to the
/// service's base configuration (N7, core 0, idle warmup, fidelity-preset
/// horizon).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepRequest {
    /// Benchmark name (SPEC2006 proxy, server workload, or `"idle"`).
    pub benchmark: String,
    /// Technology node label (`"14nm"`/`"10"`/`"7nm"`/`"5"`); default 7 nm.
    pub node: Option<String>,
    /// Target core (0-based); default 0.
    pub core: Option<usize>,
    /// Workload RNG seed; default 0.
    pub seed: Option<u64>,
    /// Cold start instead of the default idle warmup.
    pub cold: Option<bool>,
    /// Simulated-time horizon in milliseconds; default from the fidelity.
    pub ms: Option<f64>,
    /// Uniform IC area factor (§V-B mitigation); default 1.0.
    pub ic_area: Option<f64>,
    /// Stop at the first hotspot (TUH studies); default false.
    pub stop_at_first_hotspot: Option<bool>,
}

/// One result line: a completed run's summary, tagged with its content
/// key and provenance (`"sim"` or `"store"`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRow {
    /// Row schema version ([`ROW_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// 1-based position within the batch.
    pub seq: usize,
    /// Number of rows in the batch.
    pub total: usize,
    /// Content key of the run.
    pub key: ContentKey,
    /// `"sim"` (freshly simulated) or `"store"` (served from disk).
    pub source: String,
    /// Benchmark name.
    pub benchmark: String,
    /// Technology node label.
    pub node: String,
    /// Target core.
    pub target_core: usize,
    /// Workload RNG seed.
    pub seed: u64,
    /// Time until the first hotspot, seconds (absent if none occurred).
    pub tuh_s: Option<f64>,
    /// Peak severity over the run.
    pub peak_severity: f64,
    /// RMS of the peak-severity series.
    pub rms_severity: f64,
    /// Instructions represented by the run.
    pub total_instructions: u64,
}

/// Execution knobs for [`serve`] and the batch sweep path.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Fidelity preset applied to every request's base config.
    pub fidelity: Fidelity,
    /// Sweep thread budget (`0` = hardware threads).
    pub threads: usize,
    /// Lockstep batch width for the executor.
    pub batch: usize,
}

impl ServeOptions {
    /// Options from a fidelity preset, inheriting its thread/batch knobs.
    pub fn from_fidelity(fidelity: Fidelity) -> Self {
        ServeOptions {
            threads: fidelity.threads,
            batch: fidelity.batch,
            fidelity,
        }
    }
}

/// What one [`serve`] session processed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Request batches executed.
    pub batches: usize,
    /// Result rows emitted (excluding error lines).
    pub rows: usize,
    /// Request lines rejected as malformed.
    pub rejected: usize,
    /// Store counters accumulated across the session.
    pub stats: StoreStats,
}

/// Builds the effective [`SimConfig`] for one request under `fid`,
/// validating every field the simulator would otherwise panic on.
pub fn request_config(req: &SweepRequest, fid: &Fidelity) -> Result<SimConfig, StoreError> {
    if hotgauge_workloads::benchmark_profile(&req.benchmark).is_none() {
        return Err(StoreError::InvalidRequest(format!(
            "unknown benchmark `{}`",
            req.benchmark
        )));
    }
    let node = match &req.node {
        None => TechNode::N7,
        Some(s) => parse_node(s).ok_or_else(|| {
            StoreError::InvalidRequest(format!("unknown node `{s}` (want 14/10/7/5[nm])"))
        })?,
    };
    let core = req.core.unwrap_or(0);
    if core >= CORES {
        return Err(StoreError::InvalidRequest(format!(
            "target core {core} out of range (floorplan has {CORES} cores)"
        )));
    }
    if let Some(ms) = req.ms {
        if !(ms.is_finite() && ms > 0.0) {
            return Err(StoreError::InvalidRequest(format!(
                "horizon ms={ms} must be a positive finite number"
            )));
        }
    }
    if let Some(f) = req.ic_area {
        if !(f.is_finite() && f >= 1.0) {
            return Err(StoreError::InvalidRequest(format!(
                "ic_area={f} must be a finite factor >= 1.0"
            )));
        }
    }
    let mut cfg = fid.apply(SimConfig::new(node, req.benchmark.clone()));
    cfg.target_core = core;
    cfg.seed = req.seed.unwrap_or(0);
    if req.cold.unwrap_or(false) {
        cfg.warmup = Warmup::Cold;
    }
    if let Some(ms) = req.ms {
        cfg.max_time_s = ms * SECONDS_PER_MS;
    }
    if let Some(f) = req.ic_area {
        cfg.ic_area_factor = f;
    }
    cfg.stop_at_first_hotspot = req.stop_at_first_hotspot.unwrap_or(false);
    Ok(cfg)
}

fn parse_node(s: &str) -> Option<TechNode> {
    match s.strip_suffix("nm").unwrap_or(s) {
        "14" => Some(TechNode::N14),
        "10" => Some(TechNode::N10),
        "7" => Some(TechNode::N7),
        "5" => Some(TechNode::N5),
        _ => None,
    }
}

/// The result rows of one executed batch, in input order.
pub fn rows_for_outcome(outcome: &SweepOutcome) -> Vec<SweepRow> {
    let total = outcome.results.len();
    outcome
        .results
        .iter()
        .enumerate()
        .map(|(i, r)| SweepRow {
            schema_version: ROW_SCHEMA_VERSION,
            seq: i + 1,
            total,
            key: outcome.keys[i].clone(),
            source: outcome.sources[i].label().to_owned(),
            benchmark: r.config.benchmark.clone(),
            node: r.config.node.label().to_owned(),
            target_core: r.config.target_core,
            seed: r.config.seed,
            tuh_s: r.tuh_s,
            peak_severity: r.peak_severity(),
            rms_severity: r.rms_severity(),
            total_instructions: r.total_instructions,
        })
        .collect()
}

/// Runs one batch of requests through the executor — with the store in
/// front when one is given — and returns the outcome.
pub fn run_requests(
    requests: &[SweepRequest],
    opts: &ServeOptions,
    store: Option<&mut ResultStore>,
    delta: Option<&DeltaBasis>,
) -> Result<SweepOutcome, StoreError> {
    let mut cfgs = Vec::with_capacity(requests.len());
    for req in requests {
        cfgs.push(request_config(req, &opts.fidelity)?);
    }
    match store {
        Some(store) => run_many_stored_with(cfgs, opts.threads, opts.batch, store, delta, None),
        None => Ok(run_many_keyed_with(cfgs, opts.threads, opts.batch, None)),
    }
}

/// The resident service loop: reads request lines from `input`, executes
/// them batch-by-batch (a blank line or EOF flushes the pending batch),
/// and writes one row line per completed run to `out`.
///
/// Malformed request lines are answered with an error line and skipped;
/// store-level failures (unwritable snapshots, invalid delta basis)
/// abort the session with an error.
pub fn serve<R: BufRead, W: Write>(
    input: R,
    mut out: W,
    store: &mut ResultStore,
    opts: &ServeOptions,
    delta: Option<&DeltaBasis>,
) -> Result<ServeSummary, StoreError> {
    let mut summary = ServeSummary::default();
    let mut pending: Vec<SweepRequest> = Vec::new();
    let stdin_path = || std::path::PathBuf::from("<input>");
    let mut lines = input.lines();
    loop {
        let line = match lines.next() {
            Some(Ok(line)) => Some(line),
            Some(Err(e)) => return Err(StoreError::io(stdin_path(), e)),
            None => None,
        };
        let flush = match &line {
            Some(l) if l.trim().is_empty() => true,
            None => true,
            Some(l) => {
                match serde_json::from_str::<SweepRequest>(l) {
                    Ok(req) => pending.push(req),
                    Err(e) => {
                        summary.rejected += 1;
                        emit_error_line(&mut out, &format!("bad request: {e}"))?;
                    }
                }
                false
            }
        };
        if flush && !pending.is_empty() {
            let batch: Vec<SweepRequest> = std::mem::take(&mut pending);
            match run_requests(&batch, opts, Some(store), delta) {
                Ok(outcome) => {
                    for row in rows_for_outcome(&outcome) {
                        write_row_line(&mut out, &row)?;
                    }
                    summary.batches += 1;
                    summary.rows += outcome.results.len();
                    summary.stats.merge(outcome.stats);
                    out.flush().map_err(|e| StoreError::io(stdin_path(), e))?;
                }
                Err(StoreError::InvalidRequest(msg)) => {
                    // A bad request inside a batch rejects the batch but
                    // keeps the session alive.
                    summary.rejected += batch.len();
                    emit_error_line(&mut out, &msg)?;
                }
                Err(e) => return Err(e),
            }
        }
        if line.is_none() {
            break;
        }
    }
    out.flush().map_err(|e| StoreError::io(stdin_path(), e))?;
    Ok(summary)
}

/// Writes one row as a single compact JSON line.
pub fn write_row_line<W: Write>(out: &mut W, row: &SweepRow) -> Result<(), StoreError> {
    let text = serde_json::to_string(row)
        .map_err(|_| StoreError::Internal("a sweep row failed to serialize"))?;
    writeln!(out, "{text}").map_err(|e| StoreError::io("<output>", e))
}

fn emit_error_line<W: Write>(out: &mut W, msg: &str) -> Result<(), StoreError> {
    let line = serde::Value::Map(vec![
        (
            "schema_version".to_owned(),
            serde::Value::U64(u64::from(ROW_SCHEMA_VERSION)),
        ),
        ("error".to_owned(), serde::Value::Str(msg.to_owned())),
    ]);
    let text = serde_json::to_string(&line)
        .map_err(|_| StoreError::Internal("an error line failed to serialize"))?;
    writeln!(out, "{text}").map_err(|e| StoreError::io("<output>", e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_config_applies_every_field() {
        let fid = Fidelity::fast();
        let req = SweepRequest {
            benchmark: "hmmer".to_owned(),
            node: Some("10nm".to_owned()),
            core: Some(3),
            seed: Some(42),
            cold: Some(true),
            ms: Some(0.5),
            ic_area: Some(1.5),
            stop_at_first_hotspot: Some(true),
        };
        let cfg = request_config(&req, &fid).unwrap();
        assert_eq!(cfg.node, TechNode::N10);
        assert_eq!(cfg.target_core, 3);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.warmup, Warmup::Cold);
        assert!((cfg.max_time_s - 5e-4).abs() < 1e-15);
        assert!((cfg.ic_area_factor - 1.5).abs() < 1e-15);
        assert!(cfg.stop_at_first_hotspot);
        assert_eq!(cfg.cell_um, fid.cell_um);
    }

    #[test]
    fn request_config_rejects_bad_fields() {
        let fid = Fidelity::fast();
        let mut req = SweepRequest {
            benchmark: "not-a-benchmark".to_owned(),
            ..SweepRequest::default()
        };
        assert!(request_config(&req, &fid).is_err());
        req.benchmark = "hmmer".to_owned();
        req.node = Some("3nm".to_owned());
        assert!(request_config(&req, &fid).is_err());
        req.node = None;
        req.core = Some(CORES);
        assert!(request_config(&req, &fid).is_err());
        req.core = None;
        req.ms = Some(-1.0);
        assert!(request_config(&req, &fid).is_err());
        req.ms = None;
        req.ic_area = Some(0.5);
        assert!(request_config(&req, &fid).is_err());
        req.ic_area = None;
        assert!(request_config(&req, &fid).is_ok());
    }

    #[test]
    fn request_lines_round_trip() {
        let line = r#"{"benchmark":"hmmer","node":"7nm","seed":7}"#;
        let req: SweepRequest = serde_json::from_str(line).unwrap();
        assert_eq!(req.benchmark, "hmmer");
        assert_eq!(req.seed, Some(7));
        assert_eq!(req.core, None);
    }
}
