//! McPAT-style per-unit power model with sub-22 nm technology scaling —
//! the power stage of the HotGauge perf-power-therm co-simulation.
//!
//! * [`units`] — per-unit `C_dyn` budgets and activity→utilization mapping;
//! * [`leakage`] — exponential temperature-dependent leakage (the
//!   thermal→power feedback);
//! * [`model`] — the chip-level [`model::PowerModel`] evaluated every time
//!   step at unit granularity;
//! * [`validation`] — Table III silicon `C_dyn` references and error math.
//!
//! Technology scaling follows the paper's McPAT extensions: 50 % area and
//! −20 % `C_dyn` per node (via [`hotgauge_floorplan::tech::TechNode`]), at
//! the 5 GHz / 1.4 V turbo operating point.
//!
//! # Examples
//!
//! ```
//! use hotgauge_floorplan::prelude::*;
//! use hotgauge_perf::activity::ActivityCounters;
//! use hotgauge_power::prelude::*;
//!
//! let fp = SkylakeProxy::new(TechNode::N7).build();
//! let model = PowerModel::new(&fp, TechNode::N7, PowerParams::default());
//!
//! let act = ActivityCounters { cycles: 1_000_000, instructions: 2_000_000,
//!     simple_alu_ops: 1_000_000, ..Default::default() };
//! let mut cores = vec![CoreWindow::Parked; 7];
//! cores[0] = CoreWindow::Active { activity: &act, duty: 1.0 };
//! let power = model.evaluate(&cores, &vec![60.0; fp.units.len()]);
//! assert!(power.total_w() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod leakage;
pub mod model;
pub mod units;
pub mod validation;

pub use crate::leakage::LeakageParams;
pub use crate::model::{
    CoreWindow, PowerBreakdown, PowerModel, PowerParams, CORE_CDYN_TOTAL_14NM_NF,
};
pub use crate::units::{cdyn_max_nf, unit_utilization, CLOCK_FLOOR};
pub use crate::validation::{
    mean_abs_percent_error, silicon_cdyn, CdynValidationRow, SiliconCdyn, TABLE3_PAPER_MODEL_14NM,
    TABLE3_SILICON,
};

/// Convenient glob import of the most used types.
pub mod prelude {
    pub use crate::leakage::LeakageParams;
    pub use crate::model::{CoreWindow, PowerBreakdown, PowerModel, PowerParams};
    pub use crate::validation::{
        mean_abs_percent_error, silicon_cdyn, CdynValidationRow, TABLE3_SILICON,
    };
}
