//! Per-unit dynamic-power descriptors: maximum effective switching
//! capacitance (`C_dyn`) budgets and activity→utilization mapping.
//!
//! `C_dyn` budgets are expressed at 14 nm in nanofarads at full utilization;
//! the node scaling rule (−20 % per generation, §III-B) is applied by the
//! power model. The split across units follows McPAT-style structure-level
//! modeling calibrated so the *effective* single-core `C_dyn` of the
//! validation benchmarks lands near Table III's model column
//! (1.30–1.65 nF at 14 nm).

use hotgauge_floorplan::unit::UnitKind;
use hotgauge_perf::activity::ActivityCounters;

/// Maximum (utilization = 1) effective switching capacitance of each core
/// unit at 14 nm, nanofarads.
pub fn cdyn_max_nf(kind: UnitKind) -> f64 {
    match kind {
        UnitKind::Fetch => 0.05,
        UnitKind::Bpu => 0.07,
        UnitKind::L1I => 0.14,
        UnitKind::Decode => 0.18,
        UnitKind::IntRat => 0.18,
        UnitKind::FpRat => 0.13,
        UnitKind::Rob => 0.30,
        UnitKind::RetireOther => 0.08,
        UnitKind::IntIWin => 0.24,
        UnitKind::FpIWin => 0.22,
        UnitKind::IntRf => 0.28,
        UnitKind::FpRf => 0.33,
        UnitKind::SimpleAlu => 0.22,
        UnitKind::CAlu => 0.18,
        UnitKind::Agu => 0.09,
        UnitKind::Fpu => 0.28,
        UnitKind::Avx512 => 0.40,
        UnitKind::L1D => 0.16,
        UnitKind::Lsq => 0.10,
        UnitKind::Mmu => 0.07,
        UnitKind::L2 => 0.16,
        UnitKind::CoreOther => 0.13,
        // Uncore (per instance).
        UnitKind::L3Slice => 0.50,
        UnitKind::SystemAgent => 0.40,
        UnitKind::Imc => 0.30,
        UnitKind::Io => 0.20,
    }
}

/// Fraction of a unit's `C_dyn` that switches every cycle the core is
/// clocked, regardless of utilization (clock tree, control, sequential
/// overhead). McPAT models this as the constant "clocked" component; it is
/// why a stalled-but-running core still measures a substantial `C_dyn`
/// (e.g. omnetpp in Table III).
pub const CLOCK_FLOOR: f64 = 0.25;

/// Relative clock-grid load density of a unit kind, used when the pooled
/// per-core clock power is redistributed over area. SRAM arrays (the L1/L2
/// data arrays) are bank-gated and carry far less clock load per mm² than
/// random logic.
pub fn clock_density_factor(kind: UnitKind) -> f64 {
    match kind {
        UnitKind::L1I | UnitKind::L1D | UnitKind::L2 => 0.3,
        _ => 1.0,
    }
}

/// Utilization of a core unit over a window, in `[0, 1]`, from the interval
/// model's activity counters. `peak` values are the per-cycle event
/// capacities of the Skylake-proxy pipeline.
pub fn unit_utilization(kind: UnitKind, a: &ActivityCounters) -> f64 {
    let cycles = a.cycles.max(1) as f64;
    let r = |events: u64, peak: f64| (events as f64 / cycles / peak).clamp(0.0, 1.0);
    match kind {
        UnitKind::Fetch => r(a.l1i_accesses, 1.0),
        UnitKind::Bpu => r(a.bpu_lookups, 1.0),
        UnitKind::L1I => r(a.l1i_accesses, 1.0),
        UnitKind::Decode => r(a.decoded_uops, 4.0),
        UnitKind::IntRat => r(a.int_rat_writes, 4.0),
        UnitKind::FpRat => r(a.fp_rat_writes, 4.0),
        UnitKind::Rob => r(a.rob_dispatches + a.rob_retires, 8.0),
        UnitKind::RetireOther => r(a.rob_retires, 4.0),
        UnitKind::IntIWin => r(a.int_iwin_issues, 4.0),
        UnitKind::FpIWin => r(a.fp_iwin_issues, 3.0),
        UnitKind::IntRf => r(a.int_rf_reads + a.int_rf_writes, 8.0),
        UnitKind::FpRf => r(a.fp_rf_reads + a.fp_rf_writes, 6.0),
        UnitKind::SimpleAlu => r(a.simple_alu_ops, 3.0),
        UnitKind::CAlu => r(a.complex_alu_ops, 1.0),
        UnitKind::Agu => r(a.agu_ops, 2.0),
        UnitKind::Fpu => r(a.fpu_ops, 2.0),
        UnitKind::Avx512 => r(a.avx_ops, 1.0),
        UnitKind::L1D => r(a.l1d_accesses, 2.0),
        UnitKind::Lsq => r(a.lsq_ops, 2.0),
        UnitKind::Mmu => r(a.dtlb_accesses, 2.0),
        UnitKind::L2 => r(a.l2_accesses, 0.25),
        UnitKind::CoreOther => r(a.instructions, 4.0),
        // Uncore utilizations are computed from aggregate traffic by the
        // model; treat per-core counters as inapplicable here.
        UnitKind::L3Slice => r(a.l3_accesses, 0.25),
        UnitKind::SystemAgent => r(a.dram_accesses, 0.10),
        UnitKind::Imc => r(a.dram_accesses, 0.10),
        UnitKind::Io => 0.05,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_core_cdyn_budget_is_plausible() {
        // Full-utilization core C_dyn should be a few nF so that effective
        // values land in Table III's 1.3–1.65 nF range at realistic
        // utilizations.
        let total: f64 = UnitKind::CORE_KINDS.iter().map(|&k| cdyn_max_nf(k)).sum();
        assert!(
            (3.0..5.0).contains(&total),
            "total core C_dyn budget {total} nF out of expected range"
        );
    }

    #[test]
    fn avx_has_largest_execution_budget() {
        // The 512-bit datapath dominates execution-stack switching capacitance.
        for k in [
            UnitKind::SimpleAlu,
            UnitKind::CAlu,
            UnitKind::Fpu,
            UnitKind::IntRf,
            UnitKind::FpRf,
        ] {
            assert!(cdyn_max_nf(UnitKind::Avx512) > cdyn_max_nf(k));
        }
    }

    #[test]
    fn utilization_is_clamped() {
        let a = ActivityCounters {
            cycles: 10,
            simple_alu_ops: 1_000_000,
            ..Default::default()
        };
        assert_eq!(unit_utilization(UnitKind::SimpleAlu, &a), 1.0);
    }

    #[test]
    fn zero_activity_gives_zero_utilization() {
        let a = ActivityCounters {
            cycles: 1000,
            ..Default::default()
        };
        for k in UnitKind::CORE_KINDS {
            if k == UnitKind::Io {
                continue;
            }
            assert_eq!(unit_utilization(k, &a), 0.0, "{k:?}");
        }
    }

    #[test]
    fn busier_window_means_higher_utilization() {
        let lo = ActivityCounters {
            cycles: 1000,
            fpu_ops: 100,
            ..Default::default()
        };
        let hi = ActivityCounters {
            cycles: 1000,
            fpu_ops: 900,
            ..Default::default()
        };
        assert!(unit_utilization(UnitKind::Fpu, &hi) > unit_utilization(UnitKind::Fpu, &lo));
    }
}
