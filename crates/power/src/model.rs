//! The per-unit power model: activity + temperature → watts per floorplan
//! unit (the McPAT stand-in, run "in the highest granularity setting at each
//! time step", §III-B).

use hotgauge_floorplan::floorplan::Floorplan;
use hotgauge_floorplan::skylake::{CORE_AREA_14NM_MM2, CORE_UNIT_WEIGHTS};
use hotgauge_floorplan::tech::TechNode;
use hotgauge_floorplan::unit::UnitKind;
use hotgauge_perf::activity::ActivityCounters;
use serde::{Deserialize, Serialize};

use crate::leakage::LeakageParams;
use crate::units::{cdyn_max_nf, clock_density_factor, unit_utilization, CLOCK_FLOOR};

/// Total full-utilization core `C_dyn` at 14 nm, nF. The per-unit weights of
/// [`cdyn_max_nf`] are normalized to this budget; its value is calibrated so
/// the validation benchmarks' effective `C_dyn` lands in Table III's model
/// range (1.30–1.65 nF).
pub const CORE_CDYN_TOTAL_14NM_NF: f64 = 4.8;

/// Operating point and model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Supply voltage, V (1.4 V = the paper's turbo operating point).
    pub vdd: f64,
    /// Clock frequency, GHz (5 GHz).
    pub freq_ghz: f64,
    /// Leakage model parameters.
    pub leakage: LeakageParams,
}

impl Default for PowerParams {
    fn default() -> Self {
        Self {
            vdd: 1.4,
            freq_ghz: 5.0,
            leakage: LeakageParams::default(),
        }
    }
}

/// One core's contribution to a power-model evaluation window.
#[derive(Debug, Clone, Copy)]
pub enum CoreWindow<'a> {
    /// Core is power-gated: no dynamic power, no clock; leakage only.
    Parked,
    /// Core ran the given activity window with the given duty cycle
    /// (fraction of the window it was clocked; 1.0 for a busy core,
    /// small for the idle/OS background task).
    Active {
        /// The window's activity counters.
        activity: &'a ActivityCounters,
        /// Clocked fraction of the window, `(0, 1]`.
        duty: f64,
    },
}

/// Power-model output for one window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Watts attributed to each floorplan unit (aligned with
    /// `Floorplan::units`) — the accounting view (a unit's own leakage,
    /// clock, and datapath energy).
    pub unit_watts: Vec<f64>,
    /// The spatially *smooth* component per unit: leakage plus the clock
    /// tree / sequential overhead, which dissipates uniformly over the
    /// unit's area.
    pub unit_watts_smooth: Vec<f64>,
    /// The spatially *peaked* component per unit: utilization-driven
    /// datapath switching, which concentrates in the unit's hot structures
    /// (ports, wakeup logic, functional datapaths). Because clock power is
    /// pooled per core and redistributed by area in the smooth channel,
    /// `smooth + peaked` matches `unit_watts` in aggregate (total power),
    /// not unit-by-unit.
    pub unit_watts_peaked: Vec<f64>,
    /// Total dynamic power, W.
    pub dynamic_w: f64,
    /// Total leakage power, W.
    pub leakage_w: f64,
    /// Per-core dynamic power, W.
    pub core_dynamic_w: Vec<f64>,
}

impl PowerBreakdown {
    /// Total chip power, W.
    pub fn total_w(&self) -> f64 {
        self.dynamic_w + self.leakage_w
    }

    /// Effective single-core `C_dyn` in nF: `P_dyn_core / (V² f)` — the
    /// voltage/frequency-invariant quantity Table III validates.
    pub fn core_cdyn_eff_nf(&self, core: usize, params: &PowerParams) -> f64 {
        self.core_dynamic_w[core] / (params.vdd * params.vdd * params.freq_ghz * 1e9) * 1e9
    }
}

#[derive(Debug, Clone)]
struct UnitEntry {
    kind: UnitKind,
    core: Option<usize>,
    /// Nominal silicon area for leakage, mm² — the *unscaled* area of the
    /// unit at this node, so that mitigation floorplans (which add white
    /// space) do not fictitiously add leaking transistors.
    nominal_area_mm2: f64,
    /// Node-scaled maximum `C_dyn`, nF.
    cdyn_max_nf: f64,
}

/// The chip-level power model, built once per (floorplan, node) pair.
#[derive(Debug, Clone)]
pub struct PowerModel {
    node: TechNode,
    params: PowerParams,
    units: Vec<UnitEntry>,
    core_count: usize,
}

impl PowerModel {
    /// Builds the model for a floorplan at the given node.
    ///
    /// The floorplan provides the unit list (order defines the output
    /// vector). Leakage areas use nominal per-kind areas, not the possibly
    /// white-space-scaled rectangles of mitigation floorplans.
    pub fn new(fp: &Floorplan, node: TechNode, params: PowerParams) -> Self {
        let weight_sum: f64 = CORE_UNIT_WEIGHTS.iter().map(|(_, w)| w).sum();
        let core_area = CORE_AREA_14NM_MM2 * node.area_scale_from_14();
        let cdyn_scale = node.cdyn_scale_from_14();
        let core_weight_total: f64 = UnitKind::CORE_KINDS.iter().map(|&k| cdyn_max_nf(k)).sum();

        let units = fp
            .units
            .iter()
            .map(|u| {
                let nominal_area_mm2 = if u.kind.is_core_unit() {
                    let w = CORE_UNIT_WEIGHTS
                        .iter()
                        .find(|(k, _)| *k == u.kind)
                        .map(|(_, w)| *w)
                        .unwrap_or(0.0);
                    core_area * w / weight_sum
                } else {
                    // Uncore blocks are already nominal in the generator; a
                    // uniformly IC-scaled floorplan slightly overstates them,
                    // which is acceptable for background leakage.
                    u.area() / 1.0
                };
                let cdyn = if u.kind.is_core_unit() {
                    cdyn_max_nf(u.kind) / core_weight_total * CORE_CDYN_TOTAL_14NM_NF * cdyn_scale
                } else {
                    cdyn_max_nf(u.kind) * cdyn_scale
                };
                UnitEntry {
                    kind: u.kind,
                    core: u.core,
                    nominal_area_mm2,
                    cdyn_max_nf: cdyn,
                }
            })
            .collect();

        Self {
            node,
            params,
            units,
            core_count: fp.core_count(),
        }
    }

    /// The model's technology node.
    pub fn node(&self) -> TechNode {
        self.node
    }

    /// The operating point.
    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Number of floorplan units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Evaluates the model for one window.
    ///
    /// * `cores[c]` describes what core `c` did during the window.
    /// * `unit_temps[i]` is the current temperature of unit `i` (°C) for the
    ///   leakage feedback; pass the ambient for a cold estimate.
    ///
    /// # Panics
    ///
    /// Panics if `cores.len()` differs from the floorplan's core count or
    /// `unit_temps.len()` from the unit count.
    pub fn evaluate(&self, cores: &[CoreWindow<'_>], unit_temps: &[f64]) -> PowerBreakdown {
        assert_eq!(cores.len(), self.core_count, "one window per core");
        assert_eq!(
            unit_temps.len(),
            self.units.len(),
            "one temperature per unit"
        );

        let v2f = self.params.vdd * self.params.vdd * self.params.freq_ghz * 1e9;

        // Aggregate uncore traffic across cores.
        let mut agg = ActivityCounters::default();
        let mut any_cycles = 0u64;
        for cw in cores {
            if let CoreWindow::Active { activity, duty } = cw {
                let _ = duty;
                agg.add(activity);
                any_cycles = any_cycles.max(activity.cycles);
            }
        }
        agg.cycles = any_cycles.max(1);

        let mut unit_watts = vec![0.0; self.units.len()];
        let mut unit_watts_smooth = vec![0.0; self.units.len()];
        let mut unit_watts_peaked = vec![0.0; self.units.len()];
        let mut dynamic_w = 0.0;
        let mut leakage_w = 0.0;
        let mut core_dynamic_w = vec![0.0; self.core_count];
        // Clock-tree power is pooled per core and redistributed uniformly
        // over the core's area below: the clock network spans the whole
        // core, so a stalled-but-clocked core heats nearly uniformly and
        // produces little MLTD — it is datapath activity that is localized.
        let mut core_clock_w = vec![0.0; self.core_count];
        // Clock-weighted area: SRAM arrays carry a reduced clock load.
        let mut core_clock_area = vec![0.0; self.core_count];
        for u in &self.units {
            if let Some(c) = u.core {
                core_clock_area[c] += u.nominal_area_mm2 * clock_density_factor(u.kind);
            }
        }

        for (i, u) in self.units.iter().enumerate() {
            // Leakage always flows (the silicon is powered even when the
            // clock is gated; parked cores keep state in this model).
            let leak = self.params.leakage.power(
                self.node,
                u.nominal_area_mm2,
                unit_temps[i],
                self.params.vdd,
            );
            let mut w = leak;
            let mut smooth = leak;
            let mut peaked = 0.0;
            leakage_w += leak;

            let dyn_w = match u.core {
                Some(c) => match cores[c] {
                    CoreWindow::Parked => 0.0,
                    CoreWindow::Active { activity, duty } => {
                        let util = unit_utilization(u.kind, activity);
                        let d = duty.clamp(0.0, 1.0);
                        let clock = u.cdyn_max_nf * 1e-9 * CLOCK_FLOOR * v2f * d;
                        let data = u.cdyn_max_nf * 1e-9 * (1.0 - CLOCK_FLOOR) * util * v2f * d;
                        core_clock_w[c] += clock;
                        peaked += data;
                        clock + data
                    }
                },
                None => {
                    // Uncore: driven by aggregate traffic; always clocked at
                    // a reduced floor. Cache banks and SoC logic are
                    // spatially uniform.
                    let util = unit_utilization(u.kind, &agg);
                    let eff = 0.15 + 0.85 * util;
                    let p = u.cdyn_max_nf * 1e-9 * eff * v2f * 0.35;
                    smooth += p;
                    p
                }
            };
            w += dyn_w;
            dynamic_w += dyn_w;
            if let Some(c) = u.core {
                core_dynamic_w[c] += dyn_w;
            }
            unit_watts[i] = w;
            unit_watts_smooth[i] = smooth;
            unit_watts_peaked[i] = peaked;
        }

        // Redistribute each core's pooled clock power over clock-weighted
        // area (uniform density across logic, reduced in SRAM arrays).
        for (i, u) in self.units.iter().enumerate() {
            if let Some(c) = u.core {
                if core_clock_area[c] > 0.0 {
                    unit_watts_smooth[i] +=
                        core_clock_w[c] * u.nominal_area_mm2 * clock_density_factor(u.kind)
                            / core_clock_area[c];
                }
            }
        }

        PowerBreakdown {
            unit_watts,
            unit_watts_smooth,
            unit_watts_peaked,
            dynamic_w,
            leakage_w,
            core_dynamic_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotgauge_floorplan::skylake::SkylakeProxy;

    fn busy_activity() -> ActivityCounters {
        ActivityCounters {
            cycles: 1_000_000,
            instructions: 2_500_000,
            l1i_accesses: 700_000,
            bpu_lookups: 400_000,
            decoded_uops: 2_500_000,
            int_rat_writes: 2_000_000,
            fp_rat_writes: 500_000,
            rob_dispatches: 2_500_000,
            rob_retires: 2_500_000,
            int_iwin_issues: 2_000_000,
            fp_iwin_issues: 500_000,
            int_rf_reads: 4_000_000,
            int_rf_writes: 1_800_000,
            fp_rf_reads: 1_000_000,
            fp_rf_writes: 500_000,
            simple_alu_ops: 1_200_000,
            complex_alu_ops: 120_000,
            agu_ops: 800_000,
            fpu_ops: 400_000,
            avx_ops: 100_000,
            l1d_accesses: 800_000,
            l1d_misses: 30_000,
            lsq_ops: 800_000,
            dtlb_accesses: 800_000,
            l2_accesses: 30_000,
            l2_misses: 8_000,
            l3_accesses: 8_000,
            l3_misses: 1_000,
            dram_accesses: 1_000,
            ..Default::default()
        }
    }

    fn model(node: TechNode) -> (PowerModel, usize) {
        let fp = SkylakeProxy::new(node).build();
        let n = fp.units.len();
        (PowerModel::new(&fp, node, PowerParams::default()), n)
    }

    fn one_busy_core(m: &PowerModel, n_units: usize, act: &ActivityCounters) -> PowerBreakdown {
        let mut cores = vec![CoreWindow::Parked; 7];
        cores[0] = CoreWindow::Active {
            activity: act,
            duty: 1.0,
        };
        m.evaluate(&cores, &vec![60.0; n_units])
    }

    #[test]
    fn busy_core_cdyn_in_table3_range() {
        let (m, n) = model(TechNode::N14);
        let act = busy_activity();
        let b = one_busy_core(&m, n, &act);
        let cdyn = b.core_cdyn_eff_nf(0, m.params());
        assert!(
            (1.0..2.6).contains(&cdyn),
            "effective core C_dyn {cdyn} nF outside plausible Table III range"
        );
    }

    #[test]
    fn cdyn_scales_08x_per_node() {
        let act = busy_activity();
        let (m14, n14) = model(TechNode::N14);
        let (m7, n7) = model(TechNode::N7);
        let c14 = one_busy_core(&m14, n14, &act).core_cdyn_eff_nf(0, m14.params());
        let c7 = one_busy_core(&m7, n7, &act).core_cdyn_eff_nf(0, m7.params());
        assert!(
            (c7 / c14 - 0.64).abs() < 0.02,
            "C_dyn should scale 0.8^2 from 14nm to 7nm: {c14} -> {c7}"
        );
    }

    #[test]
    fn power_density_increases_with_node() {
        // §II-A: density grows ~1.6x per node for the same activity.
        let act = busy_activity();
        let fp14 = SkylakeProxy::new(TechNode::N14).build();
        let fp7 = SkylakeProxy::new(TechNode::N7).build();
        let (m14, n14) = model(TechNode::N14);
        let (m7, n7) = model(TechNode::N7);
        let b14 = one_busy_core(&m14, n14, &act);
        let b7 = one_busy_core(&m7, n7, &act);
        let core_area = |fp: &Floorplan| -> f64 { fp.units_of_core(0).map(|u| u.area()).sum() };
        let d14 = b14.core_dynamic_w[0] / core_area(&fp14);
        let d7 = b7.core_dynamic_w[0] / core_area(&fp7);
        let ratio = d7 / d14;
        assert!(
            (ratio - 2.56).abs() < 0.1,
            "density scaling {ratio}, expected ~2.56"
        );
    }

    #[test]
    fn parked_cores_leak_but_do_not_switch() {
        let (m, n) = model(TechNode::N14);
        let cores = vec![CoreWindow::Parked; 7];
        let b = m.evaluate(&cores, &vec![60.0; n]);
        // Core dynamic power must vanish; the uncore stays clocked.
        let core_dyn: f64 = b.core_dynamic_w.iter().sum();
        assert!(core_dyn < 1e-9, "parked core dynamic {core_dyn}");
        assert!(b.leakage_w > 0.5, "chip must leak: {}", b.leakage_w);
    }

    #[test]
    fn leakage_grows_with_temperature() {
        let (m, n) = model(TechNode::N7);
        let cores = vec![CoreWindow::Parked; 7];
        let cold = m.evaluate(&cores, &vec![40.0; n]).leakage_w;
        let hot = m.evaluate(&cores, &vec![100.0; n]).leakage_w;
        assert!(hot > 2.0 * cold, "leakage {cold} -> {hot}");
    }

    #[test]
    fn duty_cycle_scales_dynamic_power() {
        let (m, n) = model(TechNode::N14);
        let act = busy_activity();
        let mut cores = vec![CoreWindow::Parked; 7];
        cores[0] = CoreWindow::Active {
            activity: &act,
            duty: 1.0,
        };
        let full = m.evaluate(&cores, &vec![60.0; n]).core_dynamic_w[0];
        cores[0] = CoreWindow::Active {
            activity: &act,
            duty: 0.1,
        };
        let tenth = m.evaluate(&cores, &vec![60.0; n]).core_dynamic_w[0];
        assert!((tenth / full - 0.1).abs() < 1e-9);
    }

    #[test]
    fn hot_unit_power_density_exceeds_8w_per_mm2_at_7nm() {
        // §II-A: "power density greater than 8 W/mm² running bzip2".
        let fp = SkylakeProxy::new(TechNode::N7).build();
        let m = PowerModel::new(&fp, TechNode::N7, PowerParams::default());
        let act = busy_activity();
        let mut cores = vec![CoreWindow::Parked; 7];
        cores[0] = CoreWindow::Active {
            activity: &act,
            duty: 1.0,
        };
        let b = m.evaluate(&cores, &vec![70.0; fp.units.len()]);
        let max_density = fp
            .units
            .iter()
            .zip(&b.unit_watts)
            .filter(|(u, _)| u.core == Some(0))
            .map(|(u, w)| w / u.area())
            .fold(0.0f64, f64::max);
        assert!(
            max_density > 8.0,
            "peak unit power density at 7nm should exceed 8 W/mm², got {max_density}"
        );
    }

    #[test]
    fn smooth_plus_peaked_conserves_total_power() {
        // The clock component is redistributed across each core's area, so
        // the decomposition only matches the accounting attribution in
        // aggregate — total power must be identical.
        let (m, n) = model(TechNode::N7);
        let act = busy_activity();
        let b = one_busy_core(&m, n, &act);
        let attributed: f64 = b.unit_watts.iter().sum();
        let spatial: f64 = b
            .unit_watts_smooth
            .iter()
            .zip(&b.unit_watts_peaked)
            .map(|(s, p)| s + p)
            .sum();
        assert!(
            (attributed - spatial).abs() < 1e-9 * attributed,
            "{attributed} vs {spatial}"
        );
        assert!(b.unit_watts_peaked.iter().any(|&w| w > 0.0));
    }

    #[test]
    fn clock_power_is_pooled_per_core_area() {
        // With zero utilization the peaked channel is empty and the smooth
        // dynamic power of each unit is proportional to its nominal area.
        let (m, n) = model(TechNode::N14);
        let act = ActivityCounters {
            cycles: 1_000_000,
            ..Default::default()
        };
        let fp = SkylakeProxy::new(TechNode::N14).build();
        let mut cores = vec![CoreWindow::Parked; 7];
        cores[0] = CoreWindow::Active {
            activity: &act,
            duty: 1.0,
        };
        let b = m.evaluate(&cores, &vec![60.0; n]);
        assert!(b.unit_watts_peaked.iter().all(|&w| w < 1e-12));
        // Compare smooth *density* (dynamic part) across two core-0 units.
        let leak_free = |name: &str| -> f64 {
            let i = fp.unit_index_by_name(name).unwrap();
            // Smooth = leak + clock share; subtract leak via a parked run.
            let parked = m.evaluate(&[CoreWindow::Parked; 7], &vec![60.0; n]);
            (b.unit_watts_smooth[i] - parked.unit_watts_smooth[i]) / fp.units[i].area()
        };
        let d_rf = leak_free("core0.intRF");
        let d_rob = leak_free("core0.ROB");
        let d_l2 = leak_free("core0.L2");
        assert!(
            (d_rf - d_rob).abs() < 0.05 * d_rob.max(1e-12),
            "clock density should be uniform across logic: {d_rf} vs {d_rob}"
        );
        assert!(
            d_l2 < 0.5 * d_rf,
            "SRAM clock density should be reduced: L2 {d_l2} vs RF {d_rf}"
        );
    }

    #[test]
    fn unit_watts_sum_matches_totals() {
        let (m, n) = model(TechNode::N10);
        let act = busy_activity();
        let b = one_busy_core(&m, n, &act);
        let sum: f64 = b.unit_watts.iter().sum();
        assert!((sum - b.total_w()).abs() < 1e-9 * sum);
    }
}
