//! Table III validation data: measured single-core `C_dyn` of real Intel
//! silicon, and the error computation against the model.
//!
//! The paper measured an Intel Core i5-10310U (14 nm mobile) and an
//! i7-1165G7 (10 nm SuperFin) with the Intel Thermal Analysis Tool, isolating
//! leakage and computing `C_dyn = P / (V² f)`, which is invariant to voltage
//! and frequency. We cannot measure silicon here, so the published
//! measurements are embedded as the reference and our model plays the role
//! of the paper's McPAT-based model column.

use hotgauge_floorplan::tech::TechNode;
use serde::{Deserialize, Serialize};

/// Measured silicon `C_dyn` values from Table III, nanofarads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiliconCdyn {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// 14 nm part (i5-10310U), nF.
    pub si_14nm_nf: f64,
    /// 10 nm part (i7-1165G7), nF.
    pub si_10nm_nf: f64,
}

/// The Table III validation set.
pub const TABLE3_SILICON: [SiliconCdyn; 5] = [
    SiliconCdyn {
        benchmark: "bzip2",
        si_14nm_nf: 1.33,
        si_10nm_nf: 1.32,
    },
    SiliconCdyn {
        benchmark: "gcc",
        si_14nm_nf: 1.51,
        si_10nm_nf: 1.80,
    },
    SiliconCdyn {
        benchmark: "omnetpp",
        si_14nm_nf: 1.16,
        si_10nm_nf: 0.99,
    },
    SiliconCdyn {
        benchmark: "povray",
        si_14nm_nf: 1.87,
        si_10nm_nf: 1.87,
    },
    SiliconCdyn {
        benchmark: "hmmer",
        si_14nm_nf: 1.52,
        si_10nm_nf: 1.49,
    },
];

/// The paper's own model column of Table III (nF), used as a secondary
/// reference to check that this reproduction's model lands in the same
/// region as the authors' calibrated McPAT.
pub const TABLE3_PAPER_MODEL_14NM: [(&str, f64); 5] = [
    ("bzip2", 1.36),
    ("gcc", 1.30),
    ("omnetpp", 1.33),
    ("povray", 1.62),
    ("hmmer", 1.65),
];

/// Reference silicon `C_dyn` for `benchmark` at `node`, if it is part of the
/// validation set (only 14 nm and 10 nm were measured).
pub fn silicon_cdyn(benchmark: &str, node: TechNode) -> Option<f64> {
    let row = TABLE3_SILICON.iter().find(|r| r.benchmark == benchmark)?;
    match node {
        TechNode::N14 => Some(row.si_14nm_nf),
        TechNode::N10 => Some(row.si_10nm_nf),
        _ => None,
    }
}

/// One row of a reproduced Table III.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CdynValidationRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Technology node.
    pub node: TechNode,
    /// Measured silicon reference, nF.
    pub silicon_nf: f64,
    /// This model's value, nF.
    pub model_nf: f64,
}

impl CdynValidationRow {
    /// Signed percent error of the model against silicon.
    pub fn percent_error(&self) -> f64 {
        100.0 * (self.model_nf - self.silicon_nf) / self.silicon_nf
    }
}

/// Mean absolute percent error over a set of validation rows.
pub fn mean_abs_percent_error(rows: &[CdynValidationRow]) -> f64 {
    if rows.is_empty() {
        return 0.0;
    }
    rows.iter().map(|r| r.percent_error().abs()).sum::<f64>() / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_data_is_complete() {
        assert_eq!(TABLE3_SILICON.len(), 5);
        for r in &TABLE3_SILICON {
            assert!(r.si_14nm_nf > 0.5 && r.si_14nm_nf < 3.0);
            assert!(r.si_10nm_nf > 0.5 && r.si_10nm_nf < 3.0);
        }
    }

    #[test]
    fn lookup_by_node() {
        assert_eq!(silicon_cdyn("bzip2", TechNode::N14), Some(1.33));
        assert_eq!(silicon_cdyn("bzip2", TechNode::N10), Some(1.32));
        assert_eq!(silicon_cdyn("bzip2", TechNode::N7), None);
        assert_eq!(silicon_cdyn("doom", TechNode::N14), None);
    }

    #[test]
    fn percent_error_sign() {
        let row = CdynValidationRow {
            benchmark: "bzip2".into(),
            node: TechNode::N14,
            silicon_nf: 1.33,
            model_nf: 1.36,
        };
        assert!(row.percent_error() > 0.0);
        assert!((row.percent_error() - 2.2556).abs() < 0.01);
    }

    #[test]
    fn paper_errors_reproduce_from_paper_model_column() {
        // Sanity: applying our error formula to the paper's own model values
        // reproduces the paper's reported ~11% average for 14 nm.
        let rows: Vec<CdynValidationRow> = TABLE3_PAPER_MODEL_14NM
            .iter()
            .map(|(b, m)| CdynValidationRow {
                benchmark: (*b).into(),
                node: TechNode::N14,
                silicon_nf: silicon_cdyn(b, TechNode::N14).unwrap(),
                model_nf: *m,
            })
            .collect();
        let mape = mean_abs_percent_error(&rows);
        assert!(
            (mape - 11.0).abs() < 1.5,
            "14nm MAPE {mape}, paper says 11%"
        );
    }
}
