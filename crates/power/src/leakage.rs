//! Temperature-dependent leakage power.
//!
//! Leakage is modeled per unit as
//! `P_leak(T) = ρ_leak(node) · A_unit · (V/V_ref) · e^{β (T − T_ref)}`,
//! the standard exponential subthreshold model. This is the coupling that
//! makes the perf-power-thermal loop *bidirectional*: "the thermal state of
//! the chip will impact the performance and power of the system, e.g.,
//! increased temperature will increase leakage power" (§II-C).

use hotgauge_floorplan::tech::TechNode;
use serde::{Deserialize, Serialize};

/// Parameters of the exponential leakage model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeakageParams {
    /// Leakage power density at `t_ref_c` and `v_ref`, W/mm², for 14 nm.
    pub density_14nm_w_per_mm2: f64,
    /// Exponential temperature coefficient, 1/K (≈ 2× every ~28 °C).
    pub beta_per_k: f64,
    /// Reference temperature, °C.
    pub t_ref_c: f64,
    /// Reference supply voltage, V.
    pub v_ref: f64,
    /// Leakage-density growth per technology generation (thinner oxides and
    /// tighter pitches raise W/mm² even as total area halves).
    pub density_scale_per_node: f64,
}

impl Default for LeakageParams {
    fn default() -> Self {
        Self {
            density_14nm_w_per_mm2: 0.15,
            beta_per_k: 0.025,
            t_ref_c: 60.0,
            v_ref: 1.4,
            density_scale_per_node: 1.25,
        }
    }
}

impl LeakageParams {
    /// Leakage density at the given node and reference conditions, W/mm².
    pub fn density(&self, node: TechNode) -> f64 {
        self.density_14nm_w_per_mm2
            * self
                .density_scale_per_node
                .powi(node.generations_from_14() as i32)
    }

    /// Leakage power of a block of `area_mm2` at temperature `t_c` and
    /// supply `vdd`, W.
    pub fn power(&self, node: TechNode, area_mm2: f64, t_c: f64, vdd: f64) -> f64 {
        self.density(node)
            * area_mm2
            * (vdd / self.v_ref)
            * ((t_c - self.t_ref_c) * self.beta_per_k).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_doubles_about_every_28c() {
        let p = LeakageParams::default();
        let a = p.power(TechNode::N14, 1.0, 60.0, 1.4);
        let b = p.power(TechNode::N14, 1.0, 60.0 + (2.0f64).ln() / 0.025, 1.4);
        assert!((b / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn density_grows_per_node_but_block_leakage_shrinks() {
        let p = LeakageParams::default();
        // Same logical block: area halves per node, density grows 1.25x, so
        // absolute leakage of the block decreases.
        let l14 = p.power(TechNode::N14, 1.0, 60.0, 1.4);
        let l7 = p.power(TechNode::N7, 0.25, 60.0, 1.4);
        assert!(l7 < l14);
        assert!(p.density(TechNode::N7) > p.density(TechNode::N14));
    }

    #[test]
    fn voltage_scales_linearly() {
        let p = LeakageParams::default();
        let hi = p.power(TechNode::N14, 1.0, 60.0, 1.4);
        let lo = p.power(TechNode::N14, 1.0, 60.0, 0.7);
        assert!((hi / lo - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reference_point_equals_density_times_area() {
        let p = LeakageParams::default();
        let w = p.power(TechNode::N14, 2.0, 60.0, 1.4);
        assert!((w - 0.3).abs() < 1e-12);
    }
}
