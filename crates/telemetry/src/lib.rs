//! Observability for the HotGauge co-simulation: timing spans, domain
//! counters, run manifests, and progress reporting.
//!
//! # Spans and counters
//!
//! Instrumentation sites use [`span!`] and [`counter!`]:
//!
//! ```
//! # use hotgauge_telemetry::{span, counter};
//! {
//!     let _span = span!("thermal.step");
//!     // ... timed work ...
//!     counter!("thermal.cg_iterations", 42u64);
//! }
//! ```
//!
//! With the `telemetry` cargo feature enabled, each site pushes an event onto
//! a bounded channel drained by a background aggregator thread; the hot path
//! never blocks (a full channel increments a drop counter instead). Without
//! the feature both macros compile to no-ops: no timer reads, no thread, no
//! allocation — simulation results are byte-identical.
//!
//! [`snapshot`] flushes the aggregator and returns per-label statistics
//! (calls, total, min, max, and derived average / share-of-total).
//!
//! # Run manifests
//!
//! [`manifest::RunManifest`] is the schema-versioned JSON document the CLI
//! and experiment binaries emit under `--json <path>`; it is written
//! atomically (temp file + rename) by [`manifest::write_json_atomic`].
//! Field order is deterministic: struct fields serialize in declaration
//! order and config maps are sorted by key.
//!
//! # Progress
//!
//! [`progress::ProgressPrinter`] is a throttled stderr reporter used by the
//! long-running sweep binaries for liveness.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod manifest;
pub mod progress;

use std::collections::BTreeMap;

/// Aggregated timing statistics for one span label.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// The `span!` label.
    pub label: String,
    /// How many spans closed under this label.
    pub calls: u64,
    /// Summed wall time in nanoseconds.
    pub total_ns: u64,
    /// Shortest single span in nanoseconds.
    pub min_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

impl SpanStats {
    /// Mean nanoseconds per call.
    pub fn avg_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64
        }
    }
}

/// Aggregated statistics for one counter label.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterStats {
    /// The `counter!` label.
    pub label: String,
    /// How many values were recorded.
    pub calls: u64,
    /// Sum of recorded values.
    pub total: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
}

impl CounterStats {
    /// Mean recorded value.
    pub fn avg(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total / self.calls as f64
        }
    }
}

/// A consistent view of everything recorded so far (labels sorted).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Per-label span timings.
    pub spans: Vec<SpanStats>,
    /// Per-label counter statistics.
    pub counters: Vec<CounterStats>,
    /// Events discarded because the channel was full.
    pub dropped_events: u64,
}

impl Snapshot {
    /// Sum of all span time, the denominator for [`Snapshot::span_share`].
    pub fn total_span_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.total_ns).sum()
    }

    /// Fraction of all recorded span time spent under `label` (0 when
    /// nothing has been recorded).
    pub fn span_share(&self, label: &str) -> f64 {
        let denom = self.total_span_ns();
        if denom == 0 {
            return 0.0;
        }
        self.spans
            .iter()
            .find(|s| s.label == label)
            .map_or(0.0, |s| s.total_ns as f64 / denom as f64)
    }

    /// The counter stats recorded under `label`, if any.
    pub fn counter(&self, label: &str) -> Option<&CounterStats> {
        self.counters.iter().find(|c| c.label == label)
    }

    /// The span stats recorded under `label`, if any.
    pub fn span(&self, label: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|s| s.label == label)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }
}

#[cfg(feature = "telemetry")]
mod recorder {
    use super::{CounterStats, Snapshot, SpanStats};
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
    use std::sync::OnceLock;
    use std::time::Duration;

    /// Bounded queue depth between instrumentation sites and the aggregator.
    const CHANNEL_DEPTH: usize = 65_536;

    pub(crate) enum Event {
        Span {
            label: &'static str,
            nanos: u64,
        },
        Counter {
            label: &'static str,
            value: f64,
        },
        /// Drain request: reply with the aggregate built so far.
        Flush(SyncSender<Snapshot>),
        /// Clear all aggregates (used between measurement phases).
        Reset,
    }

    pub(crate) struct Recorder {
        tx: SyncSender<Event>,
        dropped: AtomicU64,
    }

    static RECORDER: OnceLock<Recorder> = OnceLock::new();

    pub(crate) fn global() -> &'static Recorder {
        RECORDER.get_or_init(|| {
            let (tx, rx) = sync_channel(CHANNEL_DEPTH);
            std::thread::Builder::new()
                .name("hotgauge-telemetry".into())
                .spawn(move || aggregate(rx))
                // hotgauge-lint: allow(L001, "spawn failure at process start means the OS is out of threads; there is no meaningful degraded mode for the aggregator")
                .expect("failed to spawn telemetry aggregator thread");
            Recorder {
                tx,
                dropped: AtomicU64::new(0),
            }
        })
    }

    impl Recorder {
        /// Never blocks: a full channel drops the event and counts the drop.
        pub(crate) fn send(&self, event: Event) {
            if self.tx.try_send(event).is_err() {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }

        pub(crate) fn snapshot(&self) -> Snapshot {
            let (reply_tx, reply_rx) = sync_channel(1);
            // Flush must not be droppable or the reply would never come;
            // block here (off the hot path) until there is room.
            if self.tx.send(Event::Flush(reply_tx)).is_err() {
                return Snapshot::default();
            }
            let mut snap = reply_rx
                .recv_timeout(Duration::from_secs(5))
                .unwrap_or_default();
            snap.dropped_events = self.dropped.load(Ordering::Relaxed);
            snap
        }
    }

    #[derive(Default)]
    struct Agg {
        calls: u64,
        total: f64,
        min: f64,
        max: f64,
    }

    impl Agg {
        fn record(&mut self, v: f64) {
            if self.calls == 0 {
                self.min = v;
                self.max = v;
            } else {
                self.min = self.min.min(v);
                self.max = self.max.max(v);
            }
            self.calls += 1;
            self.total += v;
        }
    }

    fn aggregate(rx: Receiver<Event>) {
        let mut spans: BTreeMap<&'static str, Agg> = BTreeMap::new();
        let mut counters: BTreeMap<&'static str, Agg> = BTreeMap::new();
        while let Ok(event) = rx.recv() {
            match event {
                Event::Span { label, nanos } => {
                    spans.entry(label).or_default().record(nanos as f64)
                }
                Event::Counter { label, value } => counters.entry(label).or_default().record(value),
                Event::Flush(reply) => {
                    let snap = Snapshot {
                        spans: spans
                            .iter()
                            .map(|(label, a)| SpanStats {
                                label: (*label).to_string(),
                                calls: a.calls,
                                total_ns: a.total as u64,
                                min_ns: a.min as u64,
                                max_ns: a.max as u64,
                            })
                            .collect(),
                        counters: counters
                            .iter()
                            .map(|(label, a)| CounterStats {
                                label: (*label).to_string(),
                                calls: a.calls,
                                total: a.total,
                                min: a.min,
                                max: a.max,
                            })
                            .collect(),
                        dropped_events: 0,
                    };
                    let _ = reply.send(snap);
                }
                Event::Reset => {
                    spans.clear();
                    counters.clear();
                }
            }
        }
    }
}

/// RAII timer recording a span on drop. Construct through [`span!`].
#[cfg(feature = "telemetry")]
#[must_use = "a span measures the time until it is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    label: &'static str,
    start: std::time::Instant,
}

#[cfg(feature = "telemetry")]
impl SpanGuard {
    /// Starts a monotonic timer for `label`.
    #[inline]
    pub fn enter(label: &'static str) -> Self {
        Self {
            label,
            start: std::time::Instant::now(),
        }
    }
}

#[cfg(feature = "telemetry")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        recorder::global().send(recorder::Event::Span {
            label: self.label,
            nanos,
        });
    }
}

/// No-op stand-in when the `telemetry` feature is disabled.
#[cfg(not(feature = "telemetry"))]
#[must_use = "a span measures the time until it is dropped"]
#[derive(Debug)]
pub struct SpanGuard;

#[cfg(not(feature = "telemetry"))]
impl SpanGuard {
    /// Does nothing; compiles away entirely.
    #[inline(always)]
    pub fn enter(_label: &'static str) -> Self {
        SpanGuard
    }
}

/// Records one counter observation. Prefer the [`counter!`] macro.
#[cfg(feature = "telemetry")]
#[inline]
pub fn record_counter(label: &'static str, value: f64) {
    recorder::global().send(recorder::Event::Counter { label, value });
}

/// No-op stand-in when the `telemetry` feature is disabled.
#[cfg(not(feature = "telemetry"))]
#[inline(always)]
pub fn record_counter(_label: &'static str, _value: f64) {}

/// Flushes the aggregator and returns everything recorded so far.
///
/// Without the `telemetry` feature this returns an empty [`Snapshot`].
#[cfg(feature = "telemetry")]
pub fn snapshot() -> Snapshot {
    recorder::global().snapshot()
}

/// Flushes the aggregator and returns everything recorded so far.
///
/// Without the `telemetry` feature this returns an empty [`Snapshot`].
#[cfg(not(feature = "telemetry"))]
pub fn snapshot() -> Snapshot {
    Snapshot::default()
}

/// Clears all aggregated spans and counters (measurement-phase boundary).
#[cfg(feature = "telemetry")]
pub fn reset() {
    recorder::global().send(recorder::Event::Reset);
}

/// Clears all aggregated spans and counters (measurement-phase boundary).
#[cfg(not(feature = "telemetry"))]
pub fn reset() {}

/// Times the enclosing scope under a static label.
#[macro_export]
macro_rules! span {
    ($label:expr) => {
        $crate::SpanGuard::enter($label)
    };
}

/// Records a numeric observation under a static label.
#[macro_export]
macro_rules! counter {
    ($label:expr, $value:expr) => {
        $crate::record_counter($label, ($value) as f64)
    };
}

/// Runs the enclosed statements only when the `telemetry` feature is on.
///
/// This is the facade for telemetry-only *computation* (deriving a value
/// that only feeds a [`counter!`]): call sites never spell the cfg gate
/// themselves (hotgauge-lint rule L002), so the feature name and the
/// zero-cost-when-off guarantee stay centralized here.
#[cfg(feature = "telemetry")]
#[macro_export]
macro_rules! if_telemetry {
    ($($body:tt)*) => {
        { $($body)* }
    };
}

/// Runs the enclosed statements only when the `telemetry` feature is on.
///
/// Without the feature the body is dropped at token level: it is never
/// type-checked, so telemetry-only bindings compile away entirely.
#[cfg(not(feature = "telemetry"))]
#[macro_export]
macro_rules! if_telemetry {
    ($($body:tt)*) => {};
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.3}s", ns / 1e9)
    }
}

fn fmt_count(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Renders a [`Snapshot`] as the human-readable timing/counter table.
pub fn render_table(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.spans.is_empty() {
        let denom = snap.total_span_ns().max(1) as f64;
        out.push_str(&format!(
            "{:<28} {:>9} {:>10} {:>10} {:>10} {:>10} {:>7}\n",
            "span", "calls", "total", "avg", "min", "max", "share"
        ));
        for s in &snap.spans {
            out.push_str(&format!(
                "{:<28} {:>9} {:>10} {:>10} {:>10} {:>10} {:>6.1}%\n",
                s.label,
                s.calls,
                fmt_ns(s.total_ns as f64),
                fmt_ns(s.avg_ns()),
                fmt_ns(s.min_ns as f64),
                fmt_ns(s.max_ns as f64),
                100.0 * s.total_ns as f64 / denom,
            ));
        }
    }
    if !snap.counters.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "{:<28} {:>9} {:>12} {:>12} {:>12} {:>12}\n",
            "counter", "calls", "total", "avg", "min", "max"
        ));
        for c in &snap.counters {
            out.push_str(&format!(
                "{:<28} {:>9} {:>12} {:>12} {:>12} {:>12}\n",
                c.label,
                c.calls,
                fmt_count(c.total),
                fmt_count(c.avg()),
                fmt_count(c.min),
                fmt_count(c.max),
            ));
        }
    }
    if snap.dropped_events > 0 {
        out.push_str(&format!(
            "({} events dropped: channel was full)\n",
            snap.dropped_events
        ));
    }
    out
}

/// Prints the telemetry table to stderr when dropped (typically at the end
/// of `main`). Does nothing when nothing was recorded or when quieted.
#[derive(Debug)]
pub struct TelemetryReport {
    title: String,
    quiet: bool,
}

impl TelemetryReport {
    /// A report labelled `title`, printed at drop.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            quiet: false,
        }
    }

    /// Suppresses the printed table (the snapshot stays available).
    pub fn quiet(mut self, quiet: bool) -> Self {
        self.quiet = quiet;
        self
    }
}

impl Drop for TelemetryReport {
    fn drop(&mut self) {
        if self.quiet {
            return;
        }
        let snap = snapshot();
        if snap.is_empty() {
            return;
        }
        eprintln!("\n== telemetry: {} ==", self.title);
        eprint!("{}", render_table(&snap));
    }
}

/// Key-sorted string map used for manifest config blocks.
pub type ConfigMap = BTreeMap<String, String>;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            spans: vec![
                SpanStats {
                    label: "perf".into(),
                    calls: 10,
                    total_ns: 3_000,
                    min_ns: 100,
                    max_ns: 500,
                },
                SpanStats {
                    label: "thermal".into(),
                    calls: 10,
                    total_ns: 7_000,
                    min_ns: 400,
                    max_ns: 900,
                },
            ],
            counters: vec![CounterStats {
                label: "thermal.cg_iterations".into(),
                calls: 4,
                total: 100.0,
                min: 10.0,
                max: 40.0,
            }],
            dropped_events: 0,
        }
    }

    #[test]
    fn share_of_total_partitions_unity() {
        let snap = sample_snapshot();
        assert!((snap.span_share("perf") - 0.3).abs() < 1e-12);
        assert!((snap.span_share("thermal") - 0.7).abs() < 1e-12);
        let sum: f64 = snap.spans.iter().map(|s| snap.span_share(&s.label)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(snap.span_share("missing"), 0.0);
        assert_eq!(Snapshot::default().span_share("perf"), 0.0);
    }

    #[test]
    fn stats_derive_avg() {
        let snap = sample_snapshot();
        assert!((snap.span("perf").unwrap().avg_ns() - 300.0).abs() < 1e-12);
        let c = snap.counter("thermal.cg_iterations").unwrap();
        assert!((c.avg() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn table_renders_all_labels() {
        let table = render_table(&sample_snapshot());
        assert!(table.contains("perf"));
        assert!(table.contains("thermal"));
        assert!(table.contains("thermal.cg_iterations"));
        assert!(table.contains("30.0%"));
        assert!(table.contains("70.0%"));
        assert!(render_table(&Snapshot::default()).is_empty());
    }

    // Exercises the real channel + aggregator thread path.
    #[cfg(feature = "telemetry")]
    #[test]
    fn concurrent_spans_are_all_counted() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 200;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for i in 0..PER_THREAD {
                        let _g = span!("test.concurrent");
                        counter!("test.concurrent_counter", i);
                    }
                });
            }
        });
        let snap = snapshot();
        let span = snap.span("test.concurrent").expect("span recorded");
        assert_eq!(span.calls, THREADS * PER_THREAD);
        assert!(span.min_ns <= span.max_ns);
        assert!(span.total_ns >= span.max_ns);
        let c = snap.counter("test.concurrent_counter").expect("counter");
        assert_eq!(c.calls, THREADS * PER_THREAD);
        assert_eq!(c.min, 0.0);
        assert_eq!(c.max, (PER_THREAD - 1) as f64);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn counter_aggregates_min_max_total() {
        counter!("test.minmax", 5u64);
        counter!("test.minmax", 1u64);
        counter!("test.minmax", 9u64);
        let c = snapshot();
        let c = c.counter("test.minmax").expect("counter");
        assert_eq!(c.calls, 3);
        assert_eq!(c.total, 15.0);
        assert_eq!(c.min, 1.0);
        assert_eq!(c.max, 9.0);
    }

    // With the feature disabled the macros must still compile and record
    // nothing; this is the no-op path used by default builds.
    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn disabled_feature_is_a_noop() {
        {
            let _g = span!("test.noop");
            counter!("test.noop_counter", 123u64);
        }
        let snap = snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.dropped_events, 0);
        reset(); // also a no-op
    }
}
