//! Observability for the HotGauge co-simulation: timing spans with latency
//! percentiles and allocation attribution, domain counters, run manifests,
//! and progress reporting.
//!
//! # Spans and counters
//!
//! Instrumentation sites use [`span!`] and [`counter!`]:
//!
//! ```
//! # use hotgauge_telemetry::{span, counter};
//! {
//!     let _span = span!("thermal.step");
//!     // ... timed work ...
//!     counter!("thermal.cg_iterations", 42u64);
//! }
//! ```
//!
//! With the `telemetry` cargo feature enabled, each site pushes an event onto
//! a bounded channel drained by a background aggregator thread; the hot path
//! never blocks (a full channel increments a drop counter instead). The
//! aggregator keeps a fixed-size log-bucketed [`hist::LatencyHistogram`] per
//! span label, so [`snapshot`] reports p50/p90/p99 alongside the totals. A
//! counting global allocator (see [`alloc_track`]) attributes heap
//! allocations to the enclosing span, thread-locally. Without the feature
//! both macros compile to no-ops: no timer reads, no thread, no allocator
//! override — simulation results are byte-identical.
//!
//! [`snapshot`] flushes the aggregator and returns per-label statistics
//! (calls, total, min, max, percentiles, allocation counts, and derived
//! average / share-of-total). If any events were dropped under backpressure
//! the snapshot says so **loudly**: a warning is printed to stderr and the
//! count lands in the `telemetry.dropped` manifest field.
//!
//! # Run manifests
//!
//! [`manifest::RunManifest`] is the schema-versioned JSON document the CLI
//! and experiment binaries emit under `--json <path>`; it is written
//! atomically (temp file + rename) by [`manifest::write_json_atomic`].
//! Field order is deterministic: struct fields serialize in declaration
//! order and config maps are sorted by key. Schema v2 adds per-stage
//! percentiles and allocation counts; v1 documents still deserialize (the
//! added fields default to `None`).
//!
//! # Progress
//!
//! [`progress::ProgressPrinter`] is a throttled stderr reporter used by the
//! long-running sweep binaries for liveness.

// The counting allocator (telemetry feature only) needs `unsafe impl
// GlobalAlloc`; everything else stays forbidden, and the default build
// carries no unsafe at all.
#![cfg_attr(not(feature = "telemetry"), forbid(unsafe_code))]
#![cfg_attr(feature = "telemetry", deny(unsafe_code))]
#![warn(missing_debug_implementations)]

#[cfg(feature = "telemetry")]
pub mod alloc_track;
pub mod hist;
pub mod manifest;
pub mod progress;

use std::collections::BTreeMap;

/// Aggregated timing statistics for one span label.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStats {
    /// The `span!` label.
    pub label: String,
    /// How many spans closed under this label.
    pub calls: u64,
    /// Summed wall time in nanoseconds.
    pub total_ns: u64,
    /// Shortest single span in nanoseconds.
    pub min_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
    /// Median single-span latency (log-bucketed, ~3% quantization).
    pub p50_ns: u64,
    /// 90th-percentile single-span latency.
    pub p90_ns: u64,
    /// 99th-percentile single-span latency.
    pub p99_ns: u64,
    /// Heap allocations performed on the recording thread while the span
    /// was open (0 without the counting allocator).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

impl SpanStats {
    /// Mean nanoseconds per call.
    pub fn avg_ns(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.calls as f64
        }
    }
}

/// Aggregated statistics for one counter label.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterStats {
    /// The `counter!` label.
    pub label: String,
    /// How many values were recorded.
    pub calls: u64,
    /// Sum of recorded values.
    pub total: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
}

impl CounterStats {
    /// Mean recorded value.
    pub fn avg(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.total / self.calls as f64
        }
    }
}

/// A consistent view of everything recorded so far (labels sorted).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Per-label span timings.
    pub spans: Vec<SpanStats>,
    /// Per-label counter statistics.
    pub counters: Vec<CounterStats>,
    /// Events discarded because the channel was full.
    pub dropped_events: u64,
}

impl Snapshot {
    /// Sum of all span time, the denominator for [`Snapshot::span_share`].
    pub fn total_span_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.total_ns).sum()
    }

    /// Fraction of all recorded span time spent under `label` (0 when
    /// nothing has been recorded).
    pub fn span_share(&self, label: &str) -> f64 {
        let denom = self.total_span_ns();
        if denom == 0 {
            return 0.0;
        }
        self.spans
            .iter()
            .find(|s| s.label == label)
            .map_or(0.0, |s| s.total_ns as f64 / denom as f64)
    }

    /// The counter stats recorded under `label`, if any.
    pub fn counter(&self, label: &str) -> Option<&CounterStats> {
        self.counters.iter().find(|c| c.label == label)
    }

    /// The span stats recorded under `label`, if any.
    pub fn span(&self, label: &str) -> Option<&SpanStats> {
        self.spans.iter().find(|s| s.label == label)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty()
    }
}

#[cfg(feature = "telemetry")]
mod recorder {
    use super::hist::LatencyHistogram;
    use super::{CounterStats, Snapshot, SpanStats};
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
    use std::sync::OnceLock;
    use std::time::Duration;

    /// Default bounded queue depth between instrumentation sites and the
    /// aggregator. Overridable through `HOTGAUGE_TELEMETRY_CHANNEL_DEPTH`
    /// (the backpressure tests shrink it to saturate deterministically).
    const CHANNEL_DEPTH: usize = 65_536;

    pub(crate) enum Event {
        Span {
            label: &'static str,
            nanos: u64,
            allocs: u64,
            alloc_bytes: u64,
        },
        Counter {
            label: &'static str,
            value: f64,
        },
        /// Drain request: reply with the aggregate built so far.
        Flush(SyncSender<Snapshot>),
        /// Clear all aggregates (used between measurement phases).
        Reset,
        /// Test hook: park the aggregator so the channel can fill.
        Stall(Duration),
    }

    pub(crate) struct Recorder {
        tx: SyncSender<Event>,
        dropped: AtomicU64,
    }

    static RECORDER: OnceLock<Recorder> = OnceLock::new();

    pub(crate) fn global() -> &'static Recorder {
        RECORDER.get_or_init(|| {
            let depth = std::env::var("HOTGAUGE_TELEMETRY_CHANNEL_DEPTH")
                .ok()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or(CHANNEL_DEPTH);
            let (tx, rx) = sync_channel(depth);
            std::thread::Builder::new()
                .name("hotgauge-telemetry".into())
                .spawn(move || aggregate(rx))
                // hotgauge-lint: allow(L001, "spawn failure at process start means the OS is out of threads; there is no meaningful degraded mode for the aggregator")
                .expect("failed to spawn telemetry aggregator thread");
            Recorder {
                tx,
                dropped: AtomicU64::new(0),
            }
        })
    }

    impl Recorder {
        /// Never blocks: a full channel drops the event and counts the drop.
        pub(crate) fn send(&self, event: Event) {
            if self.tx.try_send(event).is_err() {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }

        pub(crate) fn snapshot(&self) -> Snapshot {
            let (reply_tx, reply_rx) = sync_channel(1);
            // Flush must not be droppable or the reply would never come;
            // block here (off the hot path) until there is room.
            if self.tx.send(Event::Flush(reply_tx)).is_err() {
                return Snapshot::default();
            }
            let mut snap = reply_rx
                .recv_timeout(Duration::from_secs(5))
                .unwrap_or_default();
            snap.dropped_events = self.dropped.load(Ordering::Relaxed);
            if snap.dropped_events > 0 {
                eprintln!(
                    "warning: telemetry dropped {} event(s) under backpressure; \
                     span statistics are undercounted (raise \
                     HOTGAUGE_TELEMETRY_CHANNEL_DEPTH or instrument less)",
                    snap.dropped_events
                );
            }
            snap
        }

        pub(crate) fn reset(&self) {
            self.send(Event::Reset);
            self.dropped.store(0, Ordering::Relaxed);
        }

        /// Test hook behind [`crate::stall_aggregator_for_tests`].
        pub(crate) fn stall(&self, d: Duration) {
            // Blocking send: the stall must reach the aggregator.
            let _ = self.tx.send(Event::Stall(d));
        }
    }

    #[derive(Default)]
    struct SpanAgg {
        calls: u64,
        total_ns: u64,
        allocs: u64,
        alloc_bytes: u64,
        hist: LatencyHistogram,
    }

    impl SpanAgg {
        fn record(&mut self, nanos: u64, allocs: u64, alloc_bytes: u64) {
            self.calls += 1;
            self.total_ns += nanos;
            self.allocs += allocs;
            self.alloc_bytes += alloc_bytes;
            self.hist.record(nanos);
        }
    }

    #[derive(Default)]
    struct CounterAgg {
        calls: u64,
        total: f64,
        min: f64,
        max: f64,
    }

    impl CounterAgg {
        fn record(&mut self, v: f64) {
            if self.calls == 0 {
                self.min = v;
                self.max = v;
            } else {
                self.min = self.min.min(v);
                self.max = self.max.max(v);
            }
            self.calls += 1;
            self.total += v;
        }
    }

    fn aggregate(rx: Receiver<Event>) {
        let mut spans: BTreeMap<&'static str, SpanAgg> = BTreeMap::new();
        let mut counters: BTreeMap<&'static str, CounterAgg> = BTreeMap::new();
        while let Ok(event) = rx.recv() {
            match event {
                Event::Span {
                    label,
                    nanos,
                    allocs,
                    alloc_bytes,
                } => spans
                    .entry(label)
                    .or_default()
                    .record(nanos, allocs, alloc_bytes),
                Event::Counter { label, value } => counters.entry(label).or_default().record(value),
                Event::Flush(reply) => {
                    let snap = Snapshot {
                        spans: spans
                            .iter()
                            .map(|(label, a)| SpanStats {
                                label: (*label).to_string(),
                                calls: a.calls,
                                total_ns: a.total_ns,
                                min_ns: a.hist.min(),
                                max_ns: a.hist.max(),
                                p50_ns: a.hist.quantile(0.50),
                                p90_ns: a.hist.quantile(0.90),
                                p99_ns: a.hist.quantile(0.99),
                                allocs: a.allocs,
                                alloc_bytes: a.alloc_bytes,
                            })
                            .collect(),
                        counters: counters
                            .iter()
                            .map(|(label, a)| CounterStats {
                                label: (*label).to_string(),
                                calls: a.calls,
                                total: a.total,
                                min: a.min,
                                max: a.max,
                            })
                            .collect(),
                        dropped_events: 0,
                    };
                    let _ = reply.send(snap);
                }
                Event::Reset => {
                    spans.clear();
                    counters.clear();
                }
                Event::Stall(d) => std::thread::sleep(d),
            }
        }
    }
}

/// RAII timer recording a span on drop. Construct through [`span!`].
#[cfg(feature = "telemetry")]
#[must_use = "a span measures the time until it is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    label: &'static str,
    start: std::time::Instant,
    allocs_at_enter: u64,
    bytes_at_enter: u64,
}

#[cfg(feature = "telemetry")]
impl SpanGuard {
    /// Starts a monotonic timer for `label` and notes the recording
    /// thread's allocation counters.
    #[inline]
    pub fn enter(label: &'static str) -> Self {
        let (allocs_at_enter, bytes_at_enter) = alloc_track::thread_alloc_counts();
        Self {
            label,
            start: std::time::Instant::now(),
            allocs_at_enter,
            bytes_at_enter,
        }
    }
}

#[cfg(feature = "telemetry")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let (allocs_now, bytes_now) = alloc_track::thread_alloc_counts();
        recorder::global().send(recorder::Event::Span {
            label: self.label,
            nanos,
            // Saturating: another span's event send may not have hit the
            // allocator yet when this thread read its baseline.
            allocs: allocs_now.saturating_sub(self.allocs_at_enter),
            alloc_bytes: bytes_now.saturating_sub(self.bytes_at_enter),
        });
    }
}

/// No-op stand-in when the `telemetry` feature is disabled.
#[cfg(not(feature = "telemetry"))]
#[must_use = "a span measures the time until it is dropped"]
#[derive(Debug)]
pub struct SpanGuard;

#[cfg(not(feature = "telemetry"))]
impl SpanGuard {
    /// Does nothing; compiles away entirely.
    #[inline(always)]
    pub fn enter(_label: &'static str) -> Self {
        SpanGuard
    }
}

/// Records one counter observation. Prefer the [`counter!`] macro.
#[cfg(feature = "telemetry")]
#[inline]
pub fn record_counter(label: &'static str, value: f64) {
    recorder::global().send(recorder::Event::Counter { label, value });
}

/// No-op stand-in when the `telemetry` feature is disabled.
#[cfg(not(feature = "telemetry"))]
#[inline(always)]
pub fn record_counter(_label: &'static str, _value: f64) {}

/// Flushes the aggregator and returns everything recorded so far.
///
/// If events were dropped under backpressure a warning is printed to stderr
/// (the count is also in [`Snapshot::dropped_events`] and, via
/// [`manifest::RunManifest::capture_metrics`], the `telemetry.dropped`
/// manifest field). Without the `telemetry` feature this returns an empty
/// [`Snapshot`].
#[cfg(feature = "telemetry")]
pub fn snapshot() -> Snapshot {
    recorder::global().snapshot()
}

/// Flushes the aggregator and returns everything recorded so far.
///
/// Without the `telemetry` feature this returns an empty [`Snapshot`].
#[cfg(not(feature = "telemetry"))]
pub fn snapshot() -> Snapshot {
    Snapshot::default()
}

/// Clears all aggregated spans, counters, and the dropped-event count
/// (measurement-phase boundary).
#[cfg(feature = "telemetry")]
pub fn reset() {
    recorder::global().reset();
}

/// Clears all aggregated spans, counters, and the dropped-event count
/// (measurement-phase boundary).
#[cfg(not(feature = "telemetry"))]
pub fn reset() {}

/// Parks the aggregator thread for `d`, letting tests fill the bounded
/// channel deterministically. Test-only plumbing, not part of the API.
#[cfg(feature = "telemetry")]
#[doc(hidden)]
pub fn stall_aggregator_for_tests(d: std::time::Duration) {
    recorder::global().stall(d);
}

/// Times the enclosing scope under a static label.
#[macro_export]
macro_rules! span {
    ($label:expr) => {
        $crate::SpanGuard::enter($label)
    };
}

/// Records a numeric observation under a static label.
#[macro_export]
macro_rules! counter {
    ($label:expr, $value:expr) => {
        $crate::record_counter($label, ($value) as f64)
    };
}

/// Runs the enclosed statements only when the `telemetry` feature is on.
///
/// This is the facade for telemetry-only *computation* (deriving a value
/// that only feeds a [`counter!`]): call sites never spell the cfg gate
/// themselves (hotgauge-lint rule L002), so the feature name and the
/// zero-cost-when-off guarantee stay centralized here.
#[cfg(feature = "telemetry")]
#[macro_export]
macro_rules! if_telemetry {
    ($($body:tt)*) => {
        { $($body)* }
    };
}

/// Runs the enclosed statements only when the `telemetry` feature is on.
///
/// Without the feature the body is dropped at token level: it is never
/// type-checked, so telemetry-only bindings compile away entirely.
#[cfg(not(feature = "telemetry"))]
#[macro_export]
macro_rules! if_telemetry {
    ($($body:tt)*) => {};
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.3}s", ns / 1e9)
    }
}

fn fmt_count(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

fn fmt_bytes(b: u64) -> String {
    let b = b as f64;
    if b < 1e3 {
        format!("{b:.0}B")
    } else if b < 1e6 {
        format!("{:.1}KB", b / 1e3)
    } else if b < 1e9 {
        format!("{:.1}MB", b / 1e6)
    } else {
        format!("{:.2}GB", b / 1e9)
    }
}

/// Renders a [`Snapshot`] as the human-readable timing/counter table.
pub fn render_table(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.spans.is_empty() {
        let denom = snap.total_span_ns().max(1) as f64;
        let has_allocs = snap.spans.iter().any(|s| s.allocs > 0);
        out.push_str(&format!(
            "{:<24} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10} {:>7}",
            "span", "calls", "total", "avg", "p50", "p99", "max", "share"
        ));
        if has_allocs {
            out.push_str(&format!(" {:>10} {:>9}", "allocs", "heap"));
        }
        out.push('\n');
        for s in &snap.spans {
            out.push_str(&format!(
                "{:<24} {:>9} {:>10} {:>10} {:>10} {:>10} {:>10} {:>6.1}%",
                s.label,
                s.calls,
                fmt_ns(s.total_ns as f64),
                fmt_ns(s.avg_ns()),
                fmt_ns(s.p50_ns as f64),
                fmt_ns(s.p99_ns as f64),
                fmt_ns(s.max_ns as f64),
                100.0 * s.total_ns as f64 / denom,
            ));
            if has_allocs {
                out.push_str(&format!(
                    " {:>10} {:>9}",
                    s.allocs,
                    fmt_bytes(s.alloc_bytes)
                ));
            }
            out.push('\n');
        }
    }
    if !snap.counters.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str(&format!(
            "{:<24} {:>9} {:>12} {:>12} {:>12} {:>12}\n",
            "counter", "calls", "total", "avg", "min", "max"
        ));
        for c in &snap.counters {
            out.push_str(&format!(
                "{:<24} {:>9} {:>12} {:>12} {:>12} {:>12}\n",
                c.label,
                c.calls,
                fmt_count(c.total),
                fmt_count(c.avg()),
                fmt_count(c.min),
                fmt_count(c.max),
            ));
        }
    }
    if snap.dropped_events > 0 {
        out.push_str(&format!(
            "({} events dropped: channel was full)\n",
            snap.dropped_events
        ));
    }
    out
}

/// Prints the telemetry table to stderr when dropped (typically at the end
/// of `main`). Does nothing when nothing was recorded or when quieted.
#[derive(Debug)]
pub struct TelemetryReport {
    title: String,
    quiet: bool,
}

impl TelemetryReport {
    /// A report labelled `title`, printed at drop.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            quiet: false,
        }
    }

    /// Suppresses the printed table (the snapshot stays available).
    pub fn quiet(mut self, quiet: bool) -> Self {
        self.quiet = quiet;
        self
    }
}

impl Drop for TelemetryReport {
    fn drop(&mut self) {
        if self.quiet {
            return;
        }
        let snap = snapshot();
        if snap.is_empty() {
            return;
        }
        eprintln!("\n== telemetry: {} ==", self.title);
        eprint!("{}", render_table(&snap));
    }
}

/// Key-sorted string map used for manifest config blocks.
pub type ConfigMap = BTreeMap<String, String>;

#[cfg(test)]
mod tests {
    use super::*;

    /// A `SpanStats` with plausible percentile fields derived from min/max.
    fn span_stats(label: &str, calls: u64, total_ns: u64, min_ns: u64, max_ns: u64) -> SpanStats {
        SpanStats {
            label: label.into(),
            calls,
            total_ns,
            min_ns,
            max_ns,
            p50_ns: (min_ns + max_ns) / 2,
            p90_ns: max_ns,
            p99_ns: max_ns,
            allocs: 0,
            alloc_bytes: 0,
        }
    }

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            spans: vec![
                span_stats("stage.perf", 10, 3_000, 100, 500),
                span_stats("stage.thermal", 10, 7_000, 400, 900),
            ],
            counters: vec![CounterStats {
                label: "thermal.cg_iterations".into(),
                calls: 4,
                total: 100.0,
                min: 10.0,
                max: 40.0,
            }],
            dropped_events: 0,
        }
    }

    #[test]
    fn share_of_total_partitions_unity() {
        let snap = sample_snapshot();
        assert!((snap.span_share("stage.perf") - 0.3).abs() < 1e-12);
        assert!((snap.span_share("stage.thermal") - 0.7).abs() < 1e-12);
        let sum: f64 = snap.spans.iter().map(|s| snap.span_share(&s.label)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(snap.span_share("missing"), 0.0);
        assert_eq!(Snapshot::default().span_share("stage.perf"), 0.0);
    }

    #[test]
    fn span_share_with_zero_denominator_is_zero() {
        // Spans exist but recorded zero time: the share must not divide by 0.
        let snap = Snapshot {
            spans: vec![span_stats("stage.idle", 3, 0, 0, 0)],
            counters: vec![],
            dropped_events: 0,
        };
        assert_eq!(snap.total_span_ns(), 0);
        assert_eq!(snap.span_share("stage.idle"), 0.0);
    }

    #[test]
    fn stats_derive_avg() {
        let snap = sample_snapshot();
        let perf = snap.span("stage.perf").expect("span present");
        assert!((perf.avg_ns() - 300.0).abs() < 1e-12);
        let c = snap.counter("thermal.cg_iterations").expect("counter");
        assert!((c.avg() - 25.0).abs() < 1e-12);
        // Zero-call stats must not divide by zero.
        assert_eq!(span_stats("stage.none", 0, 0, 0, 0).avg_ns(), 0.0);
        let empty_counter = CounterStats {
            label: "none".into(),
            calls: 0,
            total: 0.0,
            min: 0.0,
            max: 0.0,
        };
        assert_eq!(empty_counter.avg(), 0.0);
    }

    #[test]
    fn span_and_counter_lookups_miss_cleanly() {
        let snap = sample_snapshot();
        assert!(snap.span("stage.nope").is_none());
        assert!(snap.counter("stage.perf").is_none(), "namespaces disjoint");
        assert!(snap.span("thermal.cg_iterations").is_none());
        assert!(!snap.is_empty());
        assert!(Snapshot::default().is_empty());
    }

    #[test]
    fn table_renders_all_labels_and_percentiles() {
        let table = render_table(&sample_snapshot());
        assert!(table.contains("stage.perf"));
        assert!(table.contains("stage.thermal"));
        assert!(table.contains("thermal.cg_iterations"));
        assert!(table.contains("p50"));
        assert!(table.contains("p99"));
        assert!(table.contains("30.0%"));
        assert!(table.contains("70.0%"));
        // No allocation columns when nothing allocated.
        assert!(!table.contains("heap"));
        assert!(render_table(&Snapshot::default()).is_empty());
    }

    #[test]
    fn table_adds_alloc_columns_when_present() {
        let mut snap = sample_snapshot();
        snap.spans[0].allocs = 12;
        snap.spans[0].alloc_bytes = 4_096;
        let table = render_table(&snap);
        assert!(table.contains("allocs"));
        assert!(table.contains("heap"));
        assert!(table.contains("4.1KB"));
    }

    // Exercises the real channel + aggregator thread path.
    #[cfg(feature = "telemetry")]
    #[test]
    fn concurrent_spans_are_all_counted() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 200;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for i in 0..PER_THREAD {
                        let _g = span!("test.concurrent");
                        counter!("test.concurrent_counter", i);
                    }
                });
            }
        });
        let snap = snapshot();
        let span = snap.span("test.concurrent").expect("span recorded");
        assert_eq!(span.calls, THREADS * PER_THREAD);
        assert!(span.min_ns <= span.p50_ns);
        assert!(span.p50_ns <= span.p90_ns);
        assert!(span.p90_ns <= span.p99_ns);
        assert!(span.p99_ns <= span.max_ns);
        assert!(span.total_ns >= span.max_ns);
        let c = snap.counter("test.concurrent_counter").expect("counter");
        assert_eq!(c.calls, THREADS * PER_THREAD);
        assert_eq!(c.min, 0.0);
        assert_eq!(c.max, (PER_THREAD - 1) as f64);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn counter_aggregates_min_max_total() {
        counter!("test.minmax", 5u64);
        counter!("test.minmax", 1u64);
        counter!("test.minmax", 9u64);
        let c = snapshot();
        let c = c.counter("test.minmax").expect("counter");
        assert_eq!(c.calls, 3);
        assert_eq!(c.total, 15.0);
        assert_eq!(c.min, 1.0);
        assert_eq!(c.max, 9.0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn spans_attribute_allocations() {
        let bytes = 1usize << 16;
        {
            let _g = span!("test.allocating");
            // A visible allocation: 64 KiB requested inside the span.
            let v = vec![0u8; bytes];
            std::hint::black_box(&v);
        }
        let snap = snapshot();
        let s = snap.span("test.allocating").expect("span recorded");
        assert!(s.allocs >= 1, "expected at least the vec allocation");
        assert!(
            s.alloc_bytes >= bytes as u64,
            "expected >= {bytes} bytes, saw {}",
            s.alloc_bytes
        );
    }

    // With the feature disabled the macros must still compile and record
    // nothing; this is the no-op path used by default builds.
    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn disabled_feature_is_a_noop() {
        {
            let _g = span!("test.noop");
            counter!("test.noop_counter", 123u64);
        }
        let snap = snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.dropped_events, 0);
        reset(); // also a no-op
    }
}
