//! The schema-versioned JSON run manifest emitted under `--json <path>`.
//!
//! A [`RunManifest`] records what was run (tool, arguments, configuration)
//! and what came out of it (a tool-specific `results` tree plus, when the
//! `telemetry` feature is enabled, aggregated [`RunMetrics`]). Serialization
//! is deterministic: struct fields appear in declaration order and the
//! config map is sorted by key. [`write_json_atomic`] writes through a
//! sibling temp file and rename so readers never observe a partial file.
//!
//! # Schema history
//!
//! * **v1** — tool/args/config/results plus totals-only stage metrics
//!   (calls, total, avg, min, max, share) and counter statistics.
//! * **v2** — adds per-stage latency percentiles (`p50_s`/`p90_s`/`p99_s`
//!   from the aggregator's log-bucketed histograms), per-stage allocation
//!   attribution (`allocs`/`alloc_bytes` from the counting allocator), and
//!   the `telemetry.dropped` config field. The new stage fields are
//!   `Option`s so **v1 documents still deserialize** — absent fields come
//!   back as `None`. Readers (the perf gate) accept both versions.
//! * **v3** — adds the optional `store` block ([`StoreManifest`]: result
//!   store hit/miss/write/quarantine counters and hit rate) emitted by
//!   binaries running with `--store`. As an `Option` field, **v1 and v2
//!   documents still deserialize** with `store: None`, and readers accept
//!   all three versions.

use crate::{ConfigMap, Snapshot};
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// Version stamped into every manifest; bump on breaking schema changes.
pub const SCHEMA_VERSION: u32 = 3;

/// Top-level document written by the CLI and experiment binaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Manifest schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Emitting binary (e.g. `hotgauge`, `fig11_tuh_percore`).
    pub tool: String,
    /// Command-line arguments after the binary name.
    pub args: Vec<String>,
    /// Key-sorted run configuration (node, benchmark, fidelity, ...).
    pub config: ConfigMap,
    /// Tool-specific result summary.
    pub results: serde_json::Value,
    /// Aggregated timing/counter statistics; `None` without telemetry.
    pub metrics: Option<RunMetrics>,
    /// Result-store counters; `None` when the run used no store (v3).
    pub store: Option<StoreManifest>,
}

impl RunManifest {
    /// An empty manifest for `tool`, capturing the process arguments.
    pub fn new(tool: &str) -> Self {
        Self {
            schema_version: SCHEMA_VERSION,
            tool: tool.to_string(),
            args: std::env::args().skip(1).collect(),
            config: ConfigMap::new(),
            results: serde_json::Value::Null,
            metrics: None,
            store: None,
        }
    }

    /// Adds one config entry (builder-style).
    pub fn with_config(mut self, key: &str, value: impl ToString) -> Self {
        self.config.insert(key.to_string(), value.to_string());
        self
    }

    /// Sets the tool-specific results tree from any serializable value.
    pub fn set_results<T: Serialize>(&mut self, results: &T) {
        self.results = serde_json::to_value(results);
    }

    /// Captures the current telemetry [`Snapshot`] as [`RunMetrics`].
    ///
    /// Leaves `metrics` as `None` when nothing was recorded (the default
    /// build, where telemetry compiles to no-ops). When metrics are
    /// captured, the number of events lost to backpressure is also recorded
    /// under the `telemetry.dropped` config key (0 in a healthy run), so
    /// dropped events are visible even to consumers that only read config.
    pub fn capture_metrics(&mut self) {
        let snap = crate::snapshot();
        if !snap.is_empty() {
            self.config.insert(
                "telemetry.dropped".to_string(),
                snap.dropped_events.to_string(),
            );
            self.metrics = Some(RunMetrics::from_snapshot(&snap));
        }
    }
}

/// Aggregated per-stage timings and domain counters for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// Per-span timing statistics, sorted by label.
    pub stages: Vec<StageMetrics>,
    /// Per-counter statistics, sorted by label.
    pub counters: Vec<CounterMetrics>,
    /// Telemetry events lost to backpressure (0 in a healthy run).
    pub dropped_events: u64,
}

impl RunMetrics {
    /// Converts an aggregator snapshot into the manifest schema.
    pub fn from_snapshot(snap: &Snapshot) -> Self {
        let denom = snap.total_span_ns().max(1) as f64;
        Self {
            stages: snap
                .spans
                .iter()
                .map(|s| StageMetrics {
                    label: s.label.clone(),
                    calls: s.calls,
                    total_s: s.total_ns as f64 * 1e-9,
                    avg_s: s.avg_ns() * 1e-9,
                    min_s: s.min_ns as f64 * 1e-9,
                    max_s: s.max_ns as f64 * 1e-9,
                    p50_s: Some(s.p50_ns as f64 * 1e-9),
                    p90_s: Some(s.p90_ns as f64 * 1e-9),
                    p99_s: Some(s.p99_ns as f64 * 1e-9),
                    allocs: Some(s.allocs),
                    alloc_bytes: Some(s.alloc_bytes),
                    share: s.total_ns as f64 / denom,
                })
                .collect(),
            counters: snap
                .counters
                .iter()
                .map(|c| CounterMetrics {
                    label: c.label.clone(),
                    calls: c.calls,
                    total: c.total,
                    avg: c.avg(),
                    min: c.min,
                    max: c.max,
                })
                .collect(),
            dropped_events: snap.dropped_events,
        }
    }

    /// The stage entry for `label`, if recorded.
    pub fn stage(&self, label: &str) -> Option<&StageMetrics> {
        self.stages.iter().find(|s| s.label == label)
    }

    /// The counter entry for `label`, if recorded.
    pub fn counter(&self, label: &str) -> Option<&CounterMetrics> {
        self.counters.iter().find(|c| c.label == label)
    }
}

/// Timing statistics for one pipeline stage (span label), in seconds.
///
/// The percentile and allocation fields are schema-v2 additions and
/// therefore `Option`: a v1 manifest deserializes with them as `None`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageMetrics {
    /// Span label (e.g. `stage.thermal`, `stage.detect`).
    pub label: String,
    /// Number of spans recorded.
    pub calls: u64,
    /// Summed wall time.
    pub total_s: f64,
    /// Mean wall time per call.
    pub avg_s: f64,
    /// Shortest call.
    pub min_s: f64,
    /// Longest call.
    pub max_s: f64,
    /// Median call latency (log-bucketed histogram, ~3% quantization).
    pub p50_s: Option<f64>,
    /// 90th-percentile call latency.
    pub p90_s: Option<f64>,
    /// 99th-percentile call latency.
    pub p99_s: Option<f64>,
    /// Heap allocations attributed to this span label.
    pub allocs: Option<u64>,
    /// Bytes requested by those allocations.
    pub alloc_bytes: Option<u64>,
    /// Fraction of all recorded span time spent in this stage.
    pub share: f64,
}

/// Result-store session counters (schema-v3 addition, emitted by binaries
/// running with `--store`). The counters cover exactly one manifest's runs;
/// `hit_rate` is `hits / (hits + misses)`, or `1.0` when nothing was
/// looked up. The perf gate exposes `misses` and `1 - hit_rate` as
/// lower-is-better metrics and checks `--check-store` thresholds against
/// `hit_rate`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoreManifest {
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that fell through to simulation.
    pub misses: u64,
    /// Fresh results persisted.
    pub writes: u64,
    /// Objects that failed verification and were quarantined.
    pub quarantined: u64,
    /// `hits / (hits + misses)`; `1.0` when there were no lookups.
    pub hit_rate: f64,
}

/// Statistics for one domain counter (iterations, instruction counts, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterMetrics {
    /// Counter label (e.g. `thermal.cg_iterations`).
    pub label: String,
    /// Number of recorded observations.
    pub calls: u64,
    /// Sum of observations.
    pub total: f64,
    /// Mean observation.
    pub avg: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

/// Serializes `value` as pretty JSON and writes it atomically to `path`
/// (sibling temp file, then rename), so a crash or concurrent reader never
/// sees a truncated document.
pub fn write_json_atomic<T: Serialize>(path: &Path, value: &T) -> io::Result<()> {
    let mut json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    json.push('\n');
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!(".{file_name}.{}.tmp", std::process::id()));
    std::fs::write(&tmp, &json)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterStats, SpanStats};

    fn sample_manifest() -> RunManifest {
        let mut m = RunManifest {
            schema_version: SCHEMA_VERSION,
            tool: "hotgauge".into(),
            args: vec!["--benchmark".into(), "gcc".into()],
            config: ConfigMap::new(),
            results: serde_json::Value::Null,
            metrics: None,
            store: None,
        };
        m = m.with_config("node", "7nm").with_config("benchmark", "gcc");
        m.set_results(&vec![1u64, 2, 3]);
        m.metrics = Some(RunMetrics::from_snapshot(&Snapshot {
            spans: vec![SpanStats {
                label: "stage.thermal".into(),
                calls: 5,
                total_ns: 5_000_000,
                min_ns: 900_000,
                max_ns: 1_100_000,
                p50_ns: 1_000_000,
                p90_ns: 1_080_000,
                p99_ns: 1_100_000,
                allocs: 40,
                alloc_bytes: 65_536,
            }],
            counters: vec![CounterStats {
                label: "thermal.cg_iterations".into(),
                calls: 5,
                total: 250.0,
                min: 40.0,
                max: 60.0,
            }],
            dropped_events: 0,
        }));
        m
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = sample_manifest();
        let json = serde_json::to_string_pretty(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn field_order_is_deterministic() {
        let m = sample_manifest();
        let a = serde_json::to_string(&m).unwrap();
        let b = serde_json::to_string(&m.clone()).unwrap();
        assert_eq!(a, b);
        // schema_version leads, and sorted config keys follow declaration order.
        assert!(a.starts_with("{\"schema_version\":3,\"tool\":\"hotgauge\""));
        let bench = a.find("\"benchmark\":\"gcc\"").unwrap();
        let node = a.find("\"node\":\"7nm\"").unwrap();
        assert!(bench < node, "config keys must be sorted");
    }

    #[test]
    fn metrics_preserve_share_counters_and_v2_fields() {
        let m = sample_manifest();
        let metrics = m.metrics.as_ref().unwrap();
        let stage = metrics.stage("stage.thermal").unwrap();
        assert_eq!(stage.calls, 5);
        assert!((stage.share - 1.0).abs() < 1e-12);
        assert!((stage.total_s - 5e-3).abs() < 1e-15);
        assert!((stage.p50_s.unwrap() - 1e-3).abs() < 1e-15);
        assert!((stage.p99_s.unwrap() - 1.1e-3).abs() < 1e-15);
        assert_eq!(stage.allocs, Some(40));
        assert_eq!(stage.alloc_bytes, Some(65_536));
        let c = metrics.counter("thermal.cg_iterations").unwrap();
        assert_eq!(c.total, 250.0);
        assert_eq!(c.avg, 50.0);
    }

    /// A hand-written schema-v1 document (no percentile/alloc fields, as
    /// emitted by PR-1-era binaries) must still deserialize, with the v2
    /// additions defaulting to `None`.
    #[test]
    fn v1_manifest_still_parses_with_new_fields_defaulting() {
        let v1 = r#"{
            "schema_version": 1,
            "tool": "fig11_tuh_percore",
            "args": ["--quiet"],
            "config": {"node": "7nm"},
            "results": {"rows": [1, 2]},
            "metrics": {
                "stages": [{
                    "label": "thermal",
                    "calls": 10,
                    "total_s": 1.5,
                    "avg_s": 0.15,
                    "min_s": 0.1,
                    "max_s": 0.2,
                    "share": 1.0
                }],
                "counters": [{
                    "label": "thermal.cg_iterations",
                    "calls": 10,
                    "total": 400.0,
                    "avg": 40.0,
                    "min": 35.0,
                    "max": 45.0
                }],
                "dropped_events": 0
            }
        }"#;
        let m: RunManifest = serde_json::from_str(v1).expect("v1 parses under v2 schema");
        assert_eq!(m.schema_version, 1);
        let stage = m.metrics.as_ref().unwrap().stage("thermal").unwrap();
        assert_eq!(stage.calls, 10);
        assert_eq!(stage.p50_s, None);
        assert_eq!(stage.p90_s, None);
        assert_eq!(stage.p99_s, None);
        assert_eq!(stage.allocs, None);
        assert_eq!(stage.alloc_bytes, None);
        // And a v1 document round-trips losslessly through the v2 types.
        let json = serde_json::to_string(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }

    /// A schema-v2 document (percentiles and allocs, but no `store` block,
    /// as emitted by pre-store binaries) must still deserialize, with the
    /// v3 addition defaulting to `None`.
    #[test]
    fn v2_manifest_still_parses_with_store_defaulting() {
        let mut v2 = sample_manifest();
        v2.schema_version = 2;
        // Strip the store field entirely, as a v2 writer would.
        let serde_json::Value::Map(entries) = serde_json::to_value(&v2) else {
            panic!("manifest serializes to a map");
        };
        let stripped: Vec<_> = entries.into_iter().filter(|(k, _)| k != "store").collect();
        let json = serde_json::to_string(&serde_json::Value::Map(stripped)).unwrap();
        assert!(!json.contains("\"store\""));
        let m: RunManifest = serde_json::from_str(&json).expect("v2 parses under v3 schema");
        assert_eq!(m.schema_version, 2);
        assert_eq!(m.store, None);
        assert_eq!(m, v2);
    }

    /// A v3 document with a populated store block round-trips exactly.
    #[test]
    fn v3_store_block_round_trips() {
        let mut m = sample_manifest();
        m.store = Some(StoreManifest {
            hits: 7,
            misses: 1,
            writes: 1,
            quarantined: 0,
            hit_rate: 0.875,
        });
        let json = serde_json::to_string_pretty(&m).unwrap();
        assert!(json.contains("\"hit_rate\""));
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.store.unwrap().hits, 7);
        assert_eq!(back, m);
    }

    /// A v2 document with all new fields present round-trips exactly.
    #[test]
    fn v2_round_trip_preserves_percentiles_and_allocs() {
        let m = sample_manifest();
        let json = serde_json::to_string_pretty(&m).unwrap();
        assert!(json.contains("p50_s"));
        assert!(json.contains("alloc_bytes"));
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        let stage = back
            .metrics
            .as_ref()
            .unwrap()
            .stage("stage.thermal")
            .unwrap();
        assert_eq!(stage.p90_s, Some(1.08e-3));
        assert_eq!(back, m);
    }

    #[test]
    fn atomic_write_creates_parseable_file() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "hotgauge_manifest_test_{}.json",
            std::process::id()
        ));
        let m = sample_manifest();
        write_json_atomic(&path, &m).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'));
        let back: RunManifest = serde_json::from_str(&text).unwrap();
        assert_eq!(back.tool, "hotgauge");
        // No temp file left behind.
        let stem = path.file_name().unwrap().to_string_lossy().into_owned();
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(&stem))
            .count();
        assert_eq!(leftovers, 1);
        std::fs::remove_file(&path).unwrap();
    }
}
