//! Throttled liveness reporting for long-running sweeps.
//!
//! Worker threads call [`ProgressPrinter::tick`] as units of work finish;
//! lines go to stderr at most every `interval` (plus always the final one),
//! so a multi-hour sweep stays observable without flooding the terminal.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Thread-safe `[label done/total] detail` reporter.
#[derive(Debug)]
pub struct ProgressPrinter {
    label: String,
    total: u64,
    quiet: bool,
    interval: Duration,
    state: Mutex<State>,
}

#[derive(Debug)]
struct State {
    done: u64,
    last_print: Option<Instant>,
    started: Instant,
}

impl ProgressPrinter {
    /// A reporter for `total` units of work under `label`.
    pub fn new(label: impl Into<String>, total: u64) -> Self {
        Self {
            label: label.into(),
            total,
            quiet: false,
            interval: Duration::from_millis(250),
            state: Mutex::new(State {
                done: 0,
                last_print: None,
                started: Instant::now(),
            }),
        }
    }

    /// Suppresses all output (ticks are still counted).
    pub fn quiet(mut self, quiet: bool) -> Self {
        self.quiet = quiet;
        self
    }

    /// Sets the minimum spacing between printed lines.
    pub fn interval(mut self, interval: Duration) -> Self {
        self.interval = interval;
        self
    }

    /// Marks one unit done; prints if the throttle allows or this was the
    /// last unit. Safe to call from multiple threads.
    pub fn tick(&self, detail: &str) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.done += 1;
        if self.quiet {
            return;
        }
        let now = Instant::now();
        let due = state.done >= self.total
            || state
                .last_print
                .is_none_or(|last| now.duration_since(last) >= self.interval);
        if due {
            let elapsed = now.duration_since(state.started).as_secs_f64();
            eprintln!(
                "[{} {}/{}] {:.1}s {}",
                self.label, state.done, self.total, elapsed, detail
            );
            state.last_print = Some(now);
        }
    }

    /// Units completed so far.
    pub fn done(&self) -> u64 {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticks_count_across_threads() {
        let p = ProgressPrinter::new("test", 40).quiet(true);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        p.tick("unit");
                    }
                });
            }
        });
        assert_eq!(p.done(), 40);
    }

    #[test]
    fn builder_settings_apply() {
        let p = ProgressPrinter::new("x", 2)
            .quiet(true)
            .interval(Duration::from_secs(1));
        p.tick("a");
        assert_eq!(p.done(), 1);
    }
}
