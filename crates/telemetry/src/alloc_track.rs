//! Thread-aware allocation tracking (telemetry builds only).
//!
//! [`CountingAllocator`] wraps the system allocator and bumps a pair of
//! const-initialized thread-local counters — allocation count and bytes
//! requested — on every `alloc`/`realloc`/`alloc_zeroed`. Installing it is
//! this crate's job: when the `telemetry` feature is on, the module
//! registers it as the `#[global_allocator]`, so every workspace binary
//! built with `--features telemetry` gets allocation attribution for free,
//! and default builds carry no allocator override at all (the feature gate
//! sits on the whole module).
//!
//! [`SpanGuard`](crate::SpanGuard) reads [`thread_alloc_counts`] at enter
//! and at drop; the difference is the number of heap allocations the
//! recording thread performed while the span was open. Because the counters
//! are thread-local, concurrent work on other threads never pollutes a
//! span's attribution — a sweep worker's spans see only that worker's
//! allocations. Two caveats, both documented in DESIGN.md:
//!
//! * nested spans double-count (the outer span includes the inner's
//!   allocations) — shares are per-label, not a partition;
//! * closing a span sends one channel event whose queue node is itself
//!   heap-allocated, so a span may be charged ~1 small allocation of
//!   bookkeeping noise from the previously closed span on its thread.
//!
//! The counters use relaxed `Cell` arithmetic (no atomics): each thread
//! only ever touches its own slots, so the fast path is two additions.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    /// Allocations performed by this thread since it started.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
    /// Bytes requested by those allocations.
    static THREAD_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// The counting wrapper around [`System`]. Zero-sized; all state lives in
/// the thread-locals above.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountingAllocator;

#[inline]
fn note_alloc(bytes: usize) {
    // `try_with` so a late allocation during thread teardown (after TLS
    // destruction) degrades to "uncounted" instead of aborting. The cells
    // are const-initialized and droppable-free, so this effectively never
    // fails in practice.
    let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get().wrapping_add(1)));
    let _ = THREAD_ALLOC_BYTES.try_with(|c| c.set(c.get().wrapping_add(bytes as u64)));
}

#[allow(unsafe_code)]
// SAFETY: every method delegates to `System` with the caller's exact layout
// and pointer; the wrapper only observes sizes, never changes behavior.
unsafe impl GlobalAlloc for CountingAllocator {
    #[inline]
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    #[inline]
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    #[inline]
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    #[inline]
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // A grow-in-place still "allocates" the delta conceptually; we
            // charge the full new size like jemalloc's stats do, keeping
            // the counter monotone and cheap.
            note_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static GLOBAL_COUNTING_ALLOCATOR: CountingAllocator = CountingAllocator;

/// This thread's cumulative `(allocations, bytes_requested)` counters.
///
/// Monotone within a thread (modulo `u64` wrap after ~10^19 allocations);
/// differences between two reads bound the allocations the thread performed
/// in between.
#[inline]
pub fn thread_alloc_counts() -> (u64, u64) {
    let allocs = THREAD_ALLOCS.try_with(Cell::get).unwrap_or(0);
    let bytes = THREAD_ALLOC_BYTES.try_with(Cell::get).unwrap_or(0);
    (allocs, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_observe_an_allocation() {
        let (a0, b0) = thread_alloc_counts();
        let v = vec![0u8; 32 * 1024];
        std::hint::black_box(&v);
        let (a1, b1) = thread_alloc_counts();
        assert!(a1 > a0, "allocation count did not advance");
        assert!(b1 - b0 >= 32 * 1024, "byte count missed the vec");
    }

    #[test]
    fn dealloc_does_not_advance_counters() {
        let v = vec![0u8; 4096];
        drop(v);
        let (a0, _) = thread_alloc_counts();
        // A pure drop of an existing buffer allocates nothing.
        let w = std::hint::black_box(Vec::<u8>::new());
        drop(w);
        let (a1, _) = thread_alloc_counts();
        assert_eq!(a1, a0, "empty-vec drop must not allocate");
    }

    #[test]
    fn other_threads_do_not_pollute_this_thread() {
        let (a0, _) = thread_alloc_counts();
        std::thread::scope(|s| {
            s.spawn(|| {
                let v = vec![0u8; 1 << 20];
                std::hint::black_box(&v);
            });
        });
        let (a1, _) = thread_alloc_counts();
        // Spawning/joining the scope costs this thread a few bookkeeping
        // allocations, but the worker's 1 MiB buffer must not appear here.
        assert!(a1 - a0 < 64, "cross-thread allocations leaked in");
    }
}
