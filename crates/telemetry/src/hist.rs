//! Fixed-size log-bucketed latency histogram (HDR-style).
//!
//! Span latencies range from tens of nanoseconds (a prefiltered substep) to
//! tens of seconds (a whole sweep), so a linear histogram is hopeless and a
//! growable one would allocate on the recording path. [`LatencyHistogram`]
//! instead uses the classic HDR layout: exact buckets below
//! [`LINEAR_BUCKETS`] ns, then [`SUB_BUCKETS`] sub-buckets per power of two,
//! giving a bounded relative quantization error of `1/SUB_BUCKETS` (~3%)
//! across the full `u64` nanosecond range in a fixed `BUCKETS * 8` bytes.
//!
//! Recording is two integer ops and an add — no allocation, no branching on
//! magnitude beyond one `leading_zeros`. Percentiles are read by walking the
//! cumulative counts and reporting the recorded extremes at the ends (so
//! `percentile(0)` is the true minimum and `percentile(100)` the true
//! maximum, not bucket bounds).

/// log2 of [`SUB_BUCKETS`].
const SUB_BITS: u32 = 5;
/// Sub-buckets per power of two; bounds relative error to 1/32 ≈ 3.1%.
const SUB_BUCKETS: u64 = 1 << SUB_BITS;
/// Values below this are counted exactly (one bucket per nanosecond).
const LINEAR_BUCKETS: u64 = SUB_BUCKETS;
/// Total bucket count covering the whole `u64` range:
/// 32 linear + 32 per octave for octaves 5..=63 (59 octaves).
const BUCKETS: usize = (LINEAR_BUCKETS + (64 - SUB_BITS as u64) * SUB_BUCKETS) as usize;

/// The histogram's relative bucket width (`1/SUB_BUCKETS` ≈ 3.1%): any two
/// samples within this relative distance can land in the same bucket, so a
/// reported percentile is only trustworthy to within this fraction.
/// Consumers comparing percentile metrics (e.g. the perf gate) should treat
/// deltas below this as quantization noise, not signal.
pub const RELATIVE_BUCKET_WIDTH: f64 = 1.0 / SUB_BUCKETS as f64;

/// A fixed-size log-bucketed histogram of `u64` nanosecond samples.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    min: u64,
    max: u64,
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish()
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram (one heap allocation of `BUCKETS * 8` bytes).
    pub fn new() -> Self {
        Self {
            counts: vec![0u64; BUCKETS]
                .into_boxed_slice()
                .try_into()
                .unwrap_or_else(|_| {
                    // hotgauge-lint: allow(L001, "length is the compile-time BUCKETS constant, conversion cannot fail")
                    unreachable!("boxed slice has BUCKETS elements")
                }),
            count: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The bucket index for `v`. Exact below [`LINEAR_BUCKETS`], then
    /// `SUB_BUCKETS` buckets per power of two.
    #[inline]
    fn bucket(v: u64) -> usize {
        if v < LINEAR_BUCKETS {
            v as usize
        } else {
            let exp = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS
            let shift = exp - SUB_BITS;
            let sub = (v >> shift) & (SUB_BUCKETS - 1); // top SUB_BITS bits after the leading 1
            (LINEAR_BUCKETS + (exp - SUB_BITS) as u64 * SUB_BUCKETS + sub) as usize
        }
    }

    /// The inclusive upper bound of bucket `idx` (the value reported for
    /// samples that landed in it).
    #[inline]
    fn bucket_upper(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < LINEAR_BUCKETS {
            idx
        } else {
            let exp = SUB_BITS + ((idx - LINEAR_BUCKETS) / SUB_BUCKETS) as u32;
            let sub = (idx - LINEAR_BUCKETS) % SUB_BUCKETS;
            let shift = exp - SUB_BITS;
            // Lower bound is (2^SUB_BITS + sub) << shift; the bucket spans
            // 2^shift values.
            let lower = (SUB_BUCKETS + sub) << shift;
            lower + ((1u64 << shift) - 1)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket(v)] += 1;
        self.count += 1;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at quantile `q` in `[0, 1]`: the smallest recorded bucket
    /// upper bound such that at least `ceil(q * count)` samples are at or
    /// below it. Returns the exact recorded min/max at the extremes and 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // The extremes are tracked exactly; report them rather than bucket
        // bounds so min/max survive quantization.
        if q == 0.0 {
            return self.min;
        }
        if q == 1.0 {
            return self.max;
        }
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen >= rank {
                // Clamp to the observed extremes so q=0 / q=1 are exact and
                // a single-bucket histogram never reports past its max.
                return Self::bucket_upper(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn linear_region_is_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 15);
        assert_eq!(h.quantile(1.0), 31);
    }

    #[test]
    fn bucket_bounds_are_consistent() {
        // Every value maps to a bucket whose upper bound is >= the value and
        // within the relative error budget.
        for &v in &[
            0u64,
            1,
            31,
            32,
            33,
            63,
            64,
            100,
            1_000,
            12_345,
            1_000_000,
            987_654_321,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = LatencyHistogram::bucket(v);
            let upper = LatencyHistogram::bucket_upper(idx);
            assert!(upper >= v, "upper({idx}) = {upper} < v = {v}");
            // Relative error bound: bucket width / value <= 1/SUB_BUCKETS.
            let err = (upper - v) as f64 / (v.max(1)) as f64;
            assert!(err <= 1.0 / SUB_BUCKETS as f64, "v={v} err={err}");
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut prev = 0usize;
        let mut v = 1u64;
        while v < u64::MAX / 2 {
            let idx = LatencyHistogram::bucket(v);
            assert!(idx >= prev, "bucket not monotone at {v}");
            assert!(idx < BUCKETS);
            prev = idx;
            v = v.saturating_mul(3) / 2 + 1;
        }
        assert!(LatencyHistogram::bucket(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let mut h = LatencyHistogram::new();
        // 1..=1000 microseconds in ns: p50 ~ 500_000, p99 ~ 990_000.
        for v in 1..=1000u64 {
            h.record(v * 1_000);
        }
        let p50 = h.quantile(0.50) as f64;
        let p99 = h.quantile(0.99) as f64;
        assert!((p50 / 500_000.0 - 1.0).abs() < 0.05, "p50 = {p50}");
        assert!((p99 / 990_000.0 - 1.0).abs() < 0.05, "p99 = {p99}");
        assert_eq!(h.quantile(0.0), 1_000);
        assert_eq!(h.quantile(1.0), 1_000_000);
        assert_eq!(h.min(), 1_000);
        assert_eq!(h.max(), 1_000_000);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut combined = LatencyHistogram::new();
        for v in 0..500u64 {
            a.record(v * 7 + 3);
            combined.record(v * 7 + 3);
        }
        for v in 0..300u64 {
            b.record(v * 1_001);
            combined.record(v * 1_001);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), combined.quantile(q), "q={q}");
        }
        // Merging an empty histogram is a no-op.
        let before = a.quantile(0.5);
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.quantile(0.5), before);
    }

    #[test]
    fn single_sample_pins_all_quantiles() {
        let mut h = LatencyHistogram::new();
        h.record(123_456);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 123_456);
        }
    }
}
