//! Deterministic channel-saturation test: a full telemetry channel must
//! yield an *exact* nonzero dropped-event count, the count must surface in
//! the run manifest's `telemetry.dropped` config field, and `reset()` must
//! clear it.
//!
//! This file holds a single test on purpose: it shrinks the bounded channel
//! via `HOTGAUGE_TELEMETRY_CHANNEL_DEPTH`, which the global recorder reads
//! exactly once at first use, so it needs a process (integration-test
//! binary) of its own where no other test races the initialization.

#![cfg(feature = "telemetry")]

use std::time::Duration;

const DEPTH: usize = 8;
const SENT: usize = 50;

#[test]
fn saturated_channel_reports_exact_drop_count() {
    // Must happen before any telemetry call initializes the recorder.
    std::env::set_var("HOTGAUGE_TELEMETRY_CHANNEL_DEPTH", DEPTH.to_string());

    // Park the aggregator. The stall event is queued first, so the
    // aggregator consumes it and sleeps before it can drain anything below.
    hotgauge_telemetry::stall_aggregator_for_tests(Duration::from_millis(600));

    // Fire far more events than the channel can hold. At most DEPTH (+1 if
    // the stall was already consumed and its slot freed) fit in the queue;
    // every further try_send drops and counts. Whatever the interleaving,
    // conservation must hold exactly: delivered + dropped == SENT.
    for _ in 0..SENT {
        hotgauge_telemetry::record_counter("test.backpressure", 1.0);
    }

    // Let the stall elapse so the queued events drain, then flush.
    let snap = hotgauge_telemetry::snapshot();
    let delivered = snap
        .counter("test.backpressure")
        .map(|c| c.calls)
        .unwrap_or(0);
    assert!(
        snap.dropped_events > 0,
        "channel of depth {DEPTH} swallowed {SENT} events without dropping"
    );
    assert_eq!(
        delivered + snap.dropped_events,
        SENT as u64,
        "dropped-event accounting must be exact (delivered {delivered}, \
         dropped {}, sent {SENT})",
        snap.dropped_events
    );
    assert!(
        delivered <= DEPTH as u64 + 1,
        "no more than the channel depth (+ the freed stall slot) can be \
         delivered while the aggregator sleeps, got {delivered}"
    );

    // The drop count lands in the manifest config, visible even to readers
    // that never look at metrics.
    let mut manifest = hotgauge_telemetry::manifest::RunManifest::new("backpressure-test");
    manifest.capture_metrics();
    let recorded: u64 = manifest
        .config
        .get("telemetry.dropped")
        .expect("manifest records telemetry.dropped")
        .parse()
        .expect("drop count is numeric");
    assert_eq!(recorded, snap.dropped_events);

    // reset() clears the aggregation and the drop counter.
    hotgauge_telemetry::reset();
    let clean = hotgauge_telemetry::snapshot();
    assert_eq!(clean.dropped_events, 0, "reset must clear the drop counter");
    assert!(clean.counter("test.backpressure").is_none());
}
