// L001 fixture: panic-family calls in library code. Linted under a
// synthetic crates/<lib>/src path; never compiled.

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() // line 5: fires
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("present") // line 9: fires
}

pub fn bad_panic() {
    panic!("boom"); // line 13: fires
}

pub fn bad_unreachable() {
    unreachable!(); // line 17: fires
}

pub fn ok_unwrap_or(v: Option<u32>) -> u32 {
    // unwrap_or_else / unwrap_or_default must NOT fire: the dot-prefixed
    // token `.unwrap(` is what L001 matches.
    v.unwrap_or_else(|| 0).max(v.unwrap_or_default())
}

pub fn ok_in_string() -> &'static str {
    "call .unwrap() and panic!(now)" // masked: no diagnostics
}

pub fn ok_pragma_previous_line(v: Option<u32>) -> u32 {
    // hotgauge-lint: allow(L001, "fixture: justified invariant")
    v.unwrap() // line 32: granted by the preceding-line pragma
}

pub fn ok_pragma_same_line(v: Option<u32>) -> u32 {
    v.unwrap() // hotgauge-lint: allow(L001, "fixture: same-line grant")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        Some(1).unwrap(); // inside #[cfg(test)]: no diagnostic
    }
}
