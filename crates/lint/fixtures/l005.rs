// L005 fixture: raw unit literals in a numeric crate. Linted under a
// synthetic crates/thermal/src path; never compiled.

pub fn bad_threshold(t: f64) -> bool {
    t > 80.0 // line 5: fires
}

pub fn bad_radius() -> f64 {
    100e-6 // line 9: fires
}

pub fn ok_const_line() -> f64 {
    const LOCAL_T_TH: f64 = 80.0;
    LOCAL_T_TH
}

pub fn ok_boundaries(x: f64) -> f64 {
    // Shares digits with the quarantined spellings but names different
    // numbers; numeric-token boundaries keep these out.
    x + 125.0 + 80.05 + 25e-3 + 1e-30
}

pub fn ok_pragma(t: f64) -> bool {
    // hotgauge-lint: allow(L005, "fixture: axis label, not a threshold")
    t > 25.0
}
