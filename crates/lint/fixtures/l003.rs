// L003 fixture: f32 tokens in a numeric kernel crate. Linted under a
// synthetic crates/thermal/src path; never compiled.

pub fn bad_ret(x: f64) -> f32 {
    x as f32
}

pub fn ok_idents(buf_f32x4: u32, my_f32_count: u32) -> u32 {
    buf_f32x4 + my_f32_count
}

pub fn ok_in_prose() -> &'static str {
    // f32 mentioned in a comment never fires
    "uses f32 internally"
}

pub fn ok_pragma() -> u32 {
    // hotgauge-lint: allow(L003, "fixture: FFI boundary needs the width")
    f32::MANTISSA_DIGITS
}
