// L010 fixture: scoped-concurrency hygiene. Linted under a synthetic
// crates/thermal/src path (kernel scope); never compiled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

pub fn bad_seqcst(flag: &AtomicU64) -> u64 {
    flag.load(Ordering::SeqCst) // line 8: fires (SeqCst without pragma)
}

pub fn ok_counter_relaxed(iter_count: &AtomicU64) {
    // Counter-named atomics tally telemetry; Relaxed is the demanded order.
    iter_count.fetch_add(1, Ordering::Relaxed);
}

pub fn ok_hoisted_lock(shared: &Mutex<f64>, n: usize) -> f64 {
    // Guard acquired once outside the loop: the demanded shape.
    let guard = shared.lock();
    let base = guard.map(|g| *g).unwrap_or_default();
    let mut acc = 0.0;
    for i in 0..n {
        acc += base + i as f64;
    }
    acc
}
