//! L006 fixture: telemetry label discipline. Expected firing lines are
//! asserted in tests/rules_fixtures.rs.

fn bad_labels() {
    let _a = span!("Thermal.step"); // fires: uppercase first segment
    let _b = span!("plain"); // fires: no namespace dot
    counter!("sweep.Jobs", 1u64); // fires: uppercase in second segment
    counter!("thermal cg", 2u64); // fires: space instead of dot
    counter!("thermal..step", 3u64); // fires: empty segment
}

fn good_labels() {
    let _a = span!("stage.thermal");
    let _b = span!("sweep.arena_2x");
    counter!("thermal.cg_iterations", 4u64);
    // hotgauge-lint: allow(L006, "legacy label kept for dashboard continuity")
    let _c = span!("LEGACY");
}
