// L008 fixture: unsafe hygiene. Linted under a synthetic crates/<lib>/src
// path; never compiled.

pub fn bad_unsafe(p: *const u8) -> u8 {
    unsafe { *p } // line 5: fires (no SAFETY comment)
}

pub fn ok_unsafe(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads (fixture).
    unsafe { *p }
}

pub struct AcrossThreads(pub *const u8);

// SAFETY: the pointer is never dereferenced off its owning thread; an
// attribute line between comment and item must not break the association.
#[allow(clippy::non_send_fields_in_send_ty)]
unsafe impl Send for AcrossThreads {}

pub fn ok_in_prose() -> &'static str {
    // unsafe { *p } mentioned in a comment never fires
    "unsafe { *p }"
}
