// Pragma fixture: malformed `hotgauge-lint:` comments, each reported as an
// L000 meta-diagnostic so typo'd grants never silently change behavior.

// hotgauge-lint: allow(L001)
pub fn missing_justification() {}

// hotgauge-lint: allow(L001, "")
pub fn empty_justification() {}

// hotgauge-lint: allow(L999, "this rule does not exist")
pub fn unknown_rule() {}

// hotgauge-lint: suppress everything please
pub fn no_clause() {}
