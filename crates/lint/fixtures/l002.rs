// L002 fixture: telemetry outside the facade. Linted under a synthetic
// non-telemetry, non-bench path; never compiled.

pub fn bad_instant() -> std::time::Instant {
    std::time::Instant::now() // line 5: fires
}

#[cfg(feature = "telemetry")] // line 8: fires (raw cfg gate)
pub fn bad_cfg_gate() {}

pub fn ok_string_mention() -> &'static str {
    // The raw line contains the feature needle, but there is no `cfg` in
    // the masked code, so this must not fire.
    r#"feature = "telemetry""#
}
