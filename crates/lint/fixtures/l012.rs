// L012 fixture: pragma hygiene. Linted under a synthetic crates/core/src
// path; never compiled.

// hotgauge-lint: allow(L003, "fixture: stale grant, nothing below uses f32")
pub fn stale_grant() -> f64 {
    // The grant above suppresses nothing: line 4 fires L012.
    0.5
}

pub fn used_grant() -> f64 {
    // hotgauge-lint: allow(L005, "fixture: quarantined literal kept for doc parity")
    80.0
}
