// L007 fixture: per-iteration heap allocation inside `for` bodies of a
// thermal kernel module. Linted under a synthetic crates/thermal/src path;
// never compiled.

pub fn bad_alloc_in_loop(n: usize) -> f64 {
    let mut acc = 0.0;
    for i in 0..n {
        let scratch: Vec<f64> = Vec::new();
        let row = vec![0.0f64; i + 1];
        let idx: Vec<usize> = (0..i).collect();
        acc += scratch.len() as f64 + row.len() as f64 + idx.len() as f64;
    }
    acc
}

pub fn ok_alloc_outside_loop(n: usize) -> f64 {
    // Hoisted scratch is exactly the pattern the rule demands.
    let mut scratch: Vec<f64> = Vec::with_capacity(n);
    let seed: Vec<usize> = (0..n).collect();
    for &i in &seed {
        scratch.push(i as f64);
    }
    scratch.iter().sum()
}

pub struct Holder;

impl Iterator for Holder {
    // An `impl ... for ...` body is not a loop body: this allocation in a
    // method outside any `for` must not fire.
    type Item = Vec<f64>;
    fn next(&mut self) -> Option<Vec<f64>> {
        Some(Vec::new())
    }
}

pub fn ok_pragma(n: usize) -> usize {
    let mut total = 0;
    for i in 0..n {
        // hotgauge-lint: allow(L007, "fixture: geometry-change slow path, runs once per rebuild")
        let cold: Vec<usize> = (0..i).collect();
        total += cold.len();
    }
    total
}

pub fn ok_in_prose() -> &'static str {
    // for x in xs { Vec::new() } mentioned in a comment never fires
    "for x in xs { let v = vec![1]; }"
}
