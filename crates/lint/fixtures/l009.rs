// L009 fixture: hash-container iteration in a numeric kernel crate. Linted
// under a synthetic crates/core/src path; never compiled.

use std::collections::{BTreeMap, HashMap};

pub fn bad_hash_iteration(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().sum() // line 7: fires (hash iteration order)
}

pub fn ok_keyed_access(weights: &HashMap<u32, f64>, key: u32) -> f64 {
    // get/insert/entry are keyed and deterministic: not policed.
    weights.get(&key).copied().unwrap_or(0.0)
}

pub fn ok_btree_iteration(ordered: &BTreeMap<u32, f64>) -> f64 {
    // BTreeMap iterates in key order: exactly the demanded replacement.
    ordered.values().sum()
}

pub fn ok_vec_iteration(rows: &[f64]) -> f64 {
    let values: Vec<f64> = rows.to_vec();
    values.iter().sum()
}
