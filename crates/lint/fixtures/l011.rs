// L011 fixture: per-iteration heap allocation, token-aware. Linted under a
// synthetic crates/thermal/src path; never compiled. The old masked-text
// L007 only saw `for` bodies; the firing line below sits in a `while` body
// the substring matcher was blind to.

pub fn bad_alloc_in_while(n: usize) -> usize {
    let mut i = 0;
    let mut total = 0;
    while i < n {
        let scratch: Vec<usize> = (0..i).collect(); // line 10: fires
        total += scratch.len();
        i += 1;
    }
    total
}

pub fn ok_alloc_outside_loop(n: usize) -> f64 {
    // Hoisted scratch is exactly the pattern the rule demands.
    let mut scratch: Vec<f64> = Vec::with_capacity(n);
    let seed: Vec<usize> = (0..n).collect();
    for &i in &seed {
        scratch.push(i as f64);
    }
    scratch.iter().sum()
}

pub fn ok_pragma(rows: &[f64]) -> f64 {
    rows.iter()
        .map(|&r| {
            // hotgauge-lint: allow(L011, "fixture: per-row scratch on the geometry-rebuild slow path")
            let cold: Vec<f64> = vec![r];
            cold.iter().sum::<f64>()
        })
        .sum()
}

pub fn ok_in_prose() -> &'static str {
    // while i < n { Vec::new() } mentioned in a comment never fires
    "loop { let v = vec![1]; }"
}
