// L004 fixture: concurrency policy. Linted under a synthetic
// crates/<lib>/src path; never compiled.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;

pub fn bad_spawn() {
    std::thread::spawn(|| {}); // line 9: fires (detached thread)
}

pub struct BadShared {
    pub tx: Arc<Sender<u32>>, // line 13: fires (shared channel endpoint)
}

pub fn bad_ordering(hits: &AtomicU64) -> u64 {
    hits.fetch_add(1) // line 17: fires (no Ordering argument)
}

pub fn ok_scoped() {
    std::thread::scope(|s| {
        s.spawn(|| {});
    });
}

pub struct Replay;

impl Replay {
    fn load(&self, _slot: usize) -> u64 {
        0
    }
}

pub fn ok_plain_load(r: &Replay) -> u64 {
    r.load(3)
}

pub fn ok_ordering(hits: &AtomicU64) -> u64 {
    hits.fetch_add(1, Ordering::Relaxed)
}

pub fn bad_cas(state: &AtomicU64) {
    let _ = state.compare_exchange(0, 1, Ordering::AcqRel); // line 43: fires (failure ordering missing)
}

pub fn ok_cas(state: &AtomicU64) {
    let _ = state.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);
}

pub fn ok_fetch_update(state: &AtomicU64) {
    let _ = state.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v + 1));
}
