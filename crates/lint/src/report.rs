//! Output formats and baseline diffing for the lint driver.
//!
//! Three renderings of the same diagnostic list: plain text (the default),
//! a JSON report (`--format json`), and SARIF 2.1.0 (`--format sarif`) for
//! CI annotation upload. All JSON is built as explicit ordered
//! [`Value`](serde::Value) trees so field order is deterministic and keys
//! like `$schema` (not expressible as a derive field name) come out right.
//!
//! The baseline machinery grandfathers known findings: a checked-in file
//! records per-`(file, rule)` counts, `--baseline` subtracts them, and only
//! the excess fails CI. Counts (not line numbers) are the key so unrelated
//! edits that shift lines don't churn the baseline; shrinking a count below
//! its grandfathered level is surfaced as burn-down so the file can be
//! ratcheted tight.

use serde::Value;

use crate::rules::severity_of;
use crate::{Diagnostic, POLICY_VERSION, RULES};

fn map(entries: Vec<(&str, Value)>) -> Value {
    Value::Map(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn s(text: &str) -> Value {
    Value::Str(text.to_string())
}

/// The JSON report: policy metadata plus the full diagnostic list.
pub fn json_report(diags: &[Diagnostic]) -> Value {
    map(vec![
        ("policy_version", s(POLICY_VERSION)),
        ("rule_count", Value::U64(RULES.len() as u64)),
        ("violations", Value::U64(diags.len() as u64)),
        (
            "diagnostics",
            Value::Seq(
                diags
                    .iter()
                    .map(|d| {
                        map(vec![
                            ("file", s(&d.file)),
                            ("line", Value::U64(d.line as u64)),
                            ("rule", s(&d.rule)),
                            ("severity", s(&d.severity)),
                            ("message", s(&d.message)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// A minimal-but-valid SARIF 2.1.0 log: one run, the full rule catalogue
/// under `tool.driver.rules`, one `result` per diagnostic with rule id,
/// level, message, and a physical location (workspace-relative URI plus
/// start line).
pub fn sarif_report(diags: &[Diagnostic]) -> Value {
    let rules = RULES
        .iter()
        .map(|r| {
            map(vec![
                ("id", s(r.id)),
                ("shortDescription", map(vec![("text", s(r.summary))])),
                (
                    "defaultConfiguration",
                    map(vec![("level", s(r.severity.as_str()))]),
                ),
            ])
        })
        .collect();
    let results = diags
        .iter()
        .map(|d| {
            map(vec![
                ("ruleId", s(&d.rule)),
                ("level", s(&d.severity)),
                ("message", map(vec![("text", s(&d.message))])),
                (
                    "locations",
                    Value::Seq(vec![map(vec![(
                        "physicalLocation",
                        map(vec![
                            ("artifactLocation", map(vec![("uri", s(&d.file))])),
                            (
                                "region",
                                map(vec![("startLine", Value::U64(d.line as u64))]),
                            ),
                        ]),
                    )])]),
                ),
            ])
        })
        .collect();
    map(vec![
        (
            "$schema",
            s("https://json.schemastore.org/sarif-2.1.0.json"),
        ),
        ("version", s("2.1.0")),
        (
            "runs",
            Value::Seq(vec![map(vec![
                (
                    "tool",
                    map(vec![(
                        "driver",
                        map(vec![
                            ("name", s("hotgauge-lint")),
                            ("semanticVersion", s(POLICY_VERSION)),
                            ("informationUri", s("DESIGN.md")),
                            ("rules", Value::Seq(rules)),
                        ]),
                    )]),
                ),
                ("results", Value::Seq(results)),
            ])]),
        ),
    ])
}

/// One grandfathered finding group: `count` findings of `rule` in `file`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Workspace-relative path.
    pub file: String,
    /// Rule id.
    pub rule: String,
    /// How many findings of this rule in this file are grandfathered.
    pub count: usize,
}

/// A parsed baseline file.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Policy version the baseline was written under.
    pub policy_version: String,
    /// Grandfathered finding groups, sorted (file, rule).
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Capture the current diagnostic list as a baseline.
    pub fn from_diagnostics(diags: &[Diagnostic]) -> Baseline {
        let mut entries: Vec<BaselineEntry> = Vec::new();
        for d in diags {
            match entries
                .iter_mut()
                .find(|e| e.file == d.file && e.rule == d.rule)
            {
                Some(e) => e.count += 1,
                None => entries.push(BaselineEntry {
                    file: d.file.clone(),
                    rule: d.rule.clone(),
                    count: 1,
                }),
            }
        }
        entries.sort_by(|a, b| (&a.file, &a.rule).cmp(&(&b.file, &b.rule)));
        Baseline {
            policy_version: POLICY_VERSION.to_string(),
            entries,
        }
    }

    /// Parse a baseline from its JSON text.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value: Value =
            serde_json::from_str(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        let policy_version = value
            .get("policy_version")
            .and_then(Value::as_str)
            .ok_or("baseline missing string field `policy_version`")?
            .to_string();
        let mut entries = Vec::new();
        for entry in value
            .get("entries")
            .and_then(Value::as_seq)
            .ok_or("baseline missing array field `entries`")?
        {
            let file = entry
                .get("file")
                .and_then(Value::as_str)
                .ok_or("baseline entry missing `file`")?;
            let rule = entry
                .get("rule")
                .and_then(Value::as_str)
                .ok_or("baseline entry missing `rule`")?;
            let count = entry
                .get("count")
                .and_then(Value::as_u64)
                .ok_or("baseline entry missing `count`")? as usize;
            entries.push(BaselineEntry {
                file: file.to_string(),
                rule: rule.to_string(),
                count,
            });
        }
        entries.sort_by(|a, b| (&a.file, &a.rule).cmp(&(&b.file, &b.rule)));
        Ok(Baseline {
            policy_version,
            entries,
        })
    }

    /// Render the baseline as an ordered JSON tree.
    pub fn to_json(&self) -> Value {
        map(vec![
            ("schema_version", Value::U64(1)),
            ("policy_version", s(&self.policy_version)),
            (
                "entries",
                Value::Seq(
                    self.entries
                        .iter()
                        .map(|e| {
                            map(vec![
                                ("file", s(&e.file)),
                                ("rule", s(&e.rule)),
                                ("count", Value::U64(e.count as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Grandfathered count for a `(file, rule)` group.
    fn grandfathered(&self, file: &str, rule: &str) -> usize {
        self.entries
            .iter()
            .find(|e| e.file == file && e.rule == rule)
            .map(|e| e.count)
            .unwrap_or(0)
    }
}

/// The result of diffing current diagnostics against a baseline.
#[derive(Debug, Clone, Default)]
pub struct BaselineDiff {
    /// Findings beyond the grandfathered counts — these fail CI.
    pub new: Vec<Diagnostic>,
    /// `(file, rule, grandfathered, current)` groups whose current count
    /// dropped below the baseline: candidates for ratcheting the baseline.
    pub burned_down: Vec<(String, String, usize, usize)>,
}

/// Diff `diags` (sorted by the driver) against `base`. Within a
/// `(file, rule)` group the first `grandfathered` findings in line order
/// are absorbed; the rest are new.
pub fn diff_against_baseline(diags: &[Diagnostic], base: &Baseline) -> BaselineDiff {
    let mut diff = BaselineDiff::default();
    let mut counts: Vec<(String, String, usize)> = Vec::new();
    for d in diags {
        let seen = match counts
            .iter_mut()
            .find(|(f, r, _)| f == &d.file && r == &d.rule)
        {
            Some((_, _, n)) => {
                *n += 1;
                *n
            }
            None => {
                counts.push((d.file.clone(), d.rule.clone(), 1));
                1
            }
        };
        if seen > base.grandfathered(&d.file, &d.rule) {
            diff.new.push(d.clone());
        }
    }
    for e in &base.entries {
        let current = counts
            .iter()
            .find(|(f, r, _)| f == &e.file && r == &e.rule)
            .map(|&(_, _, n)| n)
            .unwrap_or(0);
        if current < e.count {
            diff.burned_down
                .push((e.file.clone(), e.rule.clone(), e.count, current));
        }
    }
    diff
}

/// Render `severity_of` text for a rule id, for the plain-text printer.
pub fn level_of(rule: &str) -> &'static str {
    severity_of(rule).as_str()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line: usize, rule: &str) -> Diagnostic {
        Diagnostic::new(file, line, rule, format!("{rule} at {file}:{line}"))
    }

    #[test]
    fn baseline_roundtrip_and_diff() {
        let diags = vec![
            diag("a.rs", 3, "L001"),
            diag("a.rs", 9, "L001"),
            diag("b.rs", 1, "L005"),
        ];
        let base = Baseline::from_diagnostics(&diags);
        let text = serde_json::to_string_pretty(&base.to_json()).unwrap();
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed.entries, base.entries);
        assert_eq!(parsed.policy_version, POLICY_VERSION);

        // Same findings: nothing new, nothing burned down.
        let diff = diff_against_baseline(&diags, &parsed);
        assert!(diff.new.is_empty());
        assert!(diff.burned_down.is_empty());

        // One extra L001 in a.rs: exactly the excess is new.
        let mut more = diags.clone();
        more.insert(2, diag("a.rs", 20, "L001"));
        let diff = diff_against_baseline(&more, &parsed);
        assert_eq!(diff.new.len(), 1);
        assert_eq!(diff.new[0].line, 20);

        // One fewer L001: burn-down is reported, nothing is new.
        let fewer = vec![diag("a.rs", 3, "L001"), diag("b.rs", 1, "L005")];
        let diff = diff_against_baseline(&fewer, &parsed);
        assert!(diff.new.is_empty());
        assert_eq!(
            diff.burned_down,
            vec![("a.rs".to_string(), "L001".to_string(), 2, 1)]
        );
    }

    #[test]
    fn sarif_shape() {
        let diags = vec![diag("crates/x/src/lib.rs", 7, "L008")];
        let sarif = sarif_report(&diags);
        assert_eq!(sarif.get("version").and_then(Value::as_str), Some("2.1.0"));
        let run = &sarif.get("runs").and_then(Value::as_seq).unwrap()[0];
        let driver = run.get("tool").unwrap().get("driver").unwrap();
        assert_eq!(
            driver.get("name").and_then(Value::as_str),
            Some("hotgauge-lint")
        );
        assert_eq!(
            driver.get("rules").and_then(Value::as_seq).unwrap().len(),
            RULES.len()
        );
        let result = &run.get("results").and_then(Value::as_seq).unwrap()[0];
        assert_eq!(result.get("ruleId").and_then(Value::as_str), Some("L008"));
        assert_eq!(result.get("level").and_then(Value::as_str), Some("error"));
        let loc = &result.get("locations").and_then(Value::as_seq).unwrap()[0];
        let phys = loc.get("physicalLocation").unwrap();
        assert_eq!(
            phys.get("artifactLocation")
                .unwrap()
                .get("uri")
                .and_then(Value::as_str),
            Some("crates/x/src/lib.rs")
        );
        assert_eq!(
            phys.get("region")
                .unwrap()
                .get("startLine")
                .and_then(Value::as_u64),
            Some(7)
        );
    }
}
