//! CLI entry point: `cargo run -p hotgauge-lint -- [--root PATH]
//! [--format text|json|sarif] [--baseline FILE] [--write-baseline FILE]`.
//!
//! Exit codes: 0 clean (or all findings grandfathered by the baseline),
//! 1 non-baseline violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use hotgauge_lint::report::{diff_against_baseline, json_report, sarif_report, Baseline};
use hotgauge_lint::{find_workspace_root, run_lint, POLICY_VERSION, RULES, RULE_COUNT};

const USAGE: &str = "usage: hotgauge-lint [--root PATH] [--format text|json|sarif] [--json]
                     [--baseline FILE] [--write-baseline FILE] [--list-rules]

Scans the HotGauge workspace sources and enforces policy v4 (L001..L012).
  --format sarif        emit a SARIF 2.1.0 log on stdout
  --format json         emit a JSON report (--json is an alias)
  --baseline FILE       grandfather the findings recorded in FILE; only
                        findings beyond the recorded (file, rule) counts fail
  --write-baseline FILE capture current findings as a new baseline and exit 0
Exit codes: 0 = clean/no non-baseline findings, 1 = violations, 2 = usage/I/O error.";

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some("sarif") => format = Format::Sarif,
                Some(other) => {
                    return usage_error(&format!(
                        "unknown format `{other}` (expected text, json, or sarif)"
                    ))
                }
                None => return usage_error("--format requires an argument"),
            },
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root requires a path argument"),
            },
            "--baseline" => match args.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage_error("--baseline requires a path argument"),
            },
            "--write-baseline" => match args.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => return usage_error("--write-baseline requires a path argument"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if list_rules {
        println!("hotgauge-lint policy v{POLICY_VERSION} ({RULE_COUNT} rules)");
        for rule in RULES {
            println!(
                "  {} [{}]: {}",
                rule.id,
                rule.severity.as_str(),
                rule.summary
            );
        }
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("hotgauge-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "hotgauge-lint: no workspace root (Cargo.toml + crates/) found above \
                         {}; pass --root",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let scanned = match hotgauge_lint::discover_files(&root) {
        Ok(files) => files.len(),
        Err(e) => {
            eprintln!("hotgauge-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let diagnostics = match run_lint(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("hotgauge-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = write_baseline {
        let base = Baseline::from_diagnostics(&diagnostics);
        let text = match serde_json::to_string_pretty(&base.to_json()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("hotgauge-lint: failed to serialize baseline: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&path, text + "\n") {
            eprintln!("hotgauge-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "hotgauge-lint: wrote baseline with {} grandfathered finding(s) to {}",
            diagnostics.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    // With a baseline, only the excess over grandfathered counts gates.
    let (gating, burned_down) = match &baseline_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("hotgauge-lint: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let base = match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("hotgauge-lint: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            if base.policy_version != POLICY_VERSION {
                eprintln!(
                    "hotgauge-lint: baseline {} was written under policy v{}, tool enforces \
                     v{POLICY_VERSION}; regenerate with --write-baseline",
                    path.display(),
                    base.policy_version
                );
                return ExitCode::from(2);
            }
            let diff = diff_against_baseline(&diagnostics, &base);
            (diff.new, diff.burned_down)
        }
        None => (diagnostics.clone(), Vec::new()),
    };

    match format {
        Format::Json => {
            let report = json_report(&gating);
            match serde_json::to_string_pretty(&report) {
                Ok(s) => println!("{s}"),
                Err(e) => {
                    eprintln!("hotgauge-lint: failed to serialize report: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        Format::Sarif => {
            let report = sarif_report(&gating);
            match serde_json::to_string_pretty(&report) {
                Ok(s) => println!("{s}"),
                Err(e) => {
                    eprintln!("hotgauge-lint: failed to serialize SARIF: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        Format::Text => {
            for d in &gating {
                println!("{d}");
            }
            for (file, rule, grandfathered, current) in &burned_down {
                println!(
                    "hotgauge-lint: burn-down: {file} {rule} down to {current} from \
                     {grandfathered} grandfathered — ratchet the baseline"
                );
            }
            let files: std::collections::BTreeSet<&str> =
                gating.iter().map(|d| d.file.as_str()).collect();
            let suffix = if baseline_path.is_some() {
                " beyond baseline"
            } else {
                ""
            };
            println!(
                "hotgauge-lint: {} violation(s){suffix} in {} of {scanned} file(s) scanned; \
                 policy v{POLICY_VERSION} ({RULE_COUNT} rules)",
                gating.len(),
                files.len()
            );
        }
    }

    if gating.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("hotgauge-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
