//! CLI entry point: `cargo run -p hotgauge-lint -- [--root PATH] [--json]`.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use hotgauge_lint::{find_workspace_root, run_lint, POLICY_VERSION, RULES, RULE_COUNT};

const USAGE: &str = "usage: hotgauge-lint [--root PATH] [--json] [--list-rules]

Scans the HotGauge workspace sources and enforces policy rules L001..L005.
Exit codes: 0 = clean, 1 = violations, 2 = usage/I/O error.";

fn main() -> ExitCode {
    let mut json = false;
    let mut list_rules = false;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--list-rules" => list_rules = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_error("--root requires a path argument"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if list_rules {
        println!("hotgauge-lint policy v{POLICY_VERSION} ({RULE_COUNT} rules)");
        for rule in RULES {
            println!("  {}: {}", rule.id, rule.summary);
        }
        return ExitCode::SUCCESS;
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("hotgauge-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "hotgauge-lint: no workspace root (Cargo.toml + crates/) found above \
                         {}; pass --root",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let scanned = match hotgauge_lint::discover_files(&root) {
        Ok(files) => files.len(),
        Err(e) => {
            eprintln!("hotgauge-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let diagnostics = match run_lint(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("hotgauge-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        #[derive(serde::Serialize)]
        struct Report<'a> {
            policy_version: &'a str,
            rule_count: usize,
            violation_count: usize,
            violations: &'a [hotgauge_lint::Diagnostic],
        }
        let report = Report {
            policy_version: POLICY_VERSION,
            rule_count: RULE_COUNT,
            violation_count: diagnostics.len(),
            violations: &diagnostics,
        };
        match serde_json::to_string_pretty(&report) {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("hotgauge-lint: failed to serialize report: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        for d in &diagnostics {
            println!("{d}");
        }
        let files: std::collections::BTreeSet<&str> =
            diagnostics.iter().map(|d| d.file.as_str()).collect();
        println!(
            "hotgauge-lint: {} violation(s) in {} of {scanned} file(s) scanned; \
             policy v{POLICY_VERSION} ({RULE_COUNT} rules)",
            diagnostics.len(),
            files.len()
        );
    }

    if diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("hotgauge-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
