//! Token-stream lexer and brace-tree scope layer.
//!
//! The v4 rule engine works on real tokens instead of masked-text substring
//! scans: [`FileModel::build`] lexes a source file into a flat token stream
//! (identifiers, numbers, lifetimes, joined punctuation, and literal/comment
//! trivia, each with char-offset spans and line numbers) and then
//! brace-matches the stream into a scope tree, classifying every `{...}`
//! body as a function, loop, closure, `unsafe` block, `impl`, and so on.
//! Rules ask "what encloses this token?" instead of guessing from line text.
//!
//! The lexer's literal and comment recognition is intentionally independent
//! of [`scan`](crate::scan)'s masking pass: the two are differential-tested
//! against each other (`tests/mask_lexer_agreement.rs`), so a bug in either
//! literal scanner surfaces as an extent mismatch instead of a silent
//! mis-lint.

/// What a token is. Literal and comment kinds carry no interior structure —
/// rules never look inside them, which is the point: code that lives in a
/// string or comment can never match a rule pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`for`, `unsafe`, `Vec`, ...).
    Ident,
    /// Lifetime or loop label (`'a`, `'outer`).
    Lifetime,
    /// Numeric literal (`1.0`, `100e-6`, `0x1f`, including suffixes).
    Number,
    /// Punctuation; common two/three-char operators are joined (`::`, `->`,
    /// `=>`, `..`, `&&`, `||`, ...), except the shift family (so nested
    /// generics `Vec<Vec<f64>>` close with two `>` tokens).
    Punct,
    /// String or byte-string literal, prefix and quotes included.
    Str,
    /// Raw or raw-byte string literal, prefix, hashes, and quotes included.
    RawStr,
    /// Char or byte-char literal, prefix and quotes included.
    Char,
    /// `//`-to-end-of-line comment (includes doc comments).
    LineComment,
    /// `/* ... */` comment, nesting-aware.
    BlockComment,
}

impl TokenKind {
    /// Trivia never participates in scope structure or rule token patterns.
    pub fn is_trivia(self) -> bool {
        matches!(self, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Kinds the masking pass blanks out; the agreement proptest compares
    /// these extents against [`scan`](crate::scan)'s.
    pub fn is_masked(self) -> bool {
        matches!(
            self,
            TokenKind::Str
                | TokenKind::RawStr
                | TokenKind::Char
                | TokenKind::LineComment
                | TokenKind::BlockComment
        )
    }
}

/// One token with its span. Offsets are char indices into the source (the
/// same coordinate system [`scan`](crate::scan)'s masker uses), `end`
/// exclusive.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Char offset of the first char.
    pub start: usize,
    /// Char offset one past the last char.
    pub end: usize,
    /// Zero-based line of `start`.
    pub line: usize,
    /// The token's text. For `Str`/`RawStr` trivia this is the full literal
    /// including delimiters; rules only use it for comments (`// SAFETY:`).
    pub text: String,
}

/// What kind of code body a brace scope is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// The file itself (scope 0, never closed).
    Root,
    /// `fn name(...) { ... }` (incl. `unsafe fn`).
    Fn,
    /// `for pat in expr { ... }`.
    ForLoop,
    /// `while cond { ... }` / `while let ... { ... }`.
    WhileLoop,
    /// `loop { ... }`.
    Loop,
    /// A braced closure body (`|x| { ... }`, `move || { ... }`).
    Closure,
    /// `unsafe { ... }`.
    Unsafe,
    /// `impl ... { ... }` (incl. `unsafe impl ... for ...`).
    Impl,
    /// `trait ... { ... }`.
    Trait,
    /// `mod name { ... }`.
    Mod,
    /// `match expr { ... }`.
    Match,
    /// `struct`/`enum`/`union` body.
    Struct,
    /// Anything else: `if`/`else` arms, bare blocks, struct literals, match
    /// arm bodies.
    Block,
}

impl ScopeKind {
    /// Loop bodies proper: code here runs once per iteration.
    pub fn is_loop(self) -> bool {
        matches!(
            self,
            ScopeKind::ForLoop | ScopeKind::WhileLoop | ScopeKind::Loop
        )
    }
}

/// One brace scope: `tokens[open_tok]` is the `{`, `tokens[close_tok]` the
/// matching `}` (or one past the last token when unclosed at EOF).
#[derive(Debug, Clone)]
pub struct Scope {
    /// Body classification.
    pub kind: ScopeKind,
    /// Index of the enclosing scope in [`FileModel::scopes`] (self for root).
    pub parent: usize,
    /// Token index of the opening `{` (0 for root).
    pub open_tok: usize,
    /// Token index of the closing `}`, or `tokens.len()` when unclosed.
    pub close_tok: usize,
}

/// The lexed and scope-resolved view of one source file.
#[derive(Debug)]
pub struct FileModel {
    /// The token stream, trivia included, in source order.
    pub tokens: Vec<Token>,
    /// The scope tree; `scopes[0]` is the file root.
    pub scopes: Vec<Scope>,
    /// Innermost scope index per token.
    scope_of: Vec<u32>,
}

impl FileModel {
    /// Lex `src` and build its scope tree.
    pub fn build(src: &str) -> FileModel {
        let tokens = lex(src);
        let (scopes, scope_of) = build_scopes(&tokens);
        FileModel {
            tokens,
            scopes,
            scope_of,
        }
    }

    /// Innermost scope containing token `tok`.
    pub fn scope_of(&self, tok: usize) -> &Scope {
        &self.scopes[self.scope_of[tok] as usize]
    }

    /// Walks the scope chain of `tok` from innermost to root.
    pub fn scope_chain(&self, tok: usize) -> ScopeChain<'_> {
        ScopeChain {
            model: self,
            next: Some(self.scope_of[tok] as usize),
        }
    }

    /// Is `tok` inside a `for`/`while`/`loop` body (at any nesting depth)?
    pub fn in_loop(&self, tok: usize) -> bool {
        self.scope_chain(tok).any(|s| s.kind.is_loop())
    }

    /// Is `tok` inside a loop body or a braced closure body? This is the
    /// "hot context" L011 polices: closure bodies in kernel modules are
    /// per-row/per-shard callbacks, so they price like loop bodies.
    pub fn in_loop_or_closure(&self, tok: usize) -> bool {
        self.scope_chain(tok)
            .any(|s| s.kind.is_loop() || s.kind == ScopeKind::Closure)
    }

    /// The next non-trivia token at or after `from`.
    pub fn next_code(&self, from: usize) -> Option<usize> {
        (from..self.tokens.len()).find(|&i| !self.tokens[i].kind.is_trivia())
    }

    /// The previous non-trivia token strictly before `at`.
    pub fn prev_code(&self, at: usize) -> Option<usize> {
        (0..at).rev().find(|&i| !self.tokens[i].kind.is_trivia())
    }

    /// Does the non-trivia token sequence starting at `from` spell exactly
    /// `texts`? Trivia between code tokens is skipped.
    pub fn matches_seq(&self, from: usize, texts: &[&str]) -> bool {
        let mut at = from;
        for want in texts {
            match self.next_code(at) {
                Some(i) if self.tokens[i].text == *want => at = i + 1,
                _ => return false,
            }
        }
        true
    }
}

/// Iterator over a token's enclosing scopes, innermost first, root last.
#[derive(Debug)]
pub struct ScopeChain<'a> {
    model: &'a FileModel,
    next: Option<usize>,
}

impl<'a> Iterator for ScopeChain<'a> {
    type Item = &'a Scope;
    fn next(&mut self) -> Option<&'a Scope> {
        let ix = self.next?;
        let scope = &self.model.scopes[ix];
        self.next = if scope.parent == ix {
            None
        } else {
            Some(scope.parent)
        };
        Some(scope)
    }
}

/// Multi-char punctuation joined into one token, longest first. The shift
/// family (`<<`, `>>`, and their assign forms) is deliberately absent so
/// `Vec<Vec<f64>>` closes with two `>` tokens.
const JOINED_PUNCT: &[&str] = &[
    "..=", "...", "::", "->", "=>", "..", "&&", "||", "==", "!=", "<=", ">=", "+=", "-=", "*=",
    "/=", "%=", "^=", "|=", "&=",
];

/// Lex `src` into tokens. Literal/comment recognition mirrors the language
/// rules the masker implements (same lifetime-vs-char disambiguation, same
/// raw-string hash matching) but is written independently so the agreement
/// proptest is a real differential test.
pub fn lex(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut out: Vec<Token> = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            push(&mut out, TokenKind::LineComment, start, i, line, &chars);
            continue;
        }
        // Block comment, nesting-aware; may span lines.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            push(
                &mut out,
                TokenKind::BlockComment,
                start,
                i,
                start_line,
                &chars,
            );
            continue;
        }
        // Raw / byte string prefixes, only off an identifier boundary
        // (`her#"x"#`-style identifiers must not start a literal).
        let prev_is_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
        if !prev_is_ident && (c == 'r' || c == 'b') {
            let mut j = i;
            if chars[j] == 'b' {
                j += 1;
            }
            if chars.get(j) == Some(&'r') {
                j += 1;
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    let start = i;
                    let start_line = line;
                    i = j + 1;
                    while i < chars.len() {
                        if chars[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                i += 1 + hashes;
                                break;
                            }
                        }
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    push(&mut out, TokenKind::RawStr, start, i, start_line, &chars);
                    continue;
                }
                // `r`/`br` without a quote: fall through to identifier.
            } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                let start = i;
                let start_line = line;
                i += 1;
                lex_string(&chars, &mut i, &mut line);
                push(&mut out, TokenKind::Str, start, i, start_line, &chars);
                continue;
            } else if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                let start = i;
                i += 1;
                lex_char(&chars, &mut i);
                push(&mut out, TokenKind::Char, start, i, line, &chars);
                continue;
            }
        }
        if c == '"' {
            let start = i;
            let start_line = line;
            lex_string(&chars, &mut i, &mut line);
            push(&mut out, TokenKind::Str, start, i, start_line, &chars);
            continue;
        }
        if c == '\'' {
            // Lifetime vs char literal: `'\...'` and `'x'` are literals;
            // anything else (`'static`, `'a>`) is a lifetime or label.
            let is_escape = chars.get(i + 1) == Some(&'\\');
            let is_simple = chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'');
            if is_escape || is_simple {
                let start = i;
                lex_char(&chars, &mut i);
                push(&mut out, TokenKind::Char, start, i, line, &chars);
            } else {
                let start = i;
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                push(&mut out, TokenKind::Lifetime, start, i, line, &chars);
            }
            continue;
        }
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            push(&mut out, TokenKind::Ident, start, i, line, &chars);
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let radix_prefixed =
                c == '0' && matches!(chars.get(i + 1), Some('x') | Some('b') | Some('o'));
            i += 1;
            loop {
                match chars.get(i) {
                    Some(&d) if d.is_alphanumeric() || d == '_' => {
                        // `1e-3`: a sign directly after a decimal exponent
                        // marker continues the literal (`0x1e-3` is `0x1e`
                        // minus `3`, so radix-prefixed literals never do).
                        i += 1;
                        if !radix_prefixed
                            && (d == 'e' || d == 'E')
                            && matches!(chars.get(i), Some('+') | Some('-'))
                            && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit())
                        {
                            i += 1;
                        }
                    }
                    // A `.` continues the number only when a digit follows
                    // (so `0..n` stays a range and `1.max(2)` a method call).
                    Some('.') if chars.get(i + 1).is_some_and(|n| n.is_ascii_digit()) => {
                        i += 1;
                    }
                    _ => break,
                }
            }
            push(&mut out, TokenKind::Number, start, i, line, &chars);
            continue;
        }
        // Punctuation: try the joined spellings longest-first.
        let joined = JOINED_PUNCT.iter().find(|op| {
            op.chars()
                .enumerate()
                .all(|(k, oc)| chars.get(i + k) == Some(&oc))
        });
        let len = joined.map_or(1, |op| op.chars().count());
        push(&mut out, TokenKind::Punct, i, i + len, line, &chars);
        i += len;
    }
    out
}

fn push(
    out: &mut Vec<Token>,
    kind: TokenKind,
    start: usize,
    end: usize,
    line: usize,
    chars: &[char],
) {
    out.push(Token {
        kind,
        start,
        end,
        line,
        text: chars[start..end.min(chars.len())].iter().collect(),
    });
}

/// Advance past a `"..."` string starting at the opening quote.
fn lex_string(chars: &[char], i: &mut usize, line: &mut usize) {
    *i += 1; // opening quote
    while *i < chars.len() {
        match chars[*i] {
            '\\' => {
                *i += 1;
                if *i < chars.len() {
                    if chars[*i] == '\n' {
                        *line += 1;
                    }
                    *i += 1;
                }
            }
            '"' => {
                *i += 1;
                return;
            }
            '\n' => {
                *line += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
}

/// Advance past a `'...'` char literal starting at the opening quote. A bare
/// newline ends the token without being consumed (malformed literal), so
/// line geometry is never disturbed.
fn lex_char(chars: &[char], i: &mut usize) {
    *i += 1; // opening quote
    while *i < chars.len() {
        match chars[*i] {
            '\\' => {
                *i += 1;
                if *i < chars.len() {
                    if chars[*i] == '\n' {
                        return;
                    }
                    *i += 1;
                }
            }
            '\'' => {
                *i += 1;
                return;
            }
            '\n' => return,
            _ => *i += 1,
        }
    }
}

/// Build the scope tree by brace-matching the token stream. Each `{` is
/// classified from its *header* — the non-trivia tokens since the last
/// statement boundary (`;`, `}`, `{`, depth-0 `,`, or `=>`) — which is how
/// `for x in xs {` and `impl Trait for Type {` are told apart without a
/// parser.
fn build_scopes(tokens: &[Token]) -> (Vec<Scope>, Vec<u32>) {
    let root = Scope {
        kind: ScopeKind::Root,
        parent: 0,
        open_tok: 0,
        close_tok: tokens.len(),
    };
    let mut scopes = vec![root];
    let mut scope_of = vec![0u32; tokens.len()];
    let mut stack: Vec<usize> = vec![0];
    // Header token indices since the last boundary, trivia excluded.
    let mut header: Vec<usize> = Vec::new();
    // Paren/bracket depth: commas inside `(...)`/`[...]` (tuple patterns,
    // call arguments) do not end a statement header.
    let mut group_depth = 0usize;

    for (t, tok) in tokens.iter().enumerate() {
        scope_of[t] = *stack.last().unwrap_or(&0) as u32;
        if tok.kind.is_trivia() {
            continue;
        }
        match (tok.kind, tok.text.as_str()) {
            (TokenKind::Punct, "{") => {
                let kind = classify_header(tokens, &header);
                let parent = *stack.last().unwrap_or(&0);
                scopes.push(Scope {
                    kind,
                    parent,
                    open_tok: t,
                    close_tok: tokens.len(),
                });
                let ix = scopes.len() - 1;
                stack.push(ix);
                scope_of[t] = ix as u32;
                header.clear();
                group_depth = 0;
            }
            (TokenKind::Punct, "}") => {
                if stack.len() > 1 {
                    let ix = stack.pop().unwrap_or(0);
                    scopes[ix].close_tok = t;
                    scope_of[t] = ix as u32;
                }
                header.clear();
                group_depth = 0;
            }
            (TokenKind::Punct, ";") | (TokenKind::Punct, "=>") => {
                header.clear();
                group_depth = 0;
            }
            (TokenKind::Punct, ",") if group_depth == 0 => header.clear(),
            (TokenKind::Punct, "(") | (TokenKind::Punct, "[") => {
                group_depth += 1;
                header.push(t);
            }
            (TokenKind::Punct, ")") | (TokenKind::Punct, "]") => {
                group_depth = group_depth.saturating_sub(1);
                header.push(t);
            }
            _ => header.push(t),
        }
    }
    (scopes, scope_of)
}

/// Decide what body a `{` opens from its header tokens. Documented
/// heuristics, checked in priority order; `Block` is the safe default (a
/// mis-bucketed bare block only makes loop-scoped rules more conservative).
fn classify_header(tokens: &[Token], header: &[usize]) -> ScopeKind {
    let text = |ix: usize| tokens[header[ix]].text.as_str();
    let n = header.len();
    if n == 0 {
        return ScopeKind::Block;
    }
    let last = text(n - 1);
    if last == "unsafe" {
        return ScopeKind::Unsafe;
    }
    // `|x| {`, `move || {`: the closure's parameter list closes right
    // before the body. `|x| -> T {` is caught by the depth-0 `|` plus `->`
    // pair (a bitor in an `if` header has no `->`).
    if last == "|" || last == "||" {
        return ScopeKind::Closure;
    }
    let has = |want: &str| header.iter().any(|&h| tokens[h].text == want);
    if has("|") || has("||") {
        let mut depth = 0usize;
        let mut top_level_bar = false;
        for &h in header {
            match tokens[h].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth = depth.saturating_sub(1),
                "|" | "||" if depth == 0 => top_level_bar = true,
                _ => {}
            }
        }
        if top_level_bar && has("->") {
            return ScopeKind::Closure;
        }
    }
    if has("fn") {
        return ScopeKind::Fn;
    }
    if has("impl") {
        return ScopeKind::Impl;
    }
    if has("trait") {
        return ScopeKind::Trait;
    }
    if has("mod") {
        return ScopeKind::Mod;
    }
    if has("struct") || has("enum") || has("union") {
        return ScopeKind::Struct;
    }
    if has("for") && has("in") {
        return ScopeKind::ForLoop;
    }
    if has("while") {
        return ScopeKind::WhileLoop;
    }
    if has("loop") {
        return ScopeKind::Loop;
    }
    if has("match") {
        return ScopeKind::Match;
    }
    ScopeKind::Block
}
