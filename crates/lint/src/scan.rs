//! Comment/string/raw-string-aware source scanner.
//!
//! The lint runs offline with no `syn`, so rules operate on *masked* source
//! text: a copy of the file in which every comment, string literal, char
//! literal, and raw string has been replaced by spaces (newlines preserved,
//! so byte-for-byte line/column geometry survives). Rule patterns searched
//! in the masked text therefore never fire inside prose or literals.
//!
//! The scanner also extracts `// hotgauge-lint: allow(RULE, "why")` pragmas
//! from comments and brace-matches `#[cfg(test)]` regions so rules that only
//! apply to production code can skip inline test modules.

use std::cell::Cell;

/// A parsed `hotgauge-lint: allow(...)` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Rule identifier, e.g. `L001`.
    pub rule: String,
    /// Mandatory human justification.
    pub justification: String,
    /// Zero-based line the pragma comment appears on.
    pub line: usize,
    /// Set when the grant actually suppressed a diagnostic; L012 flags
    /// grants that never fire so the suppression set stays tight.
    pub used: Cell<bool>,
}

/// What kind of region the masker blanked out. The lexer produces the same
/// taxonomy, and the agreement proptest compares the two extent streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaskKind {
    /// `//` comment (incl. doc comments).
    LineComment,
    /// `/* ... */` comment.
    BlockComment,
    /// Plain or byte string, prefix and quotes included.
    Str,
    /// Raw or raw-byte string, prefix, hashes, and quotes included.
    RawStr,
    /// Char or byte-char literal, prefix and quotes included.
    Char,
}

/// One masked region, as char offsets into the source (`end` exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskExtent {
    /// Char offset of the region's first char.
    pub start: usize,
    /// Char offset one past the region's last char.
    pub end: usize,
    /// Region classification.
    pub kind: MaskKind,
}

/// A malformed pragma found during scanning (reported as a diagnostic).
#[derive(Debug, Clone)]
pub struct PragmaError {
    /// Zero-based line of the offending comment.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

/// Result of scanning one source file.
#[derive(Debug)]
pub struct ScannedFile {
    /// Source lines with comments/strings/chars masked to spaces.
    pub masked: Vec<String>,
    /// Original source lines (needed where the evidence lives inside a
    /// literal, e.g. `feature = "telemetry"` in a `cfg` attribute).
    pub raw: Vec<String>,
    /// Per-line flag: true inside a `#[cfg(test)]`-gated item.
    pub in_test: Vec<bool>,
    /// Parsed pragmas.
    pub pragmas: Vec<Pragma>,
    /// Malformed pragmas.
    pub pragma_errors: Vec<PragmaError>,
    /// Every region the masker blanked, in source order (char offsets).
    pub mask_extents: Vec<MaskExtent>,
    /// Per-line list of (rule) grants derived from pragmas.
    allows: Vec<Vec<usize>>,
}

impl ScannedFile {
    /// Scan `src`, producing masked text, pragmas, and test-region marks.
    pub fn scan(src: &str) -> ScannedFile {
        let (masked_text, comments, mask_extents) = mask(src);
        let raw: Vec<String> = split_lines(src);
        let masked: Vec<String> = split_lines(&masked_text);
        debug_assert_eq!(raw.len(), masked.len());

        let (pragmas, pragma_errors) = parse_pragmas(&comments);
        let in_test = mark_test_regions(&masked_text, masked.len());

        let mut allows: Vec<Vec<usize>> = vec![Vec::new(); masked.len()];
        for (idx, p) in pragmas.iter().enumerate() {
            // A pragma covers the line it sits on; if that line holds nothing
            // but the comment, it covers the next non-blank code line instead
            // (the common "pragma on the preceding line" style).
            if p.line < allows.len() {
                allows[p.line].push(idx);
                let code_on_line = masked
                    .get(p.line)
                    .map(|l| !l.trim().is_empty())
                    .unwrap_or(false);
                if !code_on_line {
                    let mut next = p.line + 1;
                    while next < masked.len() && masked[next].trim().is_empty() {
                        next += 1;
                    }
                    if next < allows.len() {
                        allows[next].push(idx);
                    }
                }
            }
        }

        ScannedFile {
            masked,
            raw,
            in_test,
            pragmas,
            pragma_errors,
            mask_extents,
            allows,
        }
    }

    /// Is `rule` granted on zero-based `line` by a pragma?
    pub fn is_allowed(&self, line: usize, rule: &str) -> bool {
        self.allows
            .get(line)
            .map(|grants| grants.iter().any(|&i| self.pragmas[i].rule == rule))
            .unwrap_or(false)
    }

    /// Like [`is_allowed`](Self::is_allowed), but records that the grant
    /// suppressed a real diagnostic. Rules call this *after* detecting a
    /// violation, so an unfired grant stays unused and L012 can flag it.
    pub fn allow(&self, line: usize, rule: &str) -> bool {
        let mut hit = false;
        if let Some(grants) = self.allows.get(line) {
            for &i in grants {
                if self.pragmas[i].rule == rule {
                    self.pragmas[i].used.set(true);
                    hit = true;
                }
            }
        }
        hit
    }

    /// Full masked text re-joined (used by rules that need to brace-match
    /// across lines, e.g. the atomic-`Ordering` check).
    pub fn masked_text(&self) -> String {
        self.masked.join("\n")
    }
}

/// Split into lines without dropping a trailing empty segment mismatch:
/// `lines()` on "a\n" yields ["a"], matching what editors number.
fn split_lines(s: &str) -> Vec<String> {
    s.lines().map(|l| l.to_string()).collect()
}

/// Mask comments, strings, raw strings, and char literals to spaces.
/// Returns the masked text, every comment's (zero-based line, text), and
/// the char-offset extent of every masked region.
fn mask(src: &str) -> (String, Vec<(usize, String)>, Vec<MaskExtent>) {
    let chars: Vec<char> = src.chars().collect();
    let mut out = String::with_capacity(src.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut extents: Vec<MaskExtent> = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;

    // Push `n` spaces (masking) while keeping the char count identical.
    fn blank(out: &mut String, n: usize) {
        for _ in 0..n {
            out.push(' ');
        }
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            out.push('\n');
            line += 1;
            i += 1;
            continue;
        }
        // Line comment (also swallows doc comments `///` and `//!`).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            comments.push((line, chars[start..i].iter().collect()));
            extents.push(MaskExtent {
                start,
                end: i,
                kind: MaskKind::LineComment,
            });
            blank(&mut out, i - start);
            continue;
        }
        // Block comment, nesting-aware.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start = i;
            let mut depth = 1usize;
            blank(&mut out, 2);
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    blank(&mut out, 2);
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    blank(&mut out, 2);
                    i += 2;
                } else if chars[i] == '\n' {
                    out.push('\n');
                    line += 1;
                    i += 1;
                } else {
                    blank(&mut out, 1);
                    i += 1;
                }
            }
            extents.push(MaskExtent {
                start,
                end: i,
                kind: MaskKind::BlockComment,
            });
            continue;
        }
        // Raw / byte-string prefixes. Only when the previous char can't be
        // part of an identifier (so `her#"x"#`-style idents don't confuse us).
        let prev_is_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
        if !prev_is_ident && (c == 'r' || c == 'b') {
            let mut j = i;
            if chars[j] == 'b' {
                j += 1;
            }
            let is_raw = chars.get(j) == Some(&'r');
            if is_raw {
                j += 1;
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if chars.get(j) == Some(&'"') {
                    let start = i;
                    // Mask prefix + opening quote.
                    blank(&mut out, j + 1 - i);
                    i = j + 1;
                    // Scan for `"` followed by `hashes` hash marks.
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            let mut k = 0usize;
                            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                blank(&mut out, 1 + hashes);
                                i += 1 + hashes;
                                break 'raw;
                            }
                        }
                        if chars[i] == '\n' {
                            out.push('\n');
                            line += 1;
                        } else {
                            blank(&mut out, 1);
                        }
                        i += 1;
                    }
                    extents.push(MaskExtent {
                        start,
                        end: i,
                        kind: MaskKind::RawStr,
                    });
                    continue;
                }
                // `r` / `br` not followed by a raw string: plain identifier.
            } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                let start = i;
                blank(&mut out, 1); // the `b`
                i += 1;
                consume_string(&chars, &mut i, &mut line, &mut out);
                extents.push(MaskExtent {
                    start,
                    end: i,
                    kind: MaskKind::Str,
                });
                continue;
            } else if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                let start = i;
                blank(&mut out, 1); // the `b`
                i += 1;
                consume_char_literal(&chars, &mut i, &mut out);
                extents.push(MaskExtent {
                    start,
                    end: i,
                    kind: MaskKind::Char,
                });
                continue;
            }
        }
        if c == '"' {
            let start = i;
            consume_string(&chars, &mut i, &mut line, &mut out);
            extents.push(MaskExtent {
                start,
                end: i,
                kind: MaskKind::Str,
            });
            continue;
        }
        if c == '\'' {
            // Lifetime vs char literal. `'\...'` and `'x'` are literals;
            // anything else (e.g. `'static`, `'a>`) is a lifetime.
            let is_escape = chars.get(i + 1) == Some(&'\\');
            let is_simple = chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'');
            if is_escape || is_simple {
                let start = i;
                consume_char_literal(&chars, &mut i, &mut out);
                extents.push(MaskExtent {
                    start,
                    end: i,
                    kind: MaskKind::Char,
                });
            } else {
                out.push('\'');
                i += 1;
            }
            continue;
        }
        out.push(c);
        i += 1;
    }
    (out, comments, extents)
}

/// Consume a `"..."` string starting at the opening quote, masking it.
fn consume_string(chars: &[char], i: &mut usize, line: &mut usize, out: &mut String) {
    out.push(' '); // opening quote
    *i += 1;
    while *i < chars.len() {
        match chars[*i] {
            '\\' => {
                out.push(' ');
                *i += 1;
                if *i < chars.len() {
                    if chars[*i] == '\n' {
                        out.push('\n');
                        *line += 1;
                    } else {
                        out.push(' ');
                    }
                    *i += 1;
                }
            }
            '"' => {
                out.push(' ');
                *i += 1;
                return;
            }
            '\n' => {
                out.push('\n');
                *line += 1;
                *i += 1;
            }
            _ => {
                out.push(' ');
                *i += 1;
            }
        }
    }
}

/// Consume a `'...'` char literal starting at the opening quote, masking it.
fn consume_char_literal(chars: &[char], i: &mut usize, out: &mut String) {
    out.push(' '); // opening quote
    *i += 1;
    while *i < chars.len() {
        match chars[*i] {
            '\\' => {
                out.push(' ');
                *i += 1;
                if *i < chars.len() {
                    // A newline directly after the backslash would be eaten
                    // into the mask, shifting every subsequent line: bail on
                    // the malformed literal instead (found by the
                    // masker-vs-lexer agreement proptest).
                    if chars[*i] == '\n' {
                        return;
                    }
                    out.push(' ');
                    *i += 1;
                }
            }
            '\'' => {
                out.push(' ');
                *i += 1;
                return;
            }
            '\n' => return, // malformed literal; bail without eating the line
            _ => {
                out.push(' ');
                *i += 1;
            }
        }
    }
}

const PRAGMA_KEY: &str = "hotgauge-lint:";

/// Parse `hotgauge-lint: allow(RULE, "justification")` pragmas out of the
/// collected comments. A comment may carry several `allow(...)` clauses.
fn parse_pragmas(comments: &[(usize, String)]) -> (Vec<Pragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for (line, text) in comments {
        // A pragma must be the comment's entire content: `// hotgauge-lint:`
        // at the start (after the slashes / doc-comment sigils). A mid-prose
        // mention of the key (docs describing the pragma syntax) is not a
        // grant.
        let head = text
            .trim_start_matches('/')
            .trim_start_matches('!')
            .trim_start();
        if !head.starts_with(PRAGMA_KEY) {
            continue;
        }
        let mut rest = &head[PRAGMA_KEY.len()..];
        let mut found_any = false;
        while let Some(open) = rest.find("allow(") {
            let body = &rest[open + "allow(".len()..];
            match parse_allow_body(body) {
                Ok((rule, justification, consumed)) => {
                    found_any = true;
                    pragmas.push(Pragma {
                        rule,
                        justification,
                        line: *line,
                        used: Cell::new(false),
                    });
                    rest = &body[consumed..];
                }
                Err(msg) => {
                    errors.push(PragmaError {
                        line: *line,
                        message: msg,
                    });
                    rest = "";
                }
            }
        }
        if !found_any && errors.iter().all(|e| e.line != *line) {
            errors.push(PragmaError {
                line: *line,
                message: format!(
                    "pragma comment has no parsable allow(RULE, \"justification\") clause: `{}`",
                    text.trim()
                ),
            });
        }
    }
    (pragmas, errors)
}

/// Parse `RULE, "justification")`, returning the rule, the justification,
/// and how many chars of `body` were consumed.
fn parse_allow_body(body: &str) -> Result<(String, String, usize), String> {
    let comma = body
        .find(',')
        .ok_or_else(|| "allow(...) pragma is missing the , \"justification\" part".to_string())?;
    let rule = body[..comma].trim().to_string();
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric()) {
        return Err(format!(
            "allow(...) pragma has malformed rule name `{rule}`"
        ));
    }
    let after = &body[comma + 1..];
    let q1_rel = after
        .find('"')
        .ok_or_else(|| "allow(...) justification must be a quoted string".to_string())?;
    let after_q1 = &after[q1_rel + 1..];
    let q2_rel = after_q1
        .find('"')
        .ok_or_else(|| "allow(...) justification string is unterminated".to_string())?;
    let justification = after_q1[..q2_rel].trim().to_string();
    if justification.is_empty() {
        return Err(format!("allow({rule}, ...) has an empty justification"));
    }
    let after_q2 = &after_q1[q2_rel + 1..];
    let close_rel = after_q2
        .find(')')
        .ok_or_else(|| "allow(...) pragma is missing the closing parenthesis".to_string())?;
    let consumed = comma + 1 + q1_rel + 1 + q2_rel + 1 + close_rel + 1;
    Ok((rule, justification, consumed))
}

/// Mark the lines covered by `#[cfg(test)]`-gated items by brace-matching
/// on the masked text (strings and comments are already spaces, so every
/// `{`/`}` seen here is structural).
fn mark_test_regions(masked_text: &str, n_lines: usize) -> Vec<bool> {
    let mut in_test = vec![false; n_lines];
    let bytes: Vec<char> = masked_text.chars().collect();
    let needle: Vec<char> = "#[cfg(test)]".chars().collect();

    let mut start = 0usize;
    while let Some(attr_at) = find_from(&bytes, &needle, start) {
        start = attr_at + needle.len();
        // Find the gated item's opening brace; a `;` first means the
        // attribute gates a brace-less item (`mod tests;`, a use, ...).
        let mut j = start;
        let mut open = None;
        while j < bytes.len() {
            match bytes[j] {
                '{' => {
                    open = Some(j);
                    break;
                }
                ';' => break,
                _ => j += 1,
            }
        }
        let first_line = line_of(&bytes, attr_at);
        let Some(open_at) = open else {
            if first_line < n_lines {
                in_test[first_line] = true;
            }
            continue;
        };
        let mut depth = 1usize;
        let mut k = open_at + 1;
        while k < bytes.len() && depth > 0 {
            match bytes[k] {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
            k += 1;
        }
        let last_line = line_of(&bytes, k.saturating_sub(1));
        for mark in in_test
            .iter_mut()
            .take(last_line.min(n_lines.saturating_sub(1)) + 1)
            .skip(first_line)
        {
            *mark = true;
        }
        start = k;
    }
    in_test
}

fn find_from(haystack: &[char], needle: &[char], from: usize) -> Option<usize> {
    if needle.is_empty() || haystack.len() < needle.len() {
        return None;
    }
    (from..=haystack.len() - needle.len()).find(|&i| &haystack[i..i + needle.len()] == needle)
}

fn line_of(chars: &[char], idx: usize) -> usize {
    chars[..idx.min(chars.len())]
        .iter()
        .filter(|&&c| c == '\n')
        .count()
}
