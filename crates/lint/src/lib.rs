//! `hotgauge-lint`: registry-free static analysis for the HotGauge workspace.
//!
//! Policy v4 runs two independent views of every source file: the masking
//! scanner in [`scan`] (comments/strings blanked, geometry preserved) and a
//! real token-stream lexer with a brace-tree scope layer in [`lex`] (no
//! `syn`), differential-tested against each other. Rules L001–L006 and
//! L008–L012 get tokens with spans and enclosing-scope kinds, emit
//! `file:line` diagnostics with severities, and support text/JSON/SARIF
//! output plus baseline diffing ([`report`]). The
//! `// hotgauge-lint: allow(RULE, "justification")` pragma escape hatch is
//! itself policed: a grant that suppresses nothing is an L012 finding.
//! See DESIGN.md "Static analysis & code policy" for the rule catalogue.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use serde::Serialize;

pub mod lex;
pub mod report;
pub mod rules;
pub mod scan;

pub use rules::{severity_of, LabelUse, RuleInfo, Severity, RULES};

/// Version of the policy the tool enforces; recorded in run manifests so
/// sweep artifacts state what code policy they were built under. Bump on any
/// rule addition, removal, or scope change.
pub const POLICY_VERSION: &str = "4";

/// Number of policy rules (excludes the L000 malformed-pragma diagnostic).
pub const RULE_COUNT: usize = RULES.len();

/// One violation, addressed `file:line`.
#[derive(Debug, Clone, Serialize)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// One-based line number.
    pub line: usize,
    /// Rule id (`L001`..`L012`, or `L000` for a malformed pragma).
    pub rule: String,
    /// Severity as a SARIF level string: `error`, `warning`, or `note`.
    pub severity: String,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(file: &str, line: usize, rule: &str, message: String) -> Diagnostic {
        Diagnostic {
            file: file.to_string(),
            line,
            rule: rule.to_string(),
            severity: rules::severity_of(rule).as_str().to_string(),
            message,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Where a file sits in the workspace; decides which rules apply.
#[derive(Debug, Clone, Default)]
pub struct FileClass {
    /// Under a library crate's `src/` (L001/L004 apply).
    pub lib_crate: bool,
    /// Inside `crates/telemetry` (exempt from L002 — it *is* the facade).
    pub telemetry_crate: bool,
    /// Inside `crates/bench` (bench bins may time and cfg-gate freely).
    pub bench_crate: bool,
    /// Numeric kernel scope: `crates/core/src` or `crates/thermal/src`
    /// (L003/L005 apply).
    pub numeric: bool,
    /// Preset/units modules where raw unit literals are the point.
    pub units_exempt: bool,
    /// Thermal solver kernel modules where per-iteration heap allocation is
    /// forbidden (L011 applies).
    pub thermal_kernel: bool,
    /// Kernel modules in the hot numeric path (thermal solver plus the core
    /// analysis/detection kernels); L010's lock-in-loop check applies.
    pub kernel: bool,
    /// The `lib.rs` of a library crate (L008's forbid(unsafe_code) check).
    pub lib_crate_root: bool,
    /// Whole file is test/bench/example context (L001/L003/L005 skip).
    pub test_context: bool,
}

/// Library crates whose `src/` trees get the L001/L004 treatment.
const LIB_CRATES: &[&str] = &[
    "floorplan",
    "telemetry",
    "workloads",
    "power",
    "perf",
    "thermal",
    "core",
    "store",
    "perfgate",
    "lint",
];

/// Modules allowed to spell raw unit literals: the units/constants source of
/// truth and the physical preset tables they parameterize.
const L005_EXEMPT_FILES: &[&str] = &[
    "crates/core/src/units.rs",
    "crates/thermal/src/stack.rs",
    "crates/thermal/src/materials.rs",
];

/// Core modules that sit on the hot analysis path; together with the thermal
/// solver they form the "kernel" scope for L010's lock-in-loop check.
const CORE_KERNEL_FILES: &[&str] = &[
    "crates/core/src/analysis.rs",
    "crates/core/src/mltd.rs",
    "crates/core/src/detect.rs",
    "crates/core/src/severity.rs",
];

/// Classify a workspace-relative, `/`-separated path.
pub fn classify(rel: &str) -> FileClass {
    let lib_crate = LIB_CRATES
        .iter()
        .any(|c| rel.starts_with(&format!("crates/{c}/src/")));
    let thermal_kernel = rel.starts_with("crates/thermal/src/");
    FileClass {
        test_context: rel.contains("/tests/")
            || rel.contains("/benches/")
            || rel.starts_with("tests/")
            || rel.starts_with("examples/"),
        bench_crate: rel.starts_with("crates/bench/"),
        telemetry_crate: rel.starts_with("crates/telemetry/"),
        lib_crate,
        numeric: rel.starts_with("crates/core/src/") || rel.starts_with("crates/thermal/src/"),
        units_exempt: L005_EXEMPT_FILES.contains(&rel),
        thermal_kernel,
        kernel: thermal_kernel || CORE_KERNEL_FILES.contains(&rel),
        lib_crate_root: lib_crate && rel.ends_with("/src/lib.rs"),
    }
}

/// Lint a single source text under a synthetic workspace-relative path.
/// This is the seam the fixture tests use. Runs the full per-file pipeline
/// including the L012 unused-pragma pass (cross-crate label duplication is
/// the one check that cannot fire here).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let class = classify(rel_path);
    let scanned = scan::ScannedFile::scan(src);
    let model = lex::FileModel::build(src);
    let mut diagnostics = rules::check_file(rel_path, &class, &scanned, &model);
    diagnostics.extend(rules::check_unused_pragmas(rel_path, &scanned));
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    diagnostics
}

/// An I/O failure while walking or reading the workspace.
#[derive(Debug)]
pub struct LintError {
    /// Path that failed.
    pub path: PathBuf,
    /// Underlying error rendered.
    pub message: String,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.message)
    }
}

impl std::error::Error for LintError {}

/// Directories scanned relative to the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Path prefixes excluded from the walk (vendored deps are not ours to lint;
/// the fixture corpus violates rules on purpose; build output is generated).
const EXCLUDED_PREFIXES: &[&str] = &["crates/lint/fixtures/"];

/// Collect every `.rs` file under the scan roots, workspace-relative and
/// sorted for deterministic output.
pub fn discover_files(root: &Path) -> Result<Vec<String>, LintError> {
    let mut files = Vec::new();
    for scan_root in SCAN_ROOTS {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(root, &dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<String>) -> Result<(), LintError> {
    let entries = fs::read_dir(dir).map_err(|e| LintError {
        path: dir.to_path_buf(),
        message: e.to_string(),
    })?;
    for entry in entries {
        let entry = entry.map_err(|e| LintError {
            path: dir.to_path_buf(),
            message: e.to_string(),
        })?;
        let path = entry.path();
        let rel = relative_slash(root, &path);
        if path.is_dir() {
            let name = entry.file_name();
            if name == "target" || name == ".git" {
                continue;
            }
            if EXCLUDED_PREFIXES
                .iter()
                .any(|p| rel.as_deref() == Some(p.trim_end_matches('/')))
            {
                continue;
            }
            walk(root, &path, files)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            if let Some(rel) = rel {
                if !EXCLUDED_PREFIXES.iter().any(|p| rel.starts_with(p)) {
                    files.push(rel);
                }
            }
        }
    }
    Ok(())
}

fn relative_slash(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).ok()?;
    let parts: Vec<&str> = rel
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .collect();
    Some(parts.join("/"))
}

/// Lint the whole workspace rooted at `root`. Three passes: per-file rules
/// (which mark the pragmas they consume), the cross-crate label-duplicate
/// check, and finally the L012 unused-pragma sweep — which must run last so
/// every legitimate suppression has had its chance to mark its grant.
/// Diagnostics come back sorted by (file, line, rule).
pub fn run_lint(root: &Path) -> Result<Vec<Diagnostic>, LintError> {
    let mut diagnostics = Vec::new();
    let mut scanned_files: Vec<(String, scan::ScannedFile)> = Vec::new();
    for rel in discover_files(root)? {
        let full = root.join(&rel);
        let src = fs::read_to_string(&full).map_err(|e| LintError {
            path: full.clone(),
            message: e.to_string(),
        })?;
        let class = classify(&rel);
        let scanned = scan::ScannedFile::scan(&src);
        let model = lex::FileModel::build(&src);
        diagnostics.extend(rules::check_file(&rel, &class, &scanned, &model));
        scanned_files.push((rel, scanned));
    }
    // L006's duplicate half needs the whole workspace's labels at once.
    let label_uses: Vec<(String, Vec<rules::LabelUse>)> = scanned_files
        .iter()
        .map(|(rel, scanned)| (rel.clone(), rules::extract_labels(scanned)))
        .collect();
    diagnostics.extend(rules::check_label_duplicates(&label_uses));
    // An allow(L006) grant on a label that *would* be a cross-crate
    // duplicate has done real work: mark it used so L012 leaves it alone.
    let dups = rules::duplicate_labels_including_allowed(&label_uses);
    for ((_, scanned), (_, uses)) in scanned_files.iter().zip(&label_uses) {
        for u in uses {
            if u.allowed && !u.in_test && dups.iter().any(|d| d == &u.label) {
                scanned.allow(u.line, "L006");
            }
        }
    }
    for (rel, scanned) in &scanned_files {
        diagnostics.extend(rules::check_unused_pragmas(rel, scanned));
    }
    diagnostics.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(b.file.as_str(), b.line, b.rule.as_str()))
    });
    Ok(diagnostics)
}

/// Locate the workspace root: the nearest ancestor of `start` containing
/// both a `Cargo.toml` and a `crates/` directory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}
