//! The rule catalogue (policy v4: L001–L006, L008–L012) and the per-file
//! rule driver.
//!
//! Rules operate on a [`ScannedFile`](crate::scan::ScannedFile) (masked
//! text, pragmas, test regions) plus a [`FileModel`](crate::lex::FileModel)
//! (token stream and brace-tree scopes) and a [`FileClass`] describing where
//! the file sits in the workspace. The line-oriented rules (L002/L003/L005)
//! match the masked source; the structural rules (L001, L004, L008–L011)
//! walk real tokens and ask the scope tree what encloses them. Every rule
//! checks for a violation *first* and only then consults
//! [`ScannedFile::allow`], so pragma usage is tracked exactly and L012 can
//! flag grants that suppress nothing.

use crate::lex::{FileModel, TokenKind};
use crate::scan::ScannedFile;
use crate::{Diagnostic, FileClass};

/// Diagnostic severity, mapped straight onto SARIF `level`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Violates a correctness-bearing invariant (determinism, unsafe
    /// hygiene, bitwise parity).
    Error,
    /// Violates a maintainability/performance policy.
    Warning,
    /// Housekeeping: the finding asks for a cleanup, not a behavior fix.
    Note,
}

impl Severity {
    /// The SARIF `level` string for this severity.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// Static description of one rule, surfaced by `--list-rules`, the SARIF
/// `tool.driver.rules` array, and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Identifier, e.g. `L001`.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// Default severity.
    pub severity: Severity,
}

/// The rule catalogue. `L000` (malformed pragma) is a meta-diagnostic, not a
/// policy rule, so it is not listed here. `L007` was the masked-text
/// predecessor of L011 and is retired — granting it is an unknown-rule
/// error, which is deliberate: stale grants must be re-justified under the
/// token-aware rule, not silently carried over.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "L001",
        summary: "no unwrap()/expect()/panic!/unreachable!/todo!/unimplemented! in library crates \
                  without a justified pragma",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "L002",
        summary: "telemetry only via hotgauge-telemetry facade macros: no raw \
                  #[cfg(feature = \"telemetry\")] blocks or Instant::now() outside \
                  crates/telemetry and the bench crate",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "L003",
        summary: "no f32 in crates/thermal and crates/core numeric kernels (f64-only parity)",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "L004",
        summary: "concurrency policy: no std::thread::spawn in library crates, no Arc<Sender>, \
                  atomics must name an Ordering explicitly (two for \
                  fetch_update/compare_exchange)",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "L005",
        summary: "raw temperature/length literals (80.0, 25.0, 100e-6, ...) outside preset \
                  modules must use named constants or units newtypes",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "L006",
        summary: "span!/counter! labels must be lowercase dotted namespaces \
                  (`thermal.cg_iterations`), and each label outside test code must be \
                  emitted by exactly one crate",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "L008",
        summary: "unsafe hygiene: every unsafe block/impl needs a preceding // SAFETY: comment, \
                  and every lib crate forbids unsafe_code (a deny downgrade needs a justified \
                  pragma)",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "L009",
        summary: "determinism: no HashMap/HashSet iteration (.iter()/.keys()/for ... in) in \
                  numeric kernel crates where order can feed results; use BTreeMap or an \
                  explicitly sorted sequence",
        severity: Severity::Error,
    },
    RuleInfo {
        id: "L010",
        summary: "scoped concurrency: Ordering::SeqCst only under pragma, counter atomics use \
                  Relaxed, and no Mutex lock acquisition inside loop bodies of kernel modules",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "L011",
        summary: "no per-iteration heap allocation (Vec::new()/vec![]/.collect()) inside \
                  for/while/loop/closure bodies in thermal kernel modules (token-aware \
                  successor of L007)",
        severity: Severity::Warning,
    },
    RuleInfo {
        id: "L012",
        summary: "pragma hygiene: an allow(RULE, ...) grant that suppresses zero diagnostics is \
                  itself a finding; remove stale grants",
        severity: Severity::Note,
    },
];

/// Severity of a rule id; the L000 meta-diagnostic is always an error.
pub fn severity_of(rule: &str) -> Severity {
    RULES
        .iter()
        .find(|r| r.id == rule)
        .map(|r| r.severity)
        .unwrap_or(Severity::Error)
}

/// L005 quarantined literal spellings. Matched with numeric-token boundaries
/// so `125.0`, `80.05`, `25e-3`, and `1e-30` do not fire.
const L005_LITERALS: &[&str] = &["80.0", "25.0", "115.0", "60.0", "100e-6", "1e-3"];

/// Atomic methods whose call must name an `Ordering` in its argument list.
/// `fetch_update` and the `compare_exchange` family take *two* orderings
/// (success and failure), and L004 requires both to be spelled.
const L004_ATOMIC_METHODS: &[(&str, usize)] = &[
    ("load", 1),
    ("store", 1),
    ("fetch_add", 1),
    ("fetch_sub", 1),
    ("fetch_and", 1),
    ("fetch_or", 1),
    ("fetch_xor", 1),
    ("fetch_update", 2),
    ("compare_exchange", 2),
    ("compare_exchange_weak", 2),
];

/// Hash-container iteration methods L009 refuses in kernel crates. `get`,
/// `insert`, `entry`, `contains_key` are keyed and deterministic, so they
/// are deliberately absent.
const L009_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
];

/// Receiver-name suffixes L010 treats as telemetry counters: monotone tallies
/// whose only consumer is a snapshot, so anything stronger than `Relaxed` is
/// paying fence costs for ordering nobody observes.
const L010_COUNTER_SUFFIXES: &[&str] = &[
    "count",
    "counts",
    "counter",
    "counters",
    "total",
    "hits",
    "dropped",
    "completed",
    "donated",
];

/// Run every applicable rule over one scanned+lexed file. The L012
/// unused-grant pass runs separately (after the cross-file label pass) via
/// [`check_unused_pragmas`].
pub fn check_file(
    path: &str,
    class: &FileClass,
    scanned: &ScannedFile,
    model: &FileModel,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Malformed pragmas are always reported: a typo'd grant silently
    // reverting to "violation" would be confusing, and a typo'd rule name
    // silently granting nothing is worse.
    for err in &scanned.pragma_errors {
        out.push(Diagnostic::new(
            path,
            err.line + 1,
            "L000",
            err.message.clone(),
        ));
    }
    for pragma in &scanned.pragmas {
        if pragma.rule != "L000" && !RULES.iter().any(|r| r.id == pragma.rule) {
            out.push(Diagnostic::new(
                path,
                pragma.line + 1,
                "L000",
                format!("pragma grants unknown rule `{}`", pragma.rule),
            ));
        }
    }

    if class.lib_crate {
        check_l001(path, class, scanned, model, &mut out);
        check_l004_spawn_arc(path, class, scanned, &mut out);
        check_l004_orderings(path, scanned, model, &mut out);
    }
    if !class.telemetry_crate && !class.bench_crate {
        check_l002(path, scanned, &mut out);
    }
    if class.numeric {
        check_l003(path, class, scanned, &mut out);
        check_l005(path, class, scanned, &mut out);
        check_l009(path, class, scanned, model, &mut out);
    }
    check_l008(path, class, scanned, model, &mut out);
    check_l010(path, class, scanned, model, &mut out);
    if class.thermal_kernel && !class.test_context {
        check_l011(path, scanned, model, &mut out);
    }

    // L006 label format. The companion cross-crate duplicate check needs
    // every file's labels at once, so it runs in the workspace driver
    // (`run_lint`) via [`check_label_duplicates`].
    for u in extract_labels(scanned) {
        if !valid_label(&u.label) && !scanned.allow(u.line, "L006") {
            out.push(Diagnostic::new(
                path,
                u.line + 1,
                "L006",
                format!(
                    "{}! label `{}` must be a lowercase dotted namespace like \
                     `thermal.cg_iterations` ([a-z0-9_] segments joined by `.`)",
                    u.kind, u.label
                ),
            ));
        }
    }

    out
}

/// L012: every grant of a known rule must have suppressed at least one
/// diagnostic by the time all rules (including the cross-file label pass)
/// have run. Unknown-rule grants are already L000 errors and are skipped.
pub fn check_unused_pragmas(path: &str, scanned: &ScannedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for pragma in &scanned.pragmas {
        if !RULES.iter().any(|r| r.id == pragma.rule) {
            continue;
        }
        if !pragma.used.get() && !scanned.allow(pragma.line, "L012") {
            out.push(Diagnostic::new(
                path,
                pragma.line + 1,
                "L012",
                format!(
                    "allow({}, ...) suppresses no diagnostics: remove the stale grant (or fix \
                     the code it was meant to cover)",
                    pragma.rule
                ),
            ));
        }
    }
    out
}

/// One `span!`/`counter!` call site found in a file.
#[derive(Debug, Clone)]
pub struct LabelUse {
    /// Zero-based line of the macro invocation.
    pub line: usize,
    /// `"span"` or `"counter"`.
    pub kind: &'static str,
    /// The label literal's contents.
    pub label: String,
    /// Whether the call sits inside `#[cfg(test)]` code.
    pub in_test: bool,
    /// Whether an `allow(L006, ...)` pragma covers the line.
    pub allowed: bool,
}

/// Extracts every `span!("...")` / `counter!("...", ...)` label from a
/// scanned file. Invocations are located in the masked text (so prose and
/// string literals never match); the label itself lives in a string literal,
/// so it is read back out of the raw text at the same char offset (masking
/// preserves geometry). Invocations whose first argument is not a string
/// literal on the same or following line are skipped — the facade macros
/// only accept literals, so such code would not compile anyway.
pub fn extract_labels(scanned: &ScannedFile) -> Vec<LabelUse> {
    let masked = scanned.masked_text();
    let raw: Vec<char> = scanned.raw.join("\n").chars().collect();
    let mut out = Vec::new();
    for (pat, kind) in [("span!(", "span"), ("counter!(", "counter")] {
        let mut from = 0usize;
        while let Some(rel) = masked[from..].find(pat) {
            let at = from + rel;
            from = at + pat.len();
            if !left_boundary(&masked, at) {
                continue;
            }
            let line = masked[..at].matches('\n').count();
            // The label literal starts at the first quote after the open
            // paren; a rustfmt-wrapped call puts it on the next line, so
            // search a short raw-text window rather than just this line.
            // Masking is char-for-char (a multi-byte prose char becomes one
            // space), so the masked *char* count — not the byte offset —
            // locates the same position in the raw text.
            let search_start = masked[..at + pat.len()].chars().count();
            let window: String = raw
                .iter()
                .skip(search_start.min(raw.len()))
                .take(160)
                .collect();
            let Some(open_q) = window.find('"') else {
                continue;
            };
            let rest = &window[open_q + 1..];
            let Some(close_q) = rest.find('"') else {
                continue;
            };
            out.push(LabelUse {
                line,
                kind,
                label: rest[..close_q].to_string(),
                in_test: scanned.in_test.get(line).copied().unwrap_or(false),
                allowed: scanned.is_allowed(line, "L006"),
            });
        }
    }
    out.sort_by_key(|u| u.line);
    out
}

/// L006 label shape: two or more `.`-joined segments, each starting with a
/// lowercase ASCII letter and continuing with `[a-z0-9_]`.
pub fn valid_label(label: &str) -> bool {
    let mut segments = 0usize;
    for part in label.split('.') {
        segments += 1;
        let mut chars = part.chars();
        match chars.next() {
            Some(c) if c.is_ascii_lowercase() => {}
            _ => return false,
        }
        if !chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_') {
            return false;
        }
    }
    segments >= 2
}

/// The owning crate of a workspace-relative path: `crates/foo/... -> foo`,
/// anything else (root `src/`, `tests/`, `examples/`) -> `suite`.
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("suite")
}

/// L006 cross-crate duplicate check over the whole workspace's label uses
/// (`(workspace-relative path, labels found there)` pairs, as produced by
/// [`extract_labels`]). A label emitted from production code in more than
/// one crate is flagged at every such call site: labels are namespaced per
/// owning crate, so two crates sharing one would merge unrelated statistics
/// in snapshots and manifests. Test-context and pragma-granted uses are
/// ignored.
pub fn check_label_duplicates(files: &[(String, Vec<LabelUse>)]) -> Vec<Diagnostic> {
    // label -> list of (file index, use index); small workspace, linear scan.
    let mut by_label: Vec<(&str, Vec<(usize, usize)>)> = Vec::new();
    for (fx, (_, uses)) in files.iter().enumerate() {
        for (ux, u) in uses.iter().enumerate() {
            if u.in_test || u.allowed {
                continue;
            }
            match by_label.iter_mut().find(|(l, _)| *l == u.label) {
                Some((_, sites)) => sites.push((fx, ux)),
                None => by_label.push((&u.label, vec![(fx, ux)])),
            }
        }
    }
    let mut out = Vec::new();
    for (label, sites) in &by_label {
        let mut crates: Vec<&str> = sites
            .iter()
            .map(|&(fx, _)| crate_of(&files[fx].0))
            .collect();
        crates.sort_unstable();
        crates.dedup();
        if crates.len() < 2 {
            continue;
        }
        for &(fx, ux) in sites {
            let (path, uses) = &files[fx];
            let u = &uses[ux];
            out.push(Diagnostic::new(
                path,
                u.line + 1,
                "L006",
                format!(
                    "{}! label `{label}` is emitted by multiple crates ({}): telemetry \
                     labels are owned by exactly one crate",
                    u.kind,
                    crates.join(", ")
                ),
            ));
        }
    }
    out
}

/// Labels that appear in production code of two or more crates when
/// pragma-granted uses are *included*. The workspace driver uses this to
/// mark `allow(L006)` grants on genuine duplicates as used — a grant that
/// hides a real cross-crate collision is doing work; one on a unique label
/// is stale and should fall to L012.
pub fn duplicate_labels_including_allowed(files: &[(String, Vec<LabelUse>)]) -> Vec<String> {
    let mut by_label: Vec<(&str, Vec<&str>)> = Vec::new();
    for (path, uses) in files {
        for u in uses {
            if u.in_test {
                continue;
            }
            let krate = crate_of(path);
            match by_label.iter_mut().find(|(l, _)| *l == u.label) {
                Some((_, crates)) => {
                    if !crates.contains(&krate) {
                        crates.push(krate);
                    }
                }
                None => by_label.push((&u.label, vec![krate])),
            }
        }
    }
    by_label
        .iter()
        .filter(|(_, crates)| crates.len() >= 2)
        .map(|(l, _)| l.to_string())
        .collect()
}

/// True when `ix` (a token index) sits in `#[cfg(test)]`-gated or
/// test-context code.
fn tok_in_test(class: &FileClass, scanned: &ScannedFile, line: usize) -> bool {
    class.test_context || scanned.in_test.get(line).copied().unwrap_or(false)
}

/// L001, token-aware: `.unwrap(`/`.expect(` method calls (the leading-dot
/// token pair rules out `unwrap_or_else` and `expect_err` by construction)
/// and the panicking macro family.
fn check_l001(
    path: &str,
    class: &FileClass,
    scanned: &ScannedFile,
    model: &FileModel,
    out: &mut Vec<Diagnostic>,
) {
    const MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
    for (i, tok) in model.tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let label = match tok.text.as_str() {
            "unwrap" | "expect"
                if model
                    .prev_code(i)
                    .is_some_and(|p| model.tokens[p].text == ".")
                    && model.matches_seq(i + 1, &["("]) =>
            {
                format!("{}()", tok.text)
            }
            m if MACROS.contains(&m) && model.matches_seq(i + 1, &["!", "("]) => {
                format!("{m}!")
            }
            _ => continue,
        };
        if tok_in_test(class, scanned, tok.line) {
            continue;
        }
        if !scanned.allow(tok.line, "L001") {
            out.push(Diagnostic::new(
                path,
                tok.line + 1,
                "L001",
                format!(
                    "{label} in a library crate: return a typed error or add \
                     `// hotgauge-lint: allow(L001, \"<invariant>\")`"
                ),
            ));
        }
    }
}

fn check_l002(path: &str, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    for (ix, masked) in scanned.masked.iter().enumerate() {
        let raw = &scanned.raw[ix];
        if let Some(at) = masked.find("Instant::now") {
            if left_boundary(masked, at) && !scanned.allow(ix, "L002") {
                out.push(Diagnostic::new(
                    path,
                    ix + 1,
                    "L002",
                    "Instant::now() outside crates/telemetry: use the hotgauge-telemetry span!/\
                     counter! facade"
                        .to_string(),
                ));
            }
        }
        // The feature name itself is a string literal, so it lives in the raw
        // line; the `cfg` must be code, so it must survive in the masked line.
        if raw.contains("feature = \"telemetry\"")
            && masked.contains("cfg")
            && !scanned.allow(ix, "L002")
        {
            out.push(Diagnostic::new(
                path,
                ix + 1,
                "L002",
                "raw #[cfg(feature = \"telemetry\")] outside crates/telemetry: use the \
                 if_telemetry!/span!/counter! facade macros"
                    .to_string(),
            ));
        }
    }
}

fn check_l003(path: &str, class: &FileClass, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    for (ix, masked) in scanned.masked.iter().enumerate() {
        if tok_in_test(class, scanned, ix) {
            continue;
        }
        let mut from = 0usize;
        while let Some(rel) = masked[from..].find("f32") {
            let at = from + rel;
            from = at + 3;
            if !left_boundary(masked, at) || !right_boundary(masked, at + 3) {
                continue;
            }
            if !scanned.allow(ix, "L003") {
                out.push(Diagnostic::new(
                    path,
                    ix + 1,
                    "L003",
                    "f32 in a numeric kernel crate: thermal/analysis kernels are f64-only to \
                     keep the fused/naive parity proptests bitwise"
                        .to_string(),
                ));
            }
        }
    }
}

fn check_l004_spawn_arc(
    path: &str,
    _class: &FileClass,
    scanned: &ScannedFile,
    out: &mut Vec<Diagnostic>,
) {
    for (ix, masked) in scanned.masked.iter().enumerate() {
        if masked.contains("thread::spawn") && !scanned.allow(ix, "L004") {
            out.push(Diagnostic::new(
                path,
                ix + 1,
                "L004",
                "std::thread::spawn in a library crate: use std::thread::scope or the pipeline \
                 channel so joins are structural"
                    .to_string(),
            ));
        }
        let squeezed: String = masked.chars().filter(|c| !c.is_whitespace()).collect();
        if (squeezed.contains("Arc<Sender")
            || squeezed.contains("Arc<SyncSender")
            || squeezed.contains("Arc<mpsc::"))
            && !scanned.allow(ix, "L004")
        {
            out.push(Diagnostic::new(
                path,
                ix + 1,
                "L004",
                "channel endpoint behind Arc: senders must be moved/cloned into scopes, never \
                 shared through Arc"
                    .to_string(),
            ));
        }
    }
}

/// Atomic calls must name their `Ordering`s inside the argument list —
/// one for plain loads/stores/RMWs, *two* for `fetch_update` and the
/// `compare_exchange` family (success and failure orderings). Token-aware:
/// the argument span is the paren-balanced token range, so rustfmt-wrapped
/// calls match across lines.
fn check_l004_orderings(
    path: &str,
    scanned: &ScannedFile,
    model: &FileModel,
    out: &mut Vec<Diagnostic>,
) {
    for (i, tok) in model.tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let Some(&(_, required)) = L004_ATOMIC_METHODS
            .iter()
            .find(|(m, _)| *m == tok.text.as_str())
        else {
            continue;
        };
        // Must be a method call: `.name(` with a real receiver.
        if model
            .prev_code(i)
            .is_none_or(|p| model.tokens[p].text != ".")
        {
            continue;
        }
        let Some(open) = model
            .next_code(i + 1)
            .filter(|&p| model.tokens[p].text == "(")
        else {
            continue;
        };
        let Some(args) = paren_token_span(model, open) else {
            continue;
        };
        let orderings = count_orderings(model, args.clone());
        if orderings >= required {
            continue;
        }
        // `.load()`/`.store(x)` also exist on non-atomics (Cell, Vec
        // element swaps). The fetch_*/compare_exchange* names only exist on
        // atomics; for the ambiguous two, require the receiver chain to
        // look atomic-ish before flagging.
        let ambiguous = matches!(tok.text.as_str(), "load" | "store");
        if ambiguous {
            let empty_args = model
                .tokens
                .get(args.start..args.end)
                .is_none_or(|ts| ts.iter().all(|t| t.kind.is_trivia()));
            if tok.text == "load" && empty_args {
                // `.load()` with no args is never an atomic load.
                continue;
            }
            let recv_start = i.saturating_sub(8);
            let atomicish = model.tokens[recv_start..i]
                .iter()
                .any(|t| t.text.to_ascii_lowercase().contains("atomic"));
            if !atomicish {
                continue;
            }
        }
        if !scanned.allow(tok.line, "L004") {
            out.push(Diagnostic::new(
                path,
                tok.line + 1,
                "L004",
                format!(
                    "atomic `{}(...)` names {orderings} Ordering:: argument(s); {required} \
                     required (success and failure orderings must both be explicit)",
                    tok.text
                ),
            ));
        }
    }
}

/// Count `Ordering::<Variant>` paths among the tokens of `range`.
fn count_orderings(model: &FileModel, range: std::ops::Range<usize>) -> usize {
    let mut n = 0usize;
    for i in range {
        if model.tokens[i].text == "Ordering" && model.matches_seq(i + 1, &["::"]) {
            n += 1;
        }
    }
    n
}

/// The token range strictly inside the paren pair opening at `open`
/// (exclusive of both parens), or `None` if unbalanced.
fn paren_token_span(model: &FileModel, open: usize) -> Option<std::ops::Range<usize>> {
    let mut depth = 0usize;
    for (i, tok) in model.tokens.iter().enumerate().skip(open) {
        match tok.text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + 1..i);
                }
            }
            _ => {}
        }
    }
    None
}

fn check_l005(path: &str, class: &FileClass, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    if class.units_exempt {
        return;
    }
    for (ix, masked) in scanned.masked.iter().enumerate() {
        if tok_in_test(class, scanned, ix) {
            continue;
        }
        // `const` declarations are exactly where these literals belong.
        if masked.contains("const ") {
            continue;
        }
        for lit in L005_LITERALS {
            let mut from = 0usize;
            while let Some(rel) = masked[from..].find(lit) {
                let at = from + rel;
                from = at + lit.len();
                if !numeric_boundary(masked, at, at + lit.len()) {
                    continue;
                }
                if !scanned.allow(ix, "L005") {
                    out.push(Diagnostic::new(
                        path,
                        ix + 1,
                        "L005",
                        format!(
                            "raw temperature/length literal `{lit}`: use a named constant or \
                             the hotgauge_core::units newtypes (Celsius/Microns)"
                        ),
                    ));
                }
            }
        }
    }
}

/// L008 part 1: every `unsafe {` block and `unsafe impl` must be preceded
/// by a `// SAFETY:` comment (attribute lines and blank lines may sit
/// between). Part 2: a lib crate's `lib.rs` must carry
/// `#![forbid(unsafe_code)]`; a `deny(unsafe_code)` downgrade is accepted
/// only under a justified `allow(L008, ...)` pragma on the attribute line.
fn check_l008(
    path: &str,
    class: &FileClass,
    scanned: &ScannedFile,
    model: &FileModel,
    out: &mut Vec<Diagnostic>,
) {
    for (i, tok) in model.tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident || tok.text != "unsafe" {
            continue;
        }
        let Some(next) = model.next_code(i + 1) else {
            continue;
        };
        let what = match model.tokens[next].text.as_str() {
            "{" => "unsafe block",
            "impl" => "unsafe impl",
            // `unsafe fn` declarations (trait-required) document safety on
            // the trait; the *bodies'* unsafe operations are what need
            // justification, and those sit inside an unsafe fn context.
            _ => continue,
        };
        if has_preceding_safety_comment(scanned, model, tok.line) {
            continue;
        }
        if !scanned.allow(tok.line, "L008") {
            out.push(Diagnostic::new(
                path,
                tok.line + 1,
                "L008",
                format!(
                    "{what} without a preceding `// SAFETY:` comment stating the invariant \
                     that makes it sound"
                ),
            ));
        }
    }

    if class.lib_crate_root {
        let has_forbid = find_unsafe_attr(model, "forbid");
        let deny_line = find_unsafe_attr_line(model, "deny");
        if has_forbid.is_none() {
            match deny_line {
                Some(line) => {
                    if !scanned.allow(line, "L008") {
                        out.push(Diagnostic::new(
                            path,
                            line + 1,
                            "L008",
                            "deny(unsafe_code) downgrade in a lib crate root: add \
                             `// hotgauge-lint: allow(L008, \"<which block and why>\")` \
                             naming the sanctioned unsafe site"
                                .to_string(),
                        ));
                    }
                }
                None => {
                    if !scanned.allow(0, "L008") {
                        out.push(Diagnostic::new(
                            path,
                            1,
                            "L008",
                            "lib crate root missing #![forbid(unsafe_code)] (or a justified \
                             deny(unsafe_code) downgrade)"
                                .to_string(),
                        ));
                    }
                }
            }
        }
    }
}

/// Find `level ( unsafe_code )` in the token stream (inside any attribute
/// form, including `cfg_attr`), returning the token index.
fn find_unsafe_attr(model: &FileModel, level: &str) -> Option<usize> {
    (0..model.tokens.len()).find(|&i| {
        model.tokens[i].kind == TokenKind::Ident
            && model.tokens[i].text == level
            && model.matches_seq(i + 1, &["(", "unsafe_code", ")"])
    })
}

fn find_unsafe_attr_line(model: &FileModel, level: &str) -> Option<usize> {
    find_unsafe_attr(model, level).map(|i| model.tokens[i].line)
}

/// Walk upward from the line above `line` through the contiguous run of
/// blank, comment, and attribute lines; true if any comment in that run
/// (or a comment ending on `line` itself, for multi-line block comments)
/// contains `SAFETY:`.
fn has_preceding_safety_comment(scanned: &ScannedFile, model: &FileModel, line: usize) -> bool {
    // Comment lines by start line, with their text.
    let safety_on_line = |l: usize| {
        model
            .tokens
            .iter()
            .any(|t| t.kind.is_trivia() && t.line == l && t.text.contains("SAFETY:"))
    };
    let comment_on_line = |l: usize| {
        model
            .tokens
            .iter()
            .any(|t| t.kind.is_trivia() && t.line == l)
    };
    let mut l = line;
    while l > 0 {
        l -= 1;
        if safety_on_line(l) {
            return true;
        }
        let masked = scanned.masked.get(l).map(|s| s.trim()).unwrap_or("");
        let is_attr = masked.starts_with('#');
        let is_blank_or_comment = masked.is_empty();
        if is_attr || is_blank_or_comment || comment_on_line(l) {
            continue;
        }
        return false;
    }
    false
}

/// L009: hash-container iteration in numeric kernel crates. Identifiers
/// bound or typed as `HashMap`/`HashSet` in this file are tracked; calling
/// an iteration-order method on one, or iterating one in a `for` header,
/// injects nondeterministic order into code whose outputs are pinned
/// bitwise. Keyed access (`get`/`insert`/`entry`) is fine.
fn check_l009(
    path: &str,
    class: &FileClass,
    scanned: &ScannedFile,
    model: &FileModel,
    out: &mut Vec<Diagnostic>,
) {
    let names = hash_bound_names(model);
    if names.is_empty() {
        return;
    }
    let flag = |line: usize, msg: String, out: &mut Vec<Diagnostic>| {
        if tok_in_test(class, scanned, line) {
            return;
        }
        if !scanned.allow(line, "L009") {
            out.push(Diagnostic::new(path, line + 1, "L009", msg));
        }
    };
    for (i, tok) in model.tokens.iter().enumerate() {
        // `name.iter()` / `name.keys()` / ...
        if tok.kind == TokenKind::Ident
            && L009_ITER_METHODS.contains(&tok.text.as_str())
            && model.matches_seq(i + 1, &["("])
        {
            if let Some(dot) = model.prev_code(i).filter(|&p| model.tokens[p].text == ".") {
                if let Some(recv) = model.prev_code(dot) {
                    let r = &model.tokens[recv];
                    if r.kind == TokenKind::Ident && names.contains(&r.text) {
                        flag(
                            tok.line,
                            format!(
                                "`.{}()` on hash container `{}` in a numeric kernel crate: \
                                 hash iteration order is nondeterministic; use \
                                 BTreeMap/BTreeSet or sort an extracted Vec first",
                                tok.text, r.text
                            ),
                            out,
                        );
                    }
                }
            }
        }
        // `for x in [&[mut]] name ... {`
        if tok.kind == TokenKind::Ident && tok.text == "in" {
            let in_for_header = model
                .prev_code(i)
                .is_some_and(|_| for_header_contains(model, i));
            if in_for_header {
                if let Some(next) = model.next_code(i + 1) {
                    let mut j = next;
                    while model.tokens[j].text == "&" || model.tokens[j].text == "mut" {
                        match model.next_code(j + 1) {
                            Some(n) => j = n,
                            None => break,
                        }
                    }
                    let t = &model.tokens[j];
                    if t.kind == TokenKind::Ident && names.contains(&t.text) {
                        flag(
                            t.line,
                            format!(
                                "`for ... in {}` iterates a hash container in a numeric \
                                 kernel crate: hash iteration order is nondeterministic; \
                                 use BTreeMap/BTreeSet or sort an extracted Vec first",
                                t.text
                            ),
                            out,
                        );
                    }
                }
            }
        }
    }
}

/// Is token `i` (an `in` ident) part of a `for` loop header? Walk backward
/// to the nearest `for`/`;`/`{`/`}` at the same nesting.
fn for_header_contains(model: &FileModel, i: usize) -> bool {
    let mut j = i;
    while let Some(p) = model.prev_code(j) {
        match model.tokens[p].text.as_str() {
            "for" => return true,
            ";" | "{" | "}" => return false,
            _ => j = p,
        }
    }
    false
}

/// Identifiers bound or typed as `HashMap`/`HashSet` anywhere in the file:
/// `let [mut] NAME = HashMap::new()`, `NAME: HashMap<...>` (bindings,
/// fields, statics). Local, name-based — deliberately so: the lint runs
/// with no type inference, and a false negative on an aliased map is caught
/// by the differential proptests, not silently wrong results.
fn hash_bound_names(model: &FileModel) -> Vec<String> {
    let mut names: Vec<String> = Vec::new();
    for (i, tok) in model.tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident || (tok.text != "HashMap" && tok.text != "HashSet") {
            continue;
        }
        // Walk backward over type-path tokens to the binding site.
        let mut j = i;
        let mut via_assign = false;
        while let Some(p) = model.prev_code(j) {
            match model.tokens[p].text.as_str() {
                "::" | "<" | ">" | "," | "&" | "mut" | "'" => j = p,
                "=" => {
                    via_assign = true;
                    j = p;
                }
                ":" => {
                    // `NAME : [type path ...] HashMap`.
                    if let Some(n) = model.prev_code(p) {
                        let t = &model.tokens[n];
                        if t.kind == TokenKind::Ident && !is_keyword(&t.text) {
                            push_unique(&mut names, t.text.clone());
                        }
                    }
                    break;
                }
                text if !via_assign
                    && model.tokens[p].kind == TokenKind::Ident
                    && !is_keyword(text) =>
                {
                    // Path segments like `std`, `collections`, `parking_lot`.
                    j = p;
                }
                "let" | "static" if via_assign => break,
                text if via_assign && model.tokens[p].kind == TokenKind::Ident => {
                    // `let [mut] NAME = ... HashMap...`: only the ident
                    // directly after let/static/mut is the binding — other
                    // idents on the walk back (generic args of a type
                    // annotation, path segments) are not names.
                    let after_binder = model.prev_code(p).is_some_and(|b| {
                        matches!(model.tokens[b].text.as_str(), "let" | "static" | "mut")
                    });
                    if after_binder && text != "mut" && !is_keyword(text) {
                        push_unique(&mut names, text.to_string());
                        break;
                    }
                    j = p;
                }
                _ => break,
            }
        }
    }
    names
}

fn push_unique(names: &mut Vec<String>, name: String) {
    if !names.contains(&name) {
        names.push(name);
    }
}

fn is_keyword(text: &str) -> bool {
    matches!(
        text,
        "let"
            | "static"
            | "const"
            | "mut"
            | "pub"
            | "fn"
            | "impl"
            | "struct"
            | "enum"
            | "for"
            | "in"
            | "if"
            | "else"
            | "while"
            | "loop"
            | "match"
            | "return"
            | "use"
            | "mod"
            | "ref"
            | "move"
            | "where"
            | "type"
            | "trait"
            | "dyn"
    )
}

/// L010: scoped-concurrency hygiene. `Ordering::SeqCst` anywhere outside
/// tests needs a pragma (nothing in this workspace needs sequential
/// consistency; name the weaker ordering you mean). Counter-named atomics
/// (`*_count`, `dropped`, `completed`, ...) must use `Relaxed` — they are
/// telemetry tallies, not synchronization. And in kernel modules, no
/// `.lock()` acquisition inside a loop body: hoist the guard or restructure.
fn check_l010(
    path: &str,
    class: &FileClass,
    scanned: &ScannedFile,
    model: &FileModel,
    out: &mut Vec<Diagnostic>,
) {
    for (i, tok) in model.tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let in_test = tok_in_test(class, scanned, tok.line);
        match tok.text.as_str() {
            "SeqCst"
                if model
                    .prev_code(i)
                    .is_some_and(|p| model.tokens[p].text == "::")
                    && !in_test
                    && !scanned.allow(tok.line, "L010") =>
            {
                out.push(Diagnostic::new(
                    path,
                    tok.line + 1,
                    "L010",
                    "Ordering::SeqCst: nothing here needs sequential consistency; name \
                     the weaker ordering you mean (or add a pragma explaining why SeqCst)"
                        .to_string(),
                ));
            }
            "fetch_add" | "fetch_sub" if !in_test => {
                let Some(dot) = model.prev_code(i).filter(|&p| model.tokens[p].text == ".") else {
                    continue;
                };
                let Some(recv) = model.prev_code(dot) else {
                    continue;
                };
                let recv = &model.tokens[recv];
                if recv.kind != TokenKind::Ident || !counterish(&recv.text) {
                    continue;
                }
                let Some(open) = model
                    .next_code(i + 1)
                    .filter(|&p| model.tokens[p].text == "(")
                else {
                    continue;
                };
                let Some(args) = paren_token_span(model, open) else {
                    continue;
                };
                let relaxed = args.clone().any(|k| model.tokens[k].text == "Relaxed");
                let names_ordering = count_orderings(model, args) > 0 || relaxed;
                if relaxed || !names_ordering {
                    // No Ordering at all is L004's finding, not ours.
                    continue;
                }
                if !scanned.allow(tok.line, "L010") {
                    out.push(Diagnostic::new(
                        path,
                        tok.line + 1,
                        "L010",
                        format!(
                            "counter atomic `{}` uses a non-Relaxed ordering: telemetry \
                             tallies synchronize nothing; use Ordering::Relaxed",
                            recv.text
                        ),
                    ));
                }
            }
            "lock"
                if class.kernel
                    && !in_test
                    && model
                        .prev_code(i)
                        .is_some_and(|p| model.tokens[p].text == ".")
                    && model.matches_seq(i + 1, &["(", ")"])
                    && model.in_loop(i)
                    && !scanned.allow(tok.line, "L010") =>
            {
                out.push(Diagnostic::new(
                    path,
                    tok.line + 1,
                    "L010",
                    "lock acquisition inside a loop body of a kernel module: hoist the \
                     guard outside the loop or restructure to message passing"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
}

fn counterish(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    L010_COUNTER_SUFFIXES.iter().any(|s| lower.ends_with(s))
}

/// L011: per-iteration heap allocation in thermal kernel modules,
/// token-aware. Fires on `Vec::new()`, `vec![...]`, and `.collect()` whose
/// enclosing scope chain contains a `for`/`while`/`loop` body or a braced
/// closure (per-row callbacks price like loop bodies). The old masked-text
/// L007 only saw `for` bodies and could mis-scope matches inside strings a
/// line-based tracker had already lost; the scope tree sees neither.
fn check_l011(path: &str, scanned: &ScannedFile, model: &FileModel, out: &mut Vec<Diagnostic>) {
    for (i, tok) in model.tokens.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let label = match tok.text.as_str() {
            "Vec" if model.matches_seq(i + 1, &["::", "new", "("]) => "Vec::new()",
            "vec" if model.matches_seq(i + 1, &["!", "["]) => "vec![...]",
            "collect"
                if model
                    .prev_code(i)
                    .is_some_and(|p| model.tokens[p].text == ".")
                    && model.matches_seq(i + 1, &["("]) =>
            {
                ".collect()"
            }
            _ => continue,
        };
        if !model.in_loop_or_closure(i) {
            continue;
        }
        if scanned.in_test.get(tok.line).copied().unwrap_or(false) {
            continue;
        }
        if !scanned.allow(tok.line, "L011") {
            out.push(Diagnostic::new(
                path,
                tok.line + 1,
                "L011",
                format!(
                    "{label} inside a loop or closure body of a thermal kernel module: \
                     allocate scratch once in the caller (or add \
                     `// hotgauge-lint: allow(L011, \"<why this is not per-solve>\")`)"
                ),
            ));
        }
    }
}

/// True if the char before `at` cannot extend an identifier/number leftward.
fn left_boundary(s: &str, at: usize) -> bool {
    s[..at]
        .chars()
        .next_back()
        .map(|c| !c.is_alphanumeric() && c != '_')
        .unwrap_or(true)
}

/// True if the char at `end` cannot extend an identifier/number rightward.
fn right_boundary(s: &str, end: usize) -> bool {
    s[end..]
        .chars()
        .next()
        .map(|c| !c.is_alphanumeric() && c != '_')
        .unwrap_or(true)
}

/// Numeric-token boundaries: neither side may continue the number (digits,
/// ident chars, `.`), so `125.0`, `80.05`, `25e-3`, `1e-30` don't match.
fn numeric_boundary(s: &str, start: usize, end: usize) -> bool {
    let left_ok = s[..start]
        .chars()
        .next_back()
        .map(|c| !c.is_alphanumeric() && c != '_' && c != '.')
        .unwrap_or(true);
    let right_ok = s[end..]
        .chars()
        .next()
        .map(|c| !c.is_alphanumeric() && c != '_' && c != '.')
        .unwrap_or(true);
    left_ok && right_ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::ScopeKind;

    #[test]
    fn scope_kinds_loop_set() {
        assert!(ScopeKind::ForLoop.is_loop());
        assert!(ScopeKind::WhileLoop.is_loop());
        assert!(ScopeKind::Loop.is_loop());
        assert!(!ScopeKind::Closure.is_loop());
        assert!(!ScopeKind::Fn.is_loop());
    }

    #[test]
    fn severity_strings() {
        assert_eq!(severity_of("L001").as_str(), "error");
        assert_eq!(severity_of("L012").as_str(), "note");
        // Unknown ids (incl. the L000 meta-diagnostic) are errors.
        assert_eq!(severity_of("L000").as_str(), "error");
    }
}
