//! The rule catalogue (L001–L007) and the per-file rule driver.
//!
//! Rules operate on a [`ScannedFile`](crate::scan::ScannedFile) plus a
//! [`FileClass`] describing where the file sits in the workspace. Each rule
//! documents its exact matching discipline; all text matching happens on the
//! masked source (comments/strings blanked) unless noted otherwise.

use crate::scan::ScannedFile;
use crate::{Diagnostic, FileClass};

/// Static description of one rule, surfaced by `--list-rules` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Identifier, e.g. `L001`.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// The rule catalogue. `L000` (malformed pragma) is a meta-diagnostic, not a
/// policy rule, so it is not listed here.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "L001",
        summary: "no unwrap()/expect()/panic!/unreachable!/todo!/unimplemented! in library crates \
                  without a justified pragma",
    },
    RuleInfo {
        id: "L002",
        summary: "telemetry only via hotgauge-telemetry facade macros: no raw \
                  #[cfg(feature = \"telemetry\")] blocks or Instant::now() outside \
                  crates/telemetry and the bench crate",
    },
    RuleInfo {
        id: "L003",
        summary: "no f32 in crates/thermal and crates/core numeric kernels (f64-only parity)",
    },
    RuleInfo {
        id: "L004",
        summary: "concurrency policy: no std::thread::spawn in library crates, no Arc<Sender>, \
                  atomics must name an Ordering explicitly",
    },
    RuleInfo {
        id: "L005",
        summary: "raw temperature/length literals (80.0, 25.0, 100e-6, ...) outside preset \
                  modules must use named constants or units newtypes",
    },
    RuleInfo {
        id: "L006",
        summary: "span!/counter! labels must be lowercase dotted namespaces \
                  (`thermal.cg_iterations`), and each label outside test code must be \
                  emitted by exactly one crate",
    },
    RuleInfo {
        id: "L007",
        summary: "no per-iteration heap allocation (Vec::new()/vec![]/.collect()) inside `for` \
                  bodies in crates/thermal kernel modules: hoist scratch buffers to the caller",
    },
];

/// L001 forbidden call-site tokens. `.unwrap(`/`.expect(` are matched with
/// the leading dot so `unwrap_or_else`, `unwrap_or_default`, and `expect_err`
/// never fire.
const L001_PATTERNS: &[(&str, &str)] = &[
    (".unwrap(", "unwrap()"),
    (".expect(", "expect()"),
    ("panic!(", "panic!"),
    ("unreachable!(", "unreachable!"),
    ("todo!(", "todo!"),
    ("unimplemented!(", "unimplemented!"),
];

/// L005 quarantined literal spellings. Matched with numeric-token boundaries
/// so `125.0`, `80.05`, `25e-3`, and `1e-30` do not fire.
const L005_LITERALS: &[&str] = &["80.0", "25.0", "115.0", "60.0", "100e-6", "1e-3"];

/// L007 allocation spellings forbidden inside a `for` body. `.collect(` is
/// matched with the leading dot like the L001 method patterns.
const L007_PATTERNS: &[(&str, &str)] = &[
    ("Vec::new(", "Vec::new()"),
    ("vec![", "vec![...]"),
    (".collect(", ".collect()"),
];

/// Atomic methods whose call must name an `Ordering` in its argument list.
const L004_ATOMIC_METHODS: &[&str] = &[
    ".load(",
    ".store(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_and(",
    ".fetch_or(",
    ".fetch_xor(",
    ".fetch_update(",
    ".compare_exchange(",
    ".compare_exchange_weak(",
];

/// Run every applicable rule over one scanned file.
pub fn check_file(path: &str, class: &FileClass, scanned: &ScannedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Malformed pragmas are always reported: a typo'd grant silently
    // reverting to "violation" would be confusing, and a typo'd rule name
    // silently granting nothing is worse.
    for err in &scanned.pragma_errors {
        out.push(Diagnostic::new(
            path,
            err.line + 1,
            "L000",
            err.message.clone(),
        ));
    }
    for pragma in &scanned.pragmas {
        if pragma.rule != "L000" && !RULES.iter().any(|r| r.id == pragma.rule) {
            out.push(Diagnostic::new(
                path,
                pragma.line + 1,
                "L000",
                format!("pragma grants unknown rule `{}`", pragma.rule),
            ));
        }
    }

    for (ix, masked) in scanned.masked.iter().enumerate() {
        let in_test = class.test_context || scanned.in_test.get(ix).copied().unwrap_or(false);
        let raw = &scanned.raw[ix];

        if class.lib_crate && !in_test {
            check_l001(path, ix, masked, scanned, &mut out);
        }
        if !class.telemetry_crate && !class.bench_crate {
            check_l002(path, ix, masked, raw, scanned, &mut out);
        }
        if class.numeric && !in_test {
            check_l003(path, ix, masked, scanned, &mut out);
        }
        if class.lib_crate {
            check_l004_line(path, ix, masked, scanned, &mut out);
        }
        if class.numeric && !class.units_exempt && !in_test {
            check_l005(path, ix, masked, scanned, &mut out);
        }
    }

    if class.lib_crate {
        check_l004_orderings(path, scanned, &mut out);
    }
    if class.thermal_kernel && !class.test_context {
        check_l007(path, scanned, &mut out);
    }

    // L006 label format. The companion cross-crate duplicate check needs
    // every file's labels at once, so it runs in the workspace driver
    // (`run_lint`) via [`check_label_duplicates`].
    for u in extract_labels(scanned) {
        if !u.allowed && !valid_label(&u.label) {
            out.push(Diagnostic::new(
                path,
                u.line + 1,
                "L006",
                format!(
                    "{}! label `{}` must be a lowercase dotted namespace like \
                     `thermal.cg_iterations` ([a-z0-9_] segments joined by `.`)",
                    u.kind, u.label
                ),
            ));
        }
    }

    out
}

/// One `span!`/`counter!` call site found in a file.
#[derive(Debug, Clone)]
pub struct LabelUse {
    /// Zero-based line of the macro invocation.
    pub line: usize,
    /// `"span"` or `"counter"`.
    pub kind: &'static str,
    /// The label literal's contents.
    pub label: String,
    /// Whether the call sits inside `#[cfg(test)]` code.
    pub in_test: bool,
    /// Whether an `allow(L006, ...)` pragma covers the line.
    pub allowed: bool,
}

/// Extracts every `span!("...")` / `counter!("...", ...)` label from a
/// scanned file. Invocations are located in the masked text (so prose and
/// string literals never match); the label itself lives in a string literal,
/// so it is read back out of the raw text at the same byte offset (masking
/// preserves geometry). Invocations whose first argument is not a string
/// literal on the same or following line are skipped — the facade macros
/// only accept literals, so such code would not compile anyway.
pub fn extract_labels(scanned: &ScannedFile) -> Vec<LabelUse> {
    let masked = scanned.masked_text();
    let raw: Vec<char> = scanned.raw.join("\n").chars().collect();
    let mut out = Vec::new();
    for (pat, kind) in [("span!(", "span"), ("counter!(", "counter")] {
        let mut from = 0usize;
        while let Some(rel) = masked[from..].find(pat) {
            let at = from + rel;
            from = at + pat.len();
            if !left_boundary(&masked, at) {
                continue;
            }
            let line = masked[..at].matches('\n').count();
            // The label literal starts at the first quote after the open
            // paren; a rustfmt-wrapped call puts it on the next line, so
            // search a short raw-text window rather than just this line.
            // Masking is char-for-char (a multi-byte prose char becomes one
            // space), so the masked *char* count — not the byte offset —
            // locates the same position in the raw text.
            let search_start = masked[..at + pat.len()].chars().count();
            let window: String = raw
                .iter()
                .skip(search_start.min(raw.len()))
                .take(160)
                .collect();
            let Some(open_q) = window.find('"') else {
                continue;
            };
            let rest = &window[open_q + 1..];
            let Some(close_q) = rest.find('"') else {
                continue;
            };
            out.push(LabelUse {
                line,
                kind,
                label: rest[..close_q].to_string(),
                in_test: scanned.in_test.get(line).copied().unwrap_or(false),
                allowed: scanned.is_allowed(line, "L006"),
            });
        }
    }
    out.sort_by_key(|u| u.line);
    out
}

/// L006 label shape: two or more `.`-joined segments, each starting with a
/// lowercase ASCII letter and continuing with `[a-z0-9_]`.
pub fn valid_label(label: &str) -> bool {
    let mut segments = 0usize;
    for part in label.split('.') {
        segments += 1;
        let mut chars = part.chars();
        match chars.next() {
            Some(c) if c.is_ascii_lowercase() => {}
            _ => return false,
        }
        if !chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_') {
            return false;
        }
    }
    segments >= 2
}

/// The owning crate of a workspace-relative path: `crates/foo/... -> foo`,
/// anything else (root `src/`, `tests/`, `examples/`) -> `suite`.
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("suite")
}

/// L006 cross-crate duplicate check over the whole workspace's label uses
/// (`(workspace-relative path, labels found there)` pairs, as produced by
/// [`extract_labels`]). A label emitted from production code in more than
/// one crate is flagged at every such call site: labels are namespaced per
/// owning crate, so two crates sharing one would merge unrelated statistics
/// in snapshots and manifests. Test-context and pragma-granted uses are
/// ignored.
pub fn check_label_duplicates(files: &[(String, Vec<LabelUse>)]) -> Vec<Diagnostic> {
    // label -> list of (file index, use index); small workspace, linear scan.
    let mut by_label: Vec<(&str, Vec<(usize, usize)>)> = Vec::new();
    for (fx, (_, uses)) in files.iter().enumerate() {
        for (ux, u) in uses.iter().enumerate() {
            if u.in_test || u.allowed {
                continue;
            }
            match by_label.iter_mut().find(|(l, _)| *l == u.label) {
                Some((_, sites)) => sites.push((fx, ux)),
                None => by_label.push((&u.label, vec![(fx, ux)])),
            }
        }
    }
    let mut out = Vec::new();
    for (label, sites) in &by_label {
        let mut crates: Vec<&str> = sites
            .iter()
            .map(|&(fx, _)| crate_of(&files[fx].0))
            .collect();
        crates.sort_unstable();
        crates.dedup();
        if crates.len() < 2 {
            continue;
        }
        for &(fx, ux) in sites {
            let (path, uses) = &files[fx];
            let u = &uses[ux];
            out.push(Diagnostic::new(
                path,
                u.line + 1,
                "L006",
                format!(
                    "{}! label `{label}` is emitted by multiple crates ({}): telemetry \
                     labels are owned by exactly one crate",
                    u.kind,
                    crates.join(", ")
                ),
            ));
        }
    }
    out
}

fn check_l001(
    path: &str,
    ix: usize,
    masked: &str,
    scanned: &ScannedFile,
    out: &mut Vec<Diagnostic>,
) {
    for (pat, label) in L001_PATTERNS {
        let mut from = 0usize;
        while let Some(rel) = masked[from..].find(pat) {
            let at = from + rel;
            from = at + pat.len();
            // Macro patterns need a left token boundary (`.unwrap(`/`.expect(`
            // carry their own in the leading dot).
            if !pat.starts_with('.') && !left_boundary(masked, at) {
                continue;
            }
            if !scanned.is_allowed(ix, "L001") {
                out.push(Diagnostic::new(
                    path,
                    ix + 1,
                    "L001",
                    format!(
                        "{label} in a library crate: return a typed error or add \
                         `// hotgauge-lint: allow(L001, \"<invariant>\")`"
                    ),
                ));
            }
        }
    }
}

fn check_l002(
    path: &str,
    ix: usize,
    masked: &str,
    raw: &str,
    scanned: &ScannedFile,
    out: &mut Vec<Diagnostic>,
) {
    if scanned.is_allowed(ix, "L002") {
        return;
    }
    if let Some(at) = masked.find("Instant::now") {
        if left_boundary(masked, at) {
            out.push(Diagnostic::new(
                path,
                ix + 1,
                "L002",
                "Instant::now() outside crates/telemetry: use the hotgauge-telemetry span!/\
                 counter! facade"
                    .to_string(),
            ));
        }
    }
    // The feature name itself is a string literal, so it lives in the raw
    // line; the `cfg` must be code, so it must survive in the masked line.
    if raw.contains("feature = \"telemetry\"") && masked.contains("cfg") {
        out.push(Diagnostic::new(
            path,
            ix + 1,
            "L002",
            "raw #[cfg(feature = \"telemetry\")] outside crates/telemetry: use the \
             if_telemetry!/span!/counter! facade macros"
                .to_string(),
        ));
    }
}

fn check_l003(
    path: &str,
    ix: usize,
    masked: &str,
    scanned: &ScannedFile,
    out: &mut Vec<Diagnostic>,
) {
    let mut from = 0usize;
    while let Some(rel) = masked[from..].find("f32") {
        let at = from + rel;
        from = at + 3;
        if !left_boundary(masked, at) || !right_boundary(masked, at + 3) {
            continue;
        }
        if !scanned.is_allowed(ix, "L003") {
            out.push(Diagnostic::new(
                path,
                ix + 1,
                "L003",
                "f32 in a numeric kernel crate: thermal/analysis kernels are f64-only to keep \
                 the fused/naive parity proptests bitwise"
                    .to_string(),
            ));
        }
    }
}

fn check_l004_line(
    path: &str,
    ix: usize,
    masked: &str,
    scanned: &ScannedFile,
    out: &mut Vec<Diagnostic>,
) {
    if scanned.is_allowed(ix, "L004") {
        return;
    }
    if masked.contains("thread::spawn") {
        out.push(Diagnostic::new(
            path,
            ix + 1,
            "L004",
            "std::thread::spawn in a library crate: use std::thread::scope or the pipeline \
             channel so joins are structural"
                .to_string(),
        ));
    }
    let squeezed: String = masked.chars().filter(|c| !c.is_whitespace()).collect();
    if squeezed.contains("Arc<Sender")
        || squeezed.contains("Arc<SyncSender")
        || squeezed.contains("Arc<mpsc::")
    {
        out.push(Diagnostic::new(
            path,
            ix + 1,
            "L004",
            "channel endpoint behind Arc: senders must be moved/cloned into scopes, never \
             shared through Arc"
                .to_string(),
        ));
    }
}

/// Atomic calls must name an `Ordering` inside their argument list. This one
/// matches across lines (rustfmt splits long `compare_exchange` calls), so it
/// runs on the joined masked text and maps hits back to lines.
fn check_l004_orderings(path: &str, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    let text = scanned.masked_text();
    for pat in L004_ATOMIC_METHODS {
        let mut from = 0usize;
        while let Some(rel) = text[from..].find(pat) {
            let at = from + rel;
            from = at + pat.len();
            let line = text[..at].matches('\n').count();
            if scanned.is_allowed(line, "L004") {
                continue;
            }
            let args_start = at + pat.len();
            let Some(args) = paren_span(&text, args_start - 1) else {
                continue;
            };
            if args.contains("Ordering::") {
                continue;
            }
            // `.load()`/`.store(x)` on non-atomics (e.g. Cell, Vec element
            // swaps) would be false positives; require the receiver
            // expression to look atomic-ish OR the method to be
            // unambiguously atomic. `.load(`/`.store(` are the ambiguous
            // ones; `fetch_*`/`compare_exchange*` only exist on atomics.
            let ambiguous = matches!(*pat, ".load(" | ".store(");
            if ambiguous && !args.trim().is_empty() && !args.contains("Ordering") {
                // A `.load(x)` with args but no Ordering on a non-atomic
                // receiver: only flag when the receiver mentions atomic.
                let recv = &text[at.saturating_sub(80)..at];
                if !recv.to_ascii_lowercase().contains("atomic") {
                    continue;
                }
            }
            if ambiguous && args.trim().is_empty() {
                // `.load()` with no args is never an atomic load.
                continue;
            }
            out.push(Diagnostic::new(
                path,
                line + 1,
                "L004",
                format!(
                    "atomic `{}...)` without an explicit Ordering:: argument",
                    pat.trim_start_matches('.')
                ),
            ));
        }
    }
}

/// L007: per-iteration heap allocation inside a thermal kernel module's
/// `for` bodies. Loop bodies are found by brace tracking over the masked
/// text: a `for` keyword whose header holds a token-boundary `in` before the
/// body's `{` opens a loop (which rules out `impl Trait for Type` and
/// `for<'a>` binders); every line with bytes inside at least one open loop
/// body is then screened for the [`L007_PATTERNS`] spellings. The hot-path
/// contract is that kernels take caller-owned scratch (`&mut Vec<f64>`,
/// stack arrays, workspace structs) instead of allocating per iteration.
fn check_l007(path: &str, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    let text = scanned.masked_text();
    let mut in_loop = vec![false; scanned.masked.len()];
    // Brace stack entries record "this brace opened a `for` body".
    let mut stack: Vec<bool> = Vec::new();
    let mut loop_depth = 0usize;
    let mut pending_for = false;
    let mut line = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '\n' => line += 1,
            '{' => {
                stack.push(pending_for);
                if pending_for {
                    loop_depth += 1;
                }
                pending_for = false;
            }
            '}' if stack.pop() == Some(true) => loop_depth -= 1,
            '}' => {}
            'f' if text[i..].starts_with("for")
                && left_boundary(&text, i)
                && right_boundary(&text, i + 3) =>
            {
                let rest = &text[i + 3..];
                let header = &rest[..rest.find('{').unwrap_or(rest.len())];
                if has_in_token(header) {
                    pending_for = true;
                }
            }
            _ => {}
        }
        if loop_depth > 0 {
            if let Some(slot) = in_loop.get_mut(line) {
                *slot = true;
            }
        }
    }
    for (ix, masked) in scanned.masked.iter().enumerate() {
        if !in_loop[ix]
            || scanned.in_test.get(ix).copied().unwrap_or(false)
            || scanned.is_allowed(ix, "L007")
        {
            continue;
        }
        for (pat, label) in L007_PATTERNS {
            let mut from = 0usize;
            while let Some(rel) = masked[from..].find(pat) {
                let at = from + rel;
                from = at + pat.len();
                if !pat.starts_with('.') && !left_boundary(masked, at) {
                    continue;
                }
                out.push(Diagnostic::new(
                    path,
                    ix + 1,
                    "L007",
                    format!(
                        "{label} inside a `for` body of a thermal kernel module: allocate \
                         scratch once in the caller (or add \
                         `// hotgauge-lint: allow(L007, \"<why this is not per-solve>\")`)"
                    ),
                ));
            }
        }
    }
}

/// A token-boundary `in` anywhere in a `for` header — present in every loop
/// header (`for pat in expr`), absent from `impl Trait for Type` headers and
/// `for<'a>` higher-ranked binders.
fn has_in_token(header: &str) -> bool {
    let mut from = 0usize;
    while let Some(rel) = header[from..].find("in") {
        let at = from + rel;
        from = at + 2;
        if left_boundary(header, at) && right_boundary(header, at + 2) {
            return true;
        }
    }
    false
}

fn check_l005(
    path: &str,
    ix: usize,
    masked: &str,
    scanned: &ScannedFile,
    out: &mut Vec<Diagnostic>,
) {
    // `const` declarations are exactly where these literals belong.
    if masked.contains("const ") {
        return;
    }
    for lit in L005_LITERALS {
        let mut from = 0usize;
        while let Some(rel) = masked[from..].find(lit) {
            let at = from + rel;
            from = at + lit.len();
            if !numeric_boundary(masked, at, at + lit.len()) {
                continue;
            }
            if !scanned.is_allowed(ix, "L005") {
                out.push(Diagnostic::new(
                    path,
                    ix + 1,
                    "L005",
                    format!(
                        "raw temperature/length literal `{lit}`: use a named constant or the \
                         hotgauge_core::units newtypes (Celsius/Microns)"
                    ),
                ));
            }
        }
    }
}

/// True if the char before `at` cannot extend an identifier/number leftward.
fn left_boundary(s: &str, at: usize) -> bool {
    s[..at]
        .chars()
        .next_back()
        .map(|c| !c.is_alphanumeric() && c != '_')
        .unwrap_or(true)
}

/// True if the char at `end` cannot extend an identifier/number rightward.
fn right_boundary(s: &str, end: usize) -> bool {
    s[end..]
        .chars()
        .next()
        .map(|c| !c.is_alphanumeric() && c != '_')
        .unwrap_or(true)
}

/// Numeric-token boundaries: neither side may continue the number (digits,
/// ident chars, `.`), so `125.0`, `80.05`, `25e-3`, `1e-30` don't match.
fn numeric_boundary(s: &str, start: usize, end: usize) -> bool {
    let left_ok = s[..start]
        .chars()
        .next_back()
        .map(|c| !c.is_alphanumeric() && c != '_' && c != '.')
        .unwrap_or(true);
    let right_ok = s[end..]
        .chars()
        .next()
        .map(|c| !c.is_alphanumeric() && c != '_' && c != '.')
        .unwrap_or(true);
    left_ok && right_ok
}

/// The `(`-balanced argument span starting at the `(` at `open`, exclusive of
/// the parens. Returns `None` when unbalanced (truncated file).
fn paren_span(s: &str, open: usize) -> Option<&str> {
    let bytes = s.as_bytes();
    debug_assert_eq!(bytes.get(open), Some(&b'('));
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&s[open + 1..i]);
                }
            }
            _ => {}
        }
    }
    None
}
