//! The rule catalogue (L001–L005) and the per-file rule driver.
//!
//! Rules operate on a [`ScannedFile`](crate::scan::ScannedFile) plus a
//! [`FileClass`] describing where the file sits in the workspace. Each rule
//! documents its exact matching discipline; all text matching happens on the
//! masked source (comments/strings blanked) unless noted otherwise.

use crate::scan::ScannedFile;
use crate::{Diagnostic, FileClass};

/// Static description of one rule, surfaced by `--list-rules` and the docs.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Identifier, e.g. `L001`.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// The rule catalogue. `L000` (malformed pragma) is a meta-diagnostic, not a
/// policy rule, so it is not listed here.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "L001",
        summary: "no unwrap()/expect()/panic!/unreachable!/todo!/unimplemented! in library crates \
                  without a justified pragma",
    },
    RuleInfo {
        id: "L002",
        summary: "telemetry only via hotgauge-telemetry facade macros: no raw \
                  #[cfg(feature = \"telemetry\")] blocks or Instant::now() outside \
                  crates/telemetry and the bench crate",
    },
    RuleInfo {
        id: "L003",
        summary: "no f32 in crates/thermal and crates/core numeric kernels (f64-only parity)",
    },
    RuleInfo {
        id: "L004",
        summary: "concurrency policy: no std::thread::spawn in library crates, no Arc<Sender>, \
                  atomics must name an Ordering explicitly",
    },
    RuleInfo {
        id: "L005",
        summary: "raw temperature/length literals (80.0, 25.0, 100e-6, ...) outside preset \
                  modules must use named constants or units newtypes",
    },
];

/// L001 forbidden call-site tokens. `.unwrap(`/`.expect(` are matched with
/// the leading dot so `unwrap_or_else`, `unwrap_or_default`, and `expect_err`
/// never fire.
const L001_PATTERNS: &[(&str, &str)] = &[
    (".unwrap(", "unwrap()"),
    (".expect(", "expect()"),
    ("panic!(", "panic!"),
    ("unreachable!(", "unreachable!"),
    ("todo!(", "todo!"),
    ("unimplemented!(", "unimplemented!"),
];

/// L005 quarantined literal spellings. Matched with numeric-token boundaries
/// so `125.0`, `80.05`, `25e-3`, and `1e-30` do not fire.
const L005_LITERALS: &[&str] = &["80.0", "25.0", "115.0", "60.0", "100e-6", "1e-3"];

/// Atomic methods whose call must name an `Ordering` in its argument list.
const L004_ATOMIC_METHODS: &[&str] = &[
    ".load(",
    ".store(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_and(",
    ".fetch_or(",
    ".fetch_xor(",
    ".fetch_update(",
    ".compare_exchange(",
    ".compare_exchange_weak(",
];

/// Run every applicable rule over one scanned file.
pub fn check_file(path: &str, class: &FileClass, scanned: &ScannedFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Malformed pragmas are always reported: a typo'd grant silently
    // reverting to "violation" would be confusing, and a typo'd rule name
    // silently granting nothing is worse.
    for err in &scanned.pragma_errors {
        out.push(Diagnostic::new(
            path,
            err.line + 1,
            "L000",
            err.message.clone(),
        ));
    }
    for pragma in &scanned.pragmas {
        if pragma.rule != "L000" && !RULES.iter().any(|r| r.id == pragma.rule) {
            out.push(Diagnostic::new(
                path,
                pragma.line + 1,
                "L000",
                format!("pragma grants unknown rule `{}`", pragma.rule),
            ));
        }
    }

    for (ix, masked) in scanned.masked.iter().enumerate() {
        let in_test = class.test_context || scanned.in_test.get(ix).copied().unwrap_or(false);
        let raw = &scanned.raw[ix];

        if class.lib_crate && !in_test {
            check_l001(path, ix, masked, scanned, &mut out);
        }
        if !class.telemetry_crate && !class.bench_crate {
            check_l002(path, ix, masked, raw, scanned, &mut out);
        }
        if class.numeric && !in_test {
            check_l003(path, ix, masked, scanned, &mut out);
        }
        if class.lib_crate {
            check_l004_line(path, ix, masked, scanned, &mut out);
        }
        if class.numeric && !class.units_exempt && !in_test {
            check_l005(path, ix, masked, scanned, &mut out);
        }
    }

    if class.lib_crate {
        check_l004_orderings(path, scanned, &mut out);
    }

    out
}

fn check_l001(
    path: &str,
    ix: usize,
    masked: &str,
    scanned: &ScannedFile,
    out: &mut Vec<Diagnostic>,
) {
    for (pat, label) in L001_PATTERNS {
        let mut from = 0usize;
        while let Some(rel) = masked[from..].find(pat) {
            let at = from + rel;
            from = at + pat.len();
            // Macro patterns need a left token boundary (`.unwrap(`/`.expect(`
            // carry their own in the leading dot).
            if !pat.starts_with('.') && !left_boundary(masked, at) {
                continue;
            }
            if !scanned.is_allowed(ix, "L001") {
                out.push(Diagnostic::new(
                    path,
                    ix + 1,
                    "L001",
                    format!(
                        "{label} in a library crate: return a typed error or add \
                         `// hotgauge-lint: allow(L001, \"<invariant>\")`"
                    ),
                ));
            }
        }
    }
}

fn check_l002(
    path: &str,
    ix: usize,
    masked: &str,
    raw: &str,
    scanned: &ScannedFile,
    out: &mut Vec<Diagnostic>,
) {
    if scanned.is_allowed(ix, "L002") {
        return;
    }
    if let Some(at) = masked.find("Instant::now") {
        if left_boundary(masked, at) {
            out.push(Diagnostic::new(
                path,
                ix + 1,
                "L002",
                "Instant::now() outside crates/telemetry: use the hotgauge-telemetry span!/\
                 counter! facade"
                    .to_string(),
            ));
        }
    }
    // The feature name itself is a string literal, so it lives in the raw
    // line; the `cfg` must be code, so it must survive in the masked line.
    if raw.contains("feature = \"telemetry\"") && masked.contains("cfg") {
        out.push(Diagnostic::new(
            path,
            ix + 1,
            "L002",
            "raw #[cfg(feature = \"telemetry\")] outside crates/telemetry: use the \
             if_telemetry!/span!/counter! facade macros"
                .to_string(),
        ));
    }
}

fn check_l003(
    path: &str,
    ix: usize,
    masked: &str,
    scanned: &ScannedFile,
    out: &mut Vec<Diagnostic>,
) {
    let mut from = 0usize;
    while let Some(rel) = masked[from..].find("f32") {
        let at = from + rel;
        from = at + 3;
        if !left_boundary(masked, at) || !right_boundary(masked, at + 3) {
            continue;
        }
        if !scanned.is_allowed(ix, "L003") {
            out.push(Diagnostic::new(
                path,
                ix + 1,
                "L003",
                "f32 in a numeric kernel crate: thermal/analysis kernels are f64-only to keep \
                 the fused/naive parity proptests bitwise"
                    .to_string(),
            ));
        }
    }
}

fn check_l004_line(
    path: &str,
    ix: usize,
    masked: &str,
    scanned: &ScannedFile,
    out: &mut Vec<Diagnostic>,
) {
    if scanned.is_allowed(ix, "L004") {
        return;
    }
    if masked.contains("thread::spawn") {
        out.push(Diagnostic::new(
            path,
            ix + 1,
            "L004",
            "std::thread::spawn in a library crate: use std::thread::scope or the pipeline \
             channel so joins are structural"
                .to_string(),
        ));
    }
    let squeezed: String = masked.chars().filter(|c| !c.is_whitespace()).collect();
    if squeezed.contains("Arc<Sender")
        || squeezed.contains("Arc<SyncSender")
        || squeezed.contains("Arc<mpsc::")
    {
        out.push(Diagnostic::new(
            path,
            ix + 1,
            "L004",
            "channel endpoint behind Arc: senders must be moved/cloned into scopes, never \
             shared through Arc"
                .to_string(),
        ));
    }
}

/// Atomic calls must name an `Ordering` inside their argument list. This one
/// matches across lines (rustfmt splits long `compare_exchange` calls), so it
/// runs on the joined masked text and maps hits back to lines.
fn check_l004_orderings(path: &str, scanned: &ScannedFile, out: &mut Vec<Diagnostic>) {
    let text = scanned.masked_text();
    for pat in L004_ATOMIC_METHODS {
        let mut from = 0usize;
        while let Some(rel) = text[from..].find(pat) {
            let at = from + rel;
            from = at + pat.len();
            let line = text[..at].matches('\n').count();
            if scanned.is_allowed(line, "L004") {
                continue;
            }
            let args_start = at + pat.len();
            let Some(args) = paren_span(&text, args_start - 1) else {
                continue;
            };
            if args.contains("Ordering::") {
                continue;
            }
            // `.load()`/`.store(x)` on non-atomics (e.g. Cell, Vec element
            // swaps) would be false positives; require the receiver
            // expression to look atomic-ish OR the method to be
            // unambiguously atomic. `.load(`/`.store(` are the ambiguous
            // ones; `fetch_*`/`compare_exchange*` only exist on atomics.
            let ambiguous = matches!(*pat, ".load(" | ".store(");
            if ambiguous && !args.trim().is_empty() && !args.contains("Ordering") {
                // A `.load(x)` with args but no Ordering on a non-atomic
                // receiver: only flag when the receiver mentions atomic.
                let recv = &text[at.saturating_sub(80)..at];
                if !recv.to_ascii_lowercase().contains("atomic") {
                    continue;
                }
            }
            if ambiguous && args.trim().is_empty() {
                // `.load()` with no args is never an atomic load.
                continue;
            }
            out.push(Diagnostic::new(
                path,
                line + 1,
                "L004",
                format!(
                    "atomic `{}...)` without an explicit Ordering:: argument",
                    pat.trim_start_matches('.')
                ),
            ));
        }
    }
}

fn check_l005(
    path: &str,
    ix: usize,
    masked: &str,
    scanned: &ScannedFile,
    out: &mut Vec<Diagnostic>,
) {
    // `const` declarations are exactly where these literals belong.
    if masked.contains("const ") {
        return;
    }
    for lit in L005_LITERALS {
        let mut from = 0usize;
        while let Some(rel) = masked[from..].find(lit) {
            let at = from + rel;
            from = at + lit.len();
            if !numeric_boundary(masked, at, at + lit.len()) {
                continue;
            }
            if !scanned.is_allowed(ix, "L005") {
                out.push(Diagnostic::new(
                    path,
                    ix + 1,
                    "L005",
                    format!(
                        "raw temperature/length literal `{lit}`: use a named constant or the \
                         hotgauge_core::units newtypes (Celsius/Microns)"
                    ),
                ));
            }
        }
    }
}

/// True if the char before `at` cannot extend an identifier/number leftward.
fn left_boundary(s: &str, at: usize) -> bool {
    s[..at]
        .chars()
        .next_back()
        .map(|c| !c.is_alphanumeric() && c != '_')
        .unwrap_or(true)
}

/// True if the char at `end` cannot extend an identifier/number rightward.
fn right_boundary(s: &str, end: usize) -> bool {
    s[end..]
        .chars()
        .next()
        .map(|c| !c.is_alphanumeric() && c != '_')
        .unwrap_or(true)
}

/// Numeric-token boundaries: neither side may continue the number (digits,
/// ident chars, `.`), so `125.0`, `80.05`, `25e-3`, `1e-30` don't match.
fn numeric_boundary(s: &str, start: usize, end: usize) -> bool {
    let left_ok = s[..start]
        .chars()
        .next_back()
        .map(|c| !c.is_alphanumeric() && c != '_' && c != '.')
        .unwrap_or(true);
    let right_ok = s[end..]
        .chars()
        .next()
        .map(|c| !c.is_alphanumeric() && c != '_' && c != '.')
        .unwrap_or(true);
    left_ok && right_ok
}

/// The `(`-balanced argument span starting at the `(` at `open`, exclusive of
/// the parens. Returns `None` when unbalanced (truncated file).
fn paren_span(s: &str, open: usize) -> Option<&str> {
    let bytes = s.as_bytes();
    debug_assert_eq!(bytes.get(open), Some(&b'('));
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&s[open + 1..i]);
                }
            }
            _ => {}
        }
    }
    None
}
