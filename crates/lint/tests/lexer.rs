//! Unit tests for the token-stream lexer and brace-tree scope layer.

use hotgauge_lint::lex::{lex, FileModel, ScopeKind, TokenKind};

fn kinds(src: &str) -> Vec<(TokenKind, String)> {
    lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
}

fn code_texts(src: &str) -> Vec<String> {
    lex(src)
        .into_iter()
        .filter(|t| !t.kind.is_trivia() && !t.kind.is_masked())
        .map(|t| t.text)
        .collect()
}

/// The scope kind enclosing the first token whose text is `needle`.
fn scope_kind_at(src: &str, needle: &str) -> ScopeKind {
    let model = FileModel::build(src);
    let at = model
        .tokens
        .iter()
        .position(|t| t.text == needle)
        .unwrap_or_else(|| panic!("token `{needle}` not found"));
    model.scope_of(at).kind
}

#[test]
fn joined_punct_and_generics() {
    assert_eq!(
        code_texts("a::b -> c => d..=e && f || g"),
        ["a", "::", "b", "->", "c", "=>", "d", "..=", "e", "&&", "f", "||", "g"]
    );
    // The shift family is NOT joined: nested generics close token by token.
    assert_eq!(
        code_texts("Vec<Vec<f64>>"),
        ["Vec", "<", "Vec", "<", "f64", ">", ">"]
    );
}

#[test]
fn lifetime_vs_char() {
    // 'a in a generic position is a lifetime; 'a' is a char literal.
    let toks = kinds("fn f<'a>(x: &'a u8) -> char { 'a' }");
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokenKind::Char && t == "'a'"));
    // Escaped chars and loop labels.
    let toks = kinds("'outer: loop { break 'outer; }; let c = '\\n';");
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokenKind::Lifetime && t == "'outer"));
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokenKind::Char && t == "'\\n'"));
}

#[test]
fn numbers_stay_whole() {
    assert_eq!(code_texts("1e-3 + 100e-6"), ["1e-3", "+", "100e-6"]);
    // A range between integers is three tokens, not a malformed float.
    assert_eq!(code_texts("0..n"), ["0", "..", "n"]);
    // Hex digits include `e`; a trailing sign is NOT an exponent there.
    assert_eq!(code_texts("0x1e-3"), ["0x1e", "-", "3"]);
    // Suffixes and separators stick to the literal.
    assert_eq!(code_texts("1_000u64 2.5f64"), ["1_000u64", "2.5f64"]);
}

#[test]
fn strings_and_comments_are_single_tokens() {
    let toks =
        kinds("let s = \"a { b } c\"; // trailing { comment }\nlet r = r#\"raw \"quote\" {\"#;");
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokenKind::Str && t == "\"a { b } c\""));
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokenKind::LineComment && t.contains("trailing")));
    assert!(toks
        .iter()
        .any(|(k, t)| *k == TokenKind::RawStr && t.contains("raw \"quote\"")));
    // Braces inside literals/comments never open scopes.
    let model = FileModel::build("fn f() { let s = \"}}}{{{\"; }");
    assert_eq!(model.scopes.len(), 2, "root + fn body only");
}

#[test]
fn nested_block_comments() {
    let toks = kinds("/* outer /* inner */ still outer */ fn f() {}");
    assert_eq!(toks[0].0, TokenKind::BlockComment);
    assert!(toks[0].1.ends_with("still outer */"));
}

#[test]
fn scope_classification() {
    let src = "fn top(n: usize) -> usize {\n    let mut in_fn = 0;\n    for i in 0..n {\n        \
               in_for();\n    }\n    while in_fn > 0 {\n        in_while();\n    }\n    \
               loop {\n        in_loop();\n        break;\n    }\n    \
               let f = |x: usize| {\n        in_closure()\n    };\n    \
               unsafe {\n        danger();\n    }\n    in_fn\n}\n\
               impl Foo for Bar {\n    fn method(&self) {\n        in_method();\n    }\n}\n";
    assert_eq!(scope_kind_at(src, "in_fn"), ScopeKind::Fn);
    // The loop variable sits in the *header* (fn scope); body tokens are
    // what the loop scopes own.
    assert_eq!(scope_kind_at(src, "i"), ScopeKind::Fn);
    assert_eq!(scope_kind_at(src, "in_for"), ScopeKind::ForLoop);
    assert_eq!(scope_kind_at(src, "in_while"), ScopeKind::WhileLoop);
    assert_eq!(scope_kind_at(src, "in_loop"), ScopeKind::Loop);
    assert_eq!(scope_kind_at(src, "in_closure"), ScopeKind::Closure);
    assert_eq!(scope_kind_at(src, "danger"), ScopeKind::Unsafe);
    assert_eq!(scope_kind_at(src, "method"), ScopeKind::Impl);
    assert_eq!(scope_kind_at(src, "in_method"), ScopeKind::Fn);
}

#[test]
fn impl_for_is_not_a_for_loop() {
    // `impl Trait for Type` contains `for` but is an impl, not a loop.
    let src = "impl Iterator for Holder {\n    fn next(&mut self) -> Option<u8> {\n        \
               not_in_loop()\n    }\n}\n";
    assert_eq!(scope_kind_at(src, "not_in_loop"), ScopeKind::Fn);
    let model = FileModel::build(src);
    let at = model
        .tokens
        .iter()
        .position(|t| t.text == "not_in_loop")
        .unwrap();
    assert!(!model.in_loop(at));
    assert!(!model.in_loop_or_closure(at));
}

#[test]
fn loop_chain_sees_through_nested_blocks() {
    let src = "fn f(n: usize) {\n    while n > 0 {\n        if n > 1 {\n            \
               { deep_alloc(); }\n        }\n    }\n}\n";
    let model = FileModel::build(src);
    let at = model
        .tokens
        .iter()
        .position(|t| t.text == "deep_alloc")
        .unwrap();
    assert!(model.in_loop(at), "nested blocks inherit the while body");
    assert_eq!(model.scope_of(at).kind, ScopeKind::Block);
}

#[test]
fn spans_are_char_offsets() {
    // Multi-byte prose before a token must not skew its span.
    let src = "// Δ‖·‖ prose\nlet x = 1;";
    let toks = lex(src);
    let x = toks.iter().find(|t| t.text == "x").unwrap();
    let chars: Vec<char> = src.chars().collect();
    assert_eq!(chars[x.start], 'x');
    assert_eq!(x.line, 1);
    // Spans tile the file: strictly increasing, non-overlapping.
    for w in toks.windows(2) {
        assert!(w[0].end <= w[1].start);
        assert!(w[0].start < w[0].end);
    }
}
