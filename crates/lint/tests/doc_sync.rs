//! The DESIGN.md §8 rule catalogue and the compiled-in `RULES` table must
//! list exactly the same rules — `--list-rules` is generated from `RULES`,
//! so this holds the docs and the tool to each other.

use hotgauge_lint::{find_workspace_root, Severity, POLICY_VERSION, RULES};

fn design_md() -> String {
    let root = find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md at workspace root")
}

/// `(id, level)` rows of the §8 catalogue table, in order.
fn catalogue_rows(doc: &str) -> Vec<(String, String)> {
    let mut rows = Vec::new();
    for line in doc.lines() {
        let mut cols = line.split('|').map(str::trim);
        let Some("") = cols.next() else { continue };
        let Some(id) = cols.next() else { continue };
        if id.len() == 4 && id.starts_with('L') && id[1..].chars().all(|c| c.is_ascii_digit()) {
            let level = cols.next().unwrap_or("").to_string();
            rows.push((id.to_string(), level));
        }
    }
    rows
}

#[test]
fn design_catalogue_matches_compiled_rules() {
    let doc = design_md();
    let rows = catalogue_rows(&doc);
    assert_eq!(
        rows.iter().map(|(id, _)| id.as_str()).collect::<Vec<_>>(),
        RULES.iter().map(|r| r.id).collect::<Vec<_>>(),
        "DESIGN.md §8 table rows must list exactly the rules in RULES, in order"
    );
    for ((id, level), rule) in rows.iter().zip(RULES) {
        assert_eq!(
            level,
            rule.severity.as_str(),
            "DESIGN.md level for {id} disagrees with the compiled severity"
        );
    }
}

#[test]
fn design_mentions_current_policy_version() {
    let doc = design_md();
    assert!(
        doc.contains(&format!("policy v{POLICY_VERSION}")),
        "DESIGN.md §8 must name the enforced policy version"
    );
}

#[test]
fn severities_cover_all_rules() {
    // Every catalogued rule resolves to a real severity (the `severity_of`
    // fallback to Error is for unknown ids only).
    for rule in RULES {
        let _: Severity = rule.severity;
        assert!(matches!(
            rule.severity.as_str(),
            "error" | "warning" | "note"
        ));
    }
}
