//! Scanner edge cases: masking of raw strings, nested block comments, and
//! char literals; pragma extraction; `#[cfg(test)]` region marking.

use hotgauge_lint::scan::ScannedFile;

#[test]
fn raw_strings_are_masked_with_geometry_preserved() {
    let src = "let x = r#\"panic!(\"inner\")\"#;\nlet y = 1;\n";
    let s = ScannedFile::scan(src);
    assert_eq!(s.masked.len(), 2);
    assert_eq!(s.masked[0].len(), s.raw[0].len());
    assert!(!s.masked[0].contains("panic!"));
    assert!(s.masked[0].starts_with("let x = "));
    assert_eq!(s.masked[1], "let y = 1;");
}

#[test]
fn nested_block_comments_mask_fully() {
    let src = "a /* outer /* inner */ still comment */ b.unwrap()\n";
    let s = ScannedFile::scan(src);
    assert!(s.masked[0].contains("b.unwrap()"));
    assert!(!s.masked[0].contains("outer"));
    assert!(!s.masked[0].contains("inner"));
    assert!(!s.masked[0].contains("still"));
}

#[test]
fn char_literals_mask_but_lifetimes_survive() {
    let src = "fn f<'a>(x: &'a str) -> char { let c = 'x'; let d = '\\n'; c }\n";
    let s = ScannedFile::scan(src);
    let m = &s.masked[0];
    assert!(m.contains("fn f<'a>"));
    assert!(m.contains("&'a str"));
    assert!(!m.contains("'x'"));
    assert!(!m.contains("\\n"));
}

#[test]
fn byte_and_raw_byte_strings_are_masked() {
    let src = "let a = b\"panic!(x)\"; let b2 = br#\"todo!()\"#;\n";
    let s = ScannedFile::scan(src);
    assert!(!s.masked[0].contains("panic!"));
    assert!(!s.masked[0].contains("todo!"));
    assert!(s.masked[0].contains("let b2 = "));
}

#[test]
fn multiline_strings_keep_line_numbers() {
    let src = "let s = \"line one\n  panic!(\\\"no\\\")\n\";\nx.unwrap();\n";
    let s = ScannedFile::scan(src);
    assert_eq!(s.masked.len(), 4);
    assert!(!s.masked[1].contains("panic!"));
    assert!(s.masked[3].contains(".unwrap("));
}

#[test]
fn preceding_line_pragma_covers_next_code_line_across_blanks() {
    let src = "// hotgauge-lint: allow(L001, \"why\")\n\nlet v = x.unwrap();\n";
    let s = ScannedFile::scan(src);
    assert_eq!(s.pragmas.len(), 1);
    assert_eq!(s.pragmas[0].rule, "L001");
    assert_eq!(s.pragmas[0].justification, "why");
    assert!(s.is_allowed(2, "L001"));
    assert!(!s.is_allowed(2, "L002"));
}

#[test]
fn same_line_pragma_covers_only_its_line() {
    let src = "x.unwrap(); // hotgauge-lint: allow(L001, \"why\")\ny.unwrap();\n";
    let s = ScannedFile::scan(src);
    assert!(s.is_allowed(0, "L001"));
    assert!(!s.is_allowed(1, "L001"));
}

#[test]
fn one_comment_may_carry_multiple_grants() {
    let src = "// hotgauge-lint: allow(L001, \"a\") allow(L005, \"b\")\nx.unwrap();\n";
    let s = ScannedFile::scan(src);
    assert!(s.is_allowed(1, "L001"));
    assert!(s.is_allowed(1, "L005"));
}

#[test]
fn doc_mentions_of_the_pragma_syntax_are_not_grants() {
    let src = "/// Use `// hotgauge-lint: allow(RULE, \"why\")` to grant.\nx.unwrap();\n";
    let s = ScannedFile::scan(src);
    assert!(s.pragmas.is_empty());
    assert!(s.pragma_errors.is_empty());
}

#[test]
fn malformed_pragmas_are_reported_not_dropped() {
    let src = "// hotgauge-lint: allow(L001)\n";
    let s = ScannedFile::scan(src);
    assert!(s.pragmas.is_empty());
    assert_eq!(s.pragma_errors.len(), 1);
    assert_eq!(s.pragma_errors[0].line, 0);
}

#[test]
fn cfg_test_regions_are_marked() {
    let src =
        "pub fn a() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\npub fn b() {}\n";
    let s = ScannedFile::scan(src);
    assert_eq!(
        s.in_test,
        vec![false, true, true, true, true, false],
        "only the gated mod (attribute through closing brace) is marked"
    );
}

#[test]
fn escaped_newline_in_char_position_keeps_line_geometry() {
    // `'\` at end of line is not a char literal; the masker must not eat
    // the newline (doing so shifted every later line's geometry — the
    // divergence the masker-vs-lexer agreement suite caught).
    let src = "let a = '\\\nx';\nb.unwrap();\n";
    let s = ScannedFile::scan(src);
    assert_eq!(s.raw.len(), s.masked.len());
    for (raw, masked) in s.raw.iter().zip(&s.masked) {
        assert_eq!(raw.chars().count(), masked.chars().count());
    }
    assert!(
        s.masked[2].contains(".unwrap("),
        "line 3 geometry preserved"
    );
}
