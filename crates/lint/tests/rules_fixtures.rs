//! Each fixture in `fixtures/` must fire exactly the diagnostics it
//! advertises when linted under a synthetic workspace path, and fall silent
//! where its rule does not apply.

use hotgauge_lint::lint_source;

fn fires(path: &str, src: &str) -> Vec<(String, usize)> {
    let mut v: Vec<(String, usize)> = lint_source(path, src)
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect();
    v.sort();
    v
}

fn expected(rule: &str, lines: &[usize]) -> Vec<(String, usize)> {
    lines.iter().map(|&l| (rule.to_string(), l)).collect()
}

#[test]
fn l001_panic_family() {
    let src = include_str!("../fixtures/l001.rs");
    assert_eq!(
        fires("crates/perf/src/fixture_l001.rs", src),
        expected("L001", &[5, 9, 13, 17])
    );
    // Test context is exempt wholesale.
    assert!(fires("crates/perf/tests/fixture_l001.rs", src).is_empty());
}

#[test]
fn l002_telemetry_facade() {
    let src = include_str!("../fixtures/l002.rs");
    assert_eq!(
        fires("crates/core/src/fixture_l002.rs", src),
        expected("L002", &[5, 8])
    );
    // The telemetry crate is the facade and bench bins may time freely.
    assert!(fires("crates/telemetry/src/fixture_l002.rs", src).is_empty());
    assert!(fires("crates/bench/src/fixture_l002.rs", src).is_empty());
}

#[test]
fn l003_f32_in_kernels() {
    let src = include_str!("../fixtures/l003.rs");
    assert_eq!(
        fires("crates/thermal/src/fixture_l003.rs", src),
        expected("L003", &[4, 5])
    );
    // Outside the numeric kernel crates f32 is not policed.
    assert!(fires("crates/perf/src/fixture_l003.rs", src).is_empty());
}

#[test]
fn l004_concurrency_policy() {
    let src = include_str!("../fixtures/l004.rs");
    assert_eq!(
        fires("crates/power/src/fixture_l004.rs", src),
        expected("L004", &[9, 13, 17])
    );
}

#[test]
fn l005_raw_unit_literals() {
    let src = include_str!("../fixtures/l005.rs");
    assert_eq!(
        fires("crates/thermal/src/fixture_l005.rs", src),
        expected("L005", &[5, 9])
    );
    // The preset modules are exactly where raw literals belong.
    assert!(fires("crates/thermal/src/stack.rs", src).is_empty());
}

#[test]
fn malformed_pragmas_surface_as_l000() {
    let src = include_str!("../fixtures/pragma.rs");
    assert_eq!(
        fires("crates/core/src/fixture_pragma.rs", src),
        expected("L000", &[4, 7, 10, 13])
    );
}
