//! Each fixture in `fixtures/` must fire exactly the diagnostics it
//! advertises when linted under a synthetic workspace path, and fall silent
//! where its rule does not apply.

use hotgauge_lint::lint_source;

fn fires(path: &str, src: &str) -> Vec<(String, usize)> {
    let mut v: Vec<(String, usize)> = lint_source(path, src)
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect();
    v.sort();
    v
}

fn expected(rule: &str, lines: &[usize]) -> Vec<(String, usize)> {
    lines.iter().map(|&l| (rule.to_string(), l)).collect()
}

#[test]
fn l001_panic_family() {
    let src = include_str!("../fixtures/l001.rs");
    assert_eq!(
        fires("crates/perf/src/fixture_l001.rs", src),
        expected("L001", &[5, 9, 13, 17])
    );
    // Test context is exempt wholesale — which strands the fixture's two
    // L001 grants, so L012 flags them as suppressing nothing.
    assert_eq!(
        fires("crates/perf/tests/fixture_l001.rs", src),
        expected("L012", &[31, 36])
    );
}

#[test]
fn l002_telemetry_facade() {
    let src = include_str!("../fixtures/l002.rs");
    assert_eq!(
        fires("crates/core/src/fixture_l002.rs", src),
        expected("L002", &[5, 8])
    );
    // The telemetry crate is the facade and bench bins may time freely.
    assert!(fires("crates/telemetry/src/fixture_l002.rs", src).is_empty());
    assert!(fires("crates/bench/src/fixture_l002.rs", src).is_empty());
}

#[test]
fn l003_f32_in_kernels() {
    let src = include_str!("../fixtures/l003.rs");
    assert_eq!(
        fires("crates/thermal/src/fixture_l003.rs", src),
        expected("L003", &[4, 5])
    );
    // Outside the numeric kernel crates f32 is not policed — which strands
    // the fixture's L003 grant, so L012 flags it.
    assert_eq!(
        fires("crates/perf/src/fixture_l003.rs", src),
        expected("L012", &[18])
    );
}

#[test]
fn l004_concurrency_policy() {
    let src = include_str!("../fixtures/l004.rs");
    assert_eq!(
        fires("crates/power/src/fixture_l004.rs", src),
        expected("L004", &[9, 13, 17, 43])
    );
    // fetch_update / compare_exchange take success AND failure orderings;
    // a rustfmt-wrapped call must still be seen whole.
    let wrapped = "use std::sync::atomic::{AtomicU64, Ordering};\n\
         pub fn f(state: &AtomicU64) {\n    let _ = state.compare_exchange_weak(\n        0,\n        \
         1,\n        Ordering::AcqRel,\n    );\n}\n";
    assert_eq!(
        fires("crates/power/src/fixture_l004b.rs", wrapped),
        expected("L004", &[3])
    );
}

#[test]
fn l005_raw_unit_literals() {
    let src = include_str!("../fixtures/l005.rs");
    assert_eq!(
        fires("crates/thermal/src/fixture_l005.rs", src),
        expected("L005", &[5, 9])
    );
    // The preset modules are exactly where raw literals belong — and the
    // stranded L005 grant falls to L012 there.
    assert_eq!(
        fires("crates/thermal/src/stack.rs", src),
        expected("L012", &[24])
    );
}

#[test]
fn l006_label_format() {
    let src = include_str!("../fixtures/l006.rs");
    // Format violations fire in any crate — including tests: a misspelled
    // label namespace is wrong wherever it appears.
    assert_eq!(
        fires("crates/core/src/fixture_l006.rs", src),
        expected("L006", &[5, 6, 7, 8, 9])
    );
    assert_eq!(
        fires("crates/bench/src/fixture_l006.rs", src),
        expected("L006", &[5, 6, 7, 8, 9])
    );
}

#[test]
fn l006_cross_crate_duplicates() {
    use hotgauge_lint::rules::{check_label_duplicates, extract_labels};
    use hotgauge_lint::scan::ScannedFile;

    let core = ScannedFile::scan("fn f() {\n    let _s = span!(\"shared.stage\");\n}\n");
    let thermal = ScannedFile::scan("fn g() {\n    counter!(\"shared.stage\", 1u64);\n}\n");
    let uses = vec![
        ("crates/core/src/a.rs".to_string(), extract_labels(&core)),
        (
            "crates/thermal/src/b.rs".to_string(),
            extract_labels(&thermal),
        ),
    ];
    let diags = check_label_duplicates(&uses);
    assert_eq!(diags.len(), 2, "both call sites flagged: {diags:?}");
    assert!(diags.iter().all(|d| d.rule == "L006"));
    assert!(diags[0].message.contains("core, thermal"));

    // The same label reused inside one crate is fine (repeated call sites).
    let twice = ScannedFile::scan(
        "fn f() {\n    let _s = span!(\"shared.stage\");\n    let _t = span!(\"shared.stage\");\n}\n",
    );
    let same_crate = vec![("crates/core/src/a.rs".to_string(), extract_labels(&twice))];
    assert!(check_label_duplicates(&same_crate).is_empty());

    // Test-context uses never count toward duplication.
    let in_test = ScannedFile::scan(
        "#[cfg(test)]\nmod tests {\n    fn t() {\n        let _s = span!(\"shared.stage\");\n    }\n}\n",
    );
    let mixed = vec![
        ("crates/core/src/a.rs".to_string(), extract_labels(&core)),
        (
            "crates/telemetry/src/lib.rs".to_string(),
            extract_labels(&in_test),
        ),
    ];
    assert!(check_label_duplicates(&mixed).is_empty());
}

#[test]
fn l006_extracts_wrapped_calls() {
    use hotgauge_lint::rules::extract_labels;
    use hotgauge_lint::scan::ScannedFile;

    // rustfmt puts a long label on its own line; extraction follows it.
    let wrapped = ScannedFile::scan(
        "fn f() {\n    counter!(\n        \"analysis.prefilter_skips\",\n        n,\n    );\n}\n",
    );
    let uses = extract_labels(&wrapped);
    assert_eq!(uses.len(), 1);
    assert_eq!(uses[0].label, "analysis.prefilter_skips");
    assert_eq!(uses[0].line, 1, "attributed to the invocation line");

    // Mentions inside comments and strings never match.
    let masked_out = ScannedFile::scan(
        "// span!(\"docs.example\")\nfn f() {\n    let _s = \"span!(\\\"not.code\\\")\";\n}\n",
    );
    assert!(extract_labels(&masked_out).is_empty());

    // Multi-byte prose (em dashes, ‖·‖, Δ) masks to single spaces, making
    // the masked text byte-shorter than the raw text; extraction must still
    // land on the right label by char offset.
    let shifted = ScannedFile::scan(
        "// prose — with — em dashes — and ‖Δ‖ before the call\nfn f() {\n    \
         let _s = span!(\"thermal.cg_solve\");\n    counter!(\"thermal.cg_iterations\", 1u64);\n}\n",
    );
    let uses = extract_labels(&shifted);
    assert_eq!(uses.len(), 2);
    assert_eq!(uses[0].label, "thermal.cg_solve");
    assert_eq!(uses[1].label, "thermal.cg_iterations");
}

#[test]
fn l008_unsafe_hygiene() {
    let src = include_str!("../fixtures/l008.rs");
    assert_eq!(
        fires("crates/power/src/fixture_l008.rs", src),
        expected("L008", &[5])
    );
}

#[test]
fn l008_lib_crate_root_attr() {
    // A lib crate root without forbid(unsafe_code) fires at line 1.
    let bare = "//! A crate.\n\npub fn f() {}\n";
    assert_eq!(
        fires("crates/power/src/lib.rs", bare),
        expected("L008", &[1])
    );
    // forbid satisfies the rule; so does cfg_attr-wrapped forbid.
    let forbid = "//! A crate.\n#![forbid(unsafe_code)]\npub fn f() {}\n";
    assert!(fires("crates/power/src/lib.rs", forbid).is_empty());
    // A deny downgrade fires on its own line unless pragma-justified.
    let deny = "//! A crate.\n#![deny(unsafe_code)]\npub fn f() {}\n";
    assert_eq!(
        fires("crates/power/src/lib.rs", deny),
        expected("L008", &[2])
    );
    let deny_justified = "//! A crate.\n\
         // hotgauge-lint: allow(L008, \"one sanctioned block in m::f\")\n\
         #![deny(unsafe_code)]\npub fn f() {}\n";
    assert!(fires("crates/power/src/lib.rs", deny_justified).is_empty());
    // Only lib crate roots are held to the attribute; other modules and
    // binaries are not.
    assert!(fires("crates/power/src/other.rs", bare).is_empty());
    assert!(fires("src/bin/hotgauge.rs", bare).is_empty());
}

#[test]
fn l009_hash_iteration() {
    let src = include_str!("../fixtures/l009.rs");
    assert_eq!(
        fires("crates/core/src/fixture_l009.rs", src),
        expected("L009", &[7])
    );
    // Outside the numeric kernel crates hash iteration is not policed, and
    // test context is exempt.
    assert!(fires("crates/perf/src/fixture_l009.rs", src).is_empty());
    assert!(fires("crates/core/tests/fixture_l009.rs", src).is_empty());
    // `for ... in` over a hash container fires too.
    let for_iter = "use std::collections::HashMap;\n\
         pub fn f(m: &HashMap<u32, f64>) -> f64 {\n    let mut acc = 0.0;\n    \
         for (_, v) in m {\n        acc += v;\n    }\n    acc\n}\n";
    assert_eq!(
        fires("crates/thermal/src/fixture_l009b.rs", for_iter),
        expected("L009", &[4])
    );
}

#[test]
fn l010_scoped_concurrency() {
    let src = include_str!("../fixtures/l010.rs");
    assert_eq!(
        fires("crates/thermal/src/fixture_l010.rs", src),
        expected("L010", &[8])
    );
    // A counter atomic on a non-Relaxed ordering fires the counter arm.
    let acquire_counter = "use std::sync::atomic::{AtomicU64, Ordering};\n\
         pub fn f(iter_count: &AtomicU64) {\n    \
         iter_count.fetch_add(1, Ordering::AcqRel);\n}\n";
    assert_eq!(
        fires("crates/core/src/fixture_l010b.rs", acquire_counter),
        expected("L010", &[3])
    );
    // Lock acquisition inside a loop body fires in kernel modules only.
    let lock_in_loop = "use std::sync::Mutex;\n\
         pub fn f(m: &Mutex<f64>, n: usize) -> f64 {\n    let mut acc = 0.0;\n    \
         for _ in 0..n {\n        acc += *m.lock().unwrap_or_else(|e| e.into_inner());\n    }\n    \
         acc\n}\n";
    assert_eq!(
        fires("crates/thermal/src/fixture_l010c.rs", lock_in_loop),
        expected("L010", &[5])
    );
    assert!(fires("crates/workloads/src/fixture_l010c.rs", lock_in_loop).is_empty());
}

#[test]
fn l011_per_iteration_allocation() {
    let src = include_str!("../fixtures/l011.rs");
    assert_eq!(
        fires("crates/thermal/src/fixture_l011.rs", src),
        expected("L011", &[10])
    );
    // Only the thermal kernel modules are policed; the same allocations in
    // another crate (or thermal's own tests) don't fire L011 — the
    // stranded L011 grant falls to L012 instead.
    assert_eq!(
        fires("crates/core/src/fixture_l011.rs", src),
        expected("L012", &[30])
    );
    assert_eq!(
        fires("crates/thermal/tests/fixture_l011.rs", src),
        expected("L012", &[30])
    );
    // Closure bodies count as per-iteration context (the old L007 was
    // blind to them).
    let in_closure = "pub fn f(rows: &[f64]) -> f64 {\n    rows.iter().map(|&r| {\n        \
         let v = vec![r];\n        v[0]\n    }).sum()\n}\n";
    assert_eq!(
        fires("crates/thermal/src/fixture_l011b.rs", in_closure),
        expected("L011", &[3])
    );
}

#[test]
fn l012_unused_pragma() {
    let src = include_str!("../fixtures/l012.rs");
    assert_eq!(
        fires("crates/core/src/fixture_l012.rs", src),
        expected("L012", &[4])
    );
}

#[test]
fn stale_l007_grant_is_an_unknown_rule() {
    // L007 was retired in v4; a leftover grant must surface as L000, not
    // silently grant nothing.
    let src = "pub fn f(n: usize) -> usize {\n    let mut t = 0;\n    for i in 0..n {\n        \
         // hotgauge-lint: allow(L007, \"stale\")\n        \
         let v: Vec<usize> = (0..i).collect();\n        t += v.len();\n    }\n    t\n}\n";
    assert_eq!(
        fires("crates/thermal/src/fixture_stale.rs", src),
        vec![("L000".to_string(), 4), ("L011".to_string(), 5),]
    );
}

#[test]
fn malformed_pragmas_surface_as_l000() {
    let src = include_str!("../fixtures/pragma.rs");
    assert_eq!(
        fires("crates/core/src/fixture_pragma.rs", src),
        expected("L000", &[4, 7, 10, 13])
    );
}
