//! Each fixture in `fixtures/` must fire exactly the diagnostics it
//! advertises when linted under a synthetic workspace path, and fall silent
//! where its rule does not apply.

use hotgauge_lint::lint_source;

fn fires(path: &str, src: &str) -> Vec<(String, usize)> {
    let mut v: Vec<(String, usize)> = lint_source(path, src)
        .into_iter()
        .map(|d| (d.rule, d.line))
        .collect();
    v.sort();
    v
}

fn expected(rule: &str, lines: &[usize]) -> Vec<(String, usize)> {
    lines.iter().map(|&l| (rule.to_string(), l)).collect()
}

#[test]
fn l001_panic_family() {
    let src = include_str!("../fixtures/l001.rs");
    assert_eq!(
        fires("crates/perf/src/fixture_l001.rs", src),
        expected("L001", &[5, 9, 13, 17])
    );
    // Test context is exempt wholesale.
    assert!(fires("crates/perf/tests/fixture_l001.rs", src).is_empty());
}

#[test]
fn l002_telemetry_facade() {
    let src = include_str!("../fixtures/l002.rs");
    assert_eq!(
        fires("crates/core/src/fixture_l002.rs", src),
        expected("L002", &[5, 8])
    );
    // The telemetry crate is the facade and bench bins may time freely.
    assert!(fires("crates/telemetry/src/fixture_l002.rs", src).is_empty());
    assert!(fires("crates/bench/src/fixture_l002.rs", src).is_empty());
}

#[test]
fn l003_f32_in_kernels() {
    let src = include_str!("../fixtures/l003.rs");
    assert_eq!(
        fires("crates/thermal/src/fixture_l003.rs", src),
        expected("L003", &[4, 5])
    );
    // Outside the numeric kernel crates f32 is not policed.
    assert!(fires("crates/perf/src/fixture_l003.rs", src).is_empty());
}

#[test]
fn l004_concurrency_policy() {
    let src = include_str!("../fixtures/l004.rs");
    assert_eq!(
        fires("crates/power/src/fixture_l004.rs", src),
        expected("L004", &[9, 13, 17])
    );
}

#[test]
fn l005_raw_unit_literals() {
    let src = include_str!("../fixtures/l005.rs");
    assert_eq!(
        fires("crates/thermal/src/fixture_l005.rs", src),
        expected("L005", &[5, 9])
    );
    // The preset modules are exactly where raw literals belong.
    assert!(fires("crates/thermal/src/stack.rs", src).is_empty());
}

#[test]
fn l006_label_format() {
    let src = include_str!("../fixtures/l006.rs");
    // Format violations fire in any crate — including tests: a misspelled
    // label namespace is wrong wherever it appears.
    assert_eq!(
        fires("crates/core/src/fixture_l006.rs", src),
        expected("L006", &[5, 6, 7, 8, 9])
    );
    assert_eq!(
        fires("crates/bench/src/fixture_l006.rs", src),
        expected("L006", &[5, 6, 7, 8, 9])
    );
}

#[test]
fn l006_cross_crate_duplicates() {
    use hotgauge_lint::rules::{check_label_duplicates, extract_labels};
    use hotgauge_lint::scan::ScannedFile;

    let core = ScannedFile::scan("fn f() {\n    let _s = span!(\"shared.stage\");\n}\n");
    let thermal = ScannedFile::scan("fn g() {\n    counter!(\"shared.stage\", 1u64);\n}\n");
    let uses = vec![
        ("crates/core/src/a.rs".to_string(), extract_labels(&core)),
        (
            "crates/thermal/src/b.rs".to_string(),
            extract_labels(&thermal),
        ),
    ];
    let diags = check_label_duplicates(&uses);
    assert_eq!(diags.len(), 2, "both call sites flagged: {diags:?}");
    assert!(diags.iter().all(|d| d.rule == "L006"));
    assert!(diags[0].message.contains("core, thermal"));

    // The same label reused inside one crate is fine (repeated call sites).
    let twice = ScannedFile::scan(
        "fn f() {\n    let _s = span!(\"shared.stage\");\n    let _t = span!(\"shared.stage\");\n}\n",
    );
    let same_crate = vec![("crates/core/src/a.rs".to_string(), extract_labels(&twice))];
    assert!(check_label_duplicates(&same_crate).is_empty());

    // Test-context uses never count toward duplication.
    let in_test = ScannedFile::scan(
        "#[cfg(test)]\nmod tests {\n    fn t() {\n        let _s = span!(\"shared.stage\");\n    }\n}\n",
    );
    let mixed = vec![
        ("crates/core/src/a.rs".to_string(), extract_labels(&core)),
        (
            "crates/telemetry/src/lib.rs".to_string(),
            extract_labels(&in_test),
        ),
    ];
    assert!(check_label_duplicates(&mixed).is_empty());
}

#[test]
fn l006_extracts_wrapped_calls() {
    use hotgauge_lint::rules::extract_labels;
    use hotgauge_lint::scan::ScannedFile;

    // rustfmt puts a long label on its own line; extraction follows it.
    let wrapped = ScannedFile::scan(
        "fn f() {\n    counter!(\n        \"analysis.prefilter_skips\",\n        n,\n    );\n}\n",
    );
    let uses = extract_labels(&wrapped);
    assert_eq!(uses.len(), 1);
    assert_eq!(uses[0].label, "analysis.prefilter_skips");
    assert_eq!(uses[0].line, 1, "attributed to the invocation line");

    // Mentions inside comments and strings never match.
    let masked_out = ScannedFile::scan(
        "// span!(\"docs.example\")\nfn f() {\n    let _s = \"span!(\\\"not.code\\\")\";\n}\n",
    );
    assert!(extract_labels(&masked_out).is_empty());

    // Multi-byte prose (em dashes, ‖·‖, Δ) masks to single spaces, making
    // the masked text byte-shorter than the raw text; extraction must still
    // land on the right label by char offset.
    let shifted = ScannedFile::scan(
        "// prose — with — em dashes — and ‖Δ‖ before the call\nfn f() {\n    \
         let _s = span!(\"thermal.cg_solve\");\n    counter!(\"thermal.cg_iterations\", 1u64);\n}\n",
    );
    let uses = extract_labels(&shifted);
    assert_eq!(uses.len(), 2);
    assert_eq!(uses[0].label, "thermal.cg_solve");
    assert_eq!(uses[1].label, "thermal.cg_iterations");
}

#[test]
fn l007_per_iteration_allocation() {
    let src = include_str!("../fixtures/l007.rs");
    assert_eq!(
        fires("crates/thermal/src/fixture_l007.rs", src),
        expected("L007", &[8, 9, 10])
    );
    // Only the thermal kernel modules are policed; the same allocations in
    // another crate (or thermal's own tests) are fine.
    assert!(fires("crates/core/src/fixture_l007.rs", src).is_empty());
    assert!(fires("crates/thermal/tests/fixture_l007.rs", src).is_empty());
}

#[test]
fn malformed_pragmas_surface_as_l000() {
    let src = include_str!("../fixtures/pragma.rs");
    assert_eq!(
        fires("crates/core/src/fixture_pragma.rs", src),
        expected("L000", &[4, 7, 10, 13])
    );
}
