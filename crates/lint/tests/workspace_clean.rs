//! Self-test: the workspace must be clean under its own policy. CI runs the
//! test suite in both feature configurations, so this covers the default and
//! `--features telemetry` source trees alike.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = hotgauge_lint::run_lint(&root).expect("workspace walk failed");
    for d in &diags {
        eprintln!("{d}");
    }
    assert!(
        diags.is_empty(),
        "workspace has {} hotgauge-lint violation(s); see stderr",
        diags.len()
    );
}
