//! Differential fuzz: the masking scanner (`scan.rs`) and the token lexer
//! (`lex.rs`) implement Rust's literal/comment rules independently; on any
//! input their masked-region extents must agree exactly. Sources are
//! composed from a vocabulary of pathological fragments — raw/byte strings
//! with varying hash counts, nested block comments, lifetime-vs-char
//! traps, escapes, numbers that look like ranges — joined by random
//! separators (including none, so fragments collide at char level).

use hotgauge_lint::lex::{lex, TokenKind};
use hotgauge_lint::scan::{MaskKind, ScannedFile};
use proptest::prelude::*;

/// Fragments chosen to stress every literal form and their interactions.
const FRAGMENTS: &[&str] = &[
    // Plain code.
    "let x = 1;",
    "fn f<'a>(s: &'a str) -> usize { s.len() }",
    "for i in 0..n { acc += i; }",
    "while let Some(v) = it.next() { }",
    "Vec<Vec<f64>>",
    "a..=b",
    "1e-3 + 100e-6 - 0x1e",
    "'outer: loop { break 'outer; }",
    "let _ = 2.5f64;",
    // Strings with embedded trouble.
    "\"simple\"",
    "\"with \\\" escaped quote\"",
    "\"brace } and { and // slashes\"",
    "\"multi\nline\nstring\"",
    "\"ends with backslash \\\\\"",
    "\"unicode \\u{1F525} escape\"",
    // Raw strings, varying hash depth.
    "r\"raw no hash\"",
    "r#\"raw \"quoted\" inner\"#",
    "r##\"outer r#\"nested-looking\"# still\"##",
    "r#\"multi\nline raw\"#",
    // Byte strings and byte chars.
    "b\"bytes \\x00\"",
    "br#\"raw bytes \"q\"\"#",
    "b'x'",
    "b'\\n'",
    // Chars vs lifetimes.
    "'a'",
    "'\\''",
    "'\\\\'",
    "'\\u{41}'",
    "&'static str",
    "PhantomData<&'a ()>",
    // Comments.
    "// line comment with \"quote\" and 'tick'",
    "/* block with \"string\" inside */",
    "/* outer /* nested */ still outer */",
    "/* multi\nline\nblock */",
    "/// doc comment with r#\"raw-looking\"#",
    // Identifiers that look like prefixes.
    "var_r",
    "rb_ident",
    "br_name",
    "b",
    "r",
];

const SEPARATORS: &[&str] = &[" ", "\n", "\n\n", "; ", " + ", ""];

/// Compose a source from entropy words: the low bits pick the fragment,
/// the high bits the separator after it.
fn compose(words: &[u64]) -> String {
    let mut src = String::new();
    for &w in words {
        src.push_str(FRAGMENTS[(w as usize) % FRAGMENTS.len()]);
        src.push_str(SEPARATORS[((w >> 32) as usize) % SEPARATORS.len()]);
    }
    src
}

fn mask_kind_of(kind: TokenKind) -> Option<MaskKind> {
    match kind {
        TokenKind::LineComment => Some(MaskKind::LineComment),
        TokenKind::BlockComment => Some(MaskKind::BlockComment),
        TokenKind::Str => Some(MaskKind::Str),
        TokenKind::RawStr => Some(MaskKind::RawStr),
        TokenKind::Char => Some(MaskKind::Char),
        _ => None,
    }
}

/// Both views of `src` must agree on every masked region.
fn assert_agreement(src: &str) {
    let scanned = ScannedFile::scan(src);
    let tokens = lex(src);

    // Geometry: masking is char-for-char, so line counts match the raw.
    assert_eq!(
        scanned.raw.len(),
        scanned.masked.len(),
        "masked line count diverged for {src:?}"
    );
    for (raw, masked) in scanned.raw.iter().zip(&scanned.masked) {
        assert_eq!(
            raw.chars().count(),
            masked.chars().count(),
            "masked line length diverged for {src:?}"
        );
    }

    let lexed: Vec<(usize, usize, MaskKind)> = tokens
        .iter()
        .filter_map(|t| mask_kind_of(t.kind).map(|k| (t.start, t.end, k)))
        .collect();
    let masked: Vec<(usize, usize, MaskKind)> = scanned
        .mask_extents
        .iter()
        .map(|e| (e.start, e.end, e.kind))
        .collect();
    assert_eq!(
        lexed, masked,
        "masker and lexer disagree on masked extents for {src:?}"
    );
}

#[test]
fn agreement_on_handpicked_traps() {
    // Every fragment alone, and a few known-nasty pairings.
    for f in FRAGMENTS {
        assert_agreement(f);
    }
    assert_agreement("let s = r#\"a\"# ; let c = 'x'; // 'y'\n");
    assert_agreement("r\"\" b\"\" br\"\" '\\n' 'a \"s\"");
    // An escaped-newline char start at end of line must not eat the
    // newline (the scan.rs divergence this suite exists to catch).
    assert_agreement("let c = '\\\nx';\nlet y = 1;\n");
    // Ident directly before a quote is not a prefix...
    assert_agreement("var_r\"not raw\"");
    // ...but a bare r/b is.
    assert_agreement("r\"raw\" b\"bytes\"");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn masker_and_lexer_agree_on_composed_sources(
        words in proptest::collection::vec(0u64..u64::MAX, 1..40),
    ) {
        let src = compose(&words);
        assert_agreement(&src);
    }
}
