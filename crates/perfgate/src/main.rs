//! Standalone perf-gate binary: `hotgauge-perfgate <baseline> <candidate>`.
//!
//! Thin wrapper over [`hotgauge_perfgate::run_cli`]; the same entry point
//! backs the `hotgauge gate` subcommand.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(hotgauge_perfgate::run_cli(&args));
}
