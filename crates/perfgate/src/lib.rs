//! Manifest-diff performance gate.
//!
//! Compares two [`RunManifest`]s — a *baseline* and a *candidate*, typically
//! produced by the `perf_rounds` harness on two builds — metric by metric,
//! and decides whether the candidate regressed. The comparison is
//! deliberately dumb and reproducible: no statistics beyond a per-metric
//! relative tolerance, with floors that skip metrics too small to measure
//! above scheduler noise.
//!
//! Gated metrics (lower is better):
//!
//! * stage timings — `<label>.total_s`, `.p50_s`, `.p90_s`, `.p99_s` from
//!   each [`StageMetrics`] entry (v2 manifests; percentile fields absent in
//!   v1 documents are simply not compared);
//! * stage allocations — `<label>.allocs`, `<label>.alloc_bytes`;
//! * harness wall metrics — any numeric `gate_*` leaf directly under the
//!   manifest's `results` object, reported as `results.<key>`.
//!
//! Domain counters (`counter.<label>.total`) are compared too but are
//! *informational* by default — a change in CG iterations is a fidelity
//! question, not a performance regression — unless
//! [`GateConfig::gate_counters`] is set, or the counter's label matches one
//! of the [`GateConfig::gate_counter_prefixes`] (repeatable
//! `--gate-counter PREFIX`). The prefix form lets CI gate the counters that
//! *are* performance promises — e.g. `solver.` pins the lockstep batch
//! shape and `analysis.simd_rows` the vectorized-row coverage — while CG
//! iteration counts stay informational.
//!
//! Span tail latency can be made a hard promise with
//! `--gate-span-p99 SPAN=PCT` (repeatable): the span's `p99_s` is gated at
//! the given tolerance and the gate fails outright if the span is missing
//! from either manifest. Percentile metrics are histogram-derived, so
//! their noise threshold is the baseline's log-bucket width (a constant
//! relative fraction of the baseline value), not a fixed epsilon — see
//! [`compare`].
//!
//! The library is pure (no process exit, no printing); [`run_cli`] layers
//! argument parsing, file IO, and table rendering on top and returns the
//! process exit code: 0 pass, 1 regression, 2 usage or IO error.

#![forbid(unsafe_code)]

use hotgauge_telemetry::manifest::RunManifest;
use serde::Serialize;
use std::fmt;
use std::path::{Path, PathBuf};

/// Tolerances and floors controlling the comparison.
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Allowed relative increase for timing metrics (0.25 = +25%).
    pub time_rel: f64,
    /// Allowed relative increase for allocation metrics.
    pub alloc_rel: f64,
    /// Timing metrics whose baseline is below this many seconds are skipped
    /// (too small to measure above noise).
    pub time_floor_s: f64,
    /// Allocation-count metrics with a baseline below this are skipped.
    pub alloc_floor_count: f64,
    /// Allocation-byte metrics with a baseline below this are skipped.
    pub alloc_floor_bytes: f64,
    /// Gate domain counters instead of reporting them informationally.
    pub gate_counters: bool,
    /// Counter-label prefixes to gate even when [`Self::gate_counters`] is
    /// off: a counter id `counter.<label>.total` is gated when `<label>`
    /// starts with any listed prefix (`solver.` gates every solver counter;
    /// `analysis.simd_rows` gates exactly that one).
    pub gate_counter_prefixes: Vec<String>,
    /// Exact-id tolerance overrides, checked before the kind-level ones.
    pub overrides: Vec<(String, f64)>,
    /// Required span-p99 gates (repeatable `--gate-span-p99 SPAN=PCT`):
    /// `<span>.p99_s` is compared at the given relative tolerance, and the
    /// gate *fails* when the span is missing from either manifest — unlike
    /// ordinary metrics, which inform on one-sided presence. Use this to
    /// pin tail latency of a hot span (e.g. `solver.tri_sweep`) in CI.
    pub gate_span_p99: Vec<(String, f64)>,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            // Wall-clock on shared CI runners is noisy; 25% on timings and
            // 10% on (deterministic-ish) allocation counts by default.
            time_rel: 0.25,
            alloc_rel: 0.10,
            time_floor_s: 1e-3,
            alloc_floor_count: 100.0,
            alloc_floor_bytes: 65_536.0,
            gate_counters: false,
            gate_counter_prefixes: Vec::new(),
            overrides: Vec::new(),
            gate_span_p99: Vec::new(),
        }
    }
}

impl GateConfig {
    /// The relative tolerance applied to `id` of `kind`.
    fn tolerance(&self, id: &str, kind: MetricKind) -> f64 {
        for (name, tol) in &self.overrides {
            if name == id {
                return *tol;
            }
        }
        if let Some(label) = id.strip_suffix(".p99_s") {
            for (span, tol) in &self.gate_span_p99 {
                if span == label {
                    return *tol;
                }
            }
        }
        match kind {
            MetricKind::Time | MetricKind::Result => self.time_rel,
            MetricKind::Allocs | MetricKind::AllocBytes => self.alloc_rel,
            MetricKind::Counter => self.time_rel,
        }
    }

    /// Whether a counter metric with this `id` is gated rather than
    /// informational: either all counters are ([`Self::gate_counters`]) or
    /// its label matches one of the [`Self::gate_counter_prefixes`].
    fn gates_counter(&self, id: &str) -> bool {
        if self.gate_counters {
            return true;
        }
        let label = id
            .strip_prefix("counter.")
            .and_then(|rest| rest.strip_suffix(".total"))
            .unwrap_or(id);
        self.gate_counter_prefixes
            .iter()
            .any(|p| label.starts_with(p.as_str()))
    }

    /// The skip floor for `kind` (baselines below it are not gated).
    fn floor(&self, kind: MetricKind) -> f64 {
        match kind {
            MetricKind::Time | MetricKind::Result => self.time_floor_s,
            MetricKind::Allocs => self.alloc_floor_count,
            MetricKind::AllocBytes => self.alloc_floor_bytes,
            MetricKind::Counter => 0.0,
        }
    }
}

/// What a metric measures; selects tolerance, floor, and gating policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MetricKind {
    /// Stage wall time in seconds (`total_s`, percentiles).
    Time,
    /// Stage heap allocation count.
    Allocs,
    /// Stage heap bytes requested.
    AllocBytes,
    /// Numeric `gate_*` leaf from the results tree (seconds by convention).
    Result,
    /// Domain counter total (informational unless `gate_counters`).
    Counter,
}

/// One comparable scalar extracted from a manifest.
#[derive(Debug, Clone)]
pub struct Metric {
    /// Stable identifier, e.g. `stage.thermal.p99_s` or `results.gate_mean_s`.
    pub id: String,
    /// What the value measures.
    pub kind: MetricKind,
    /// The value (lower is better for every gated kind).
    pub value: f64,
}

/// Flattens the gateable metrics out of a manifest.
///
/// Order is deterministic: stages (manifest order) with their timing then
/// allocation fields, then counters, then `results.gate_*` leaves in the
/// results object's own order.
pub fn extract_metrics(m: &RunManifest) -> Vec<Metric> {
    let mut out = Vec::new();
    if let Some(metrics) = &m.metrics {
        for s in &metrics.stages {
            let mut push = |suffix: &str, kind, value: f64| {
                out.push(Metric {
                    id: format!("{}.{suffix}", s.label),
                    kind,
                    value,
                })
            };
            push("total_s", MetricKind::Time, s.total_s);
            if let Some(v) = s.p50_s {
                push("p50_s", MetricKind::Time, v);
            }
            if let Some(v) = s.p90_s {
                push("p90_s", MetricKind::Time, v);
            }
            if let Some(v) = s.p99_s {
                push("p99_s", MetricKind::Time, v);
            }
            if let Some(v) = s.allocs {
                push("allocs", MetricKind::Allocs, v as f64);
            }
            if let Some(v) = s.alloc_bytes {
                push("alloc_bytes", MetricKind::AllocBytes, v as f64);
            }
        }
        for c in &metrics.counters {
            out.push(Metric {
                id: format!("counter.{}.total", c.label),
                kind: MetricKind::Counter,
                value: c.total,
            });
        }
    }
    if let Some(store) = &m.store {
        // Result-store health as diffable, lower-is-better counters: a
        // delta sweep that re-simulates more than before shows up as a
        // `store.misses` / `store.miss_rate` regression under
        // `--gate-counter store.`.
        out.push(Metric {
            id: "store.misses".to_owned(),
            kind: MetricKind::Counter,
            value: store.misses as f64,
        });
        out.push(Metric {
            id: "store.miss_rate".to_owned(),
            kind: MetricKind::Counter,
            value: 1.0 - store.hit_rate,
        });
    }
    if let Some(fields) = m.results.as_map() {
        for (key, value) in fields {
            if !key.starts_with("gate_") {
                continue;
            }
            if let Some(v) = value.as_f64() {
                out.push(Metric {
                    id: format!("results.{key}"),
                    kind: MetricKind::Result,
                    value: v,
                });
            }
        }
    }
    out
}

/// Multiplies every timing metric of `m` in place by `factor`: stage
/// `total_s`/`avg_s`/`min_s`/`max_s`/percentiles and numeric `gate_*`
/// results leaves. Used by the `--slowdown` test hook to synthesize a
/// regressed candidate from a real manifest, so CI can prove the gate
/// actually fails (allocation metrics are left untouched).
pub fn scale_timings(m: &mut RunManifest, factor: f64) {
    if let Some(metrics) = &mut m.metrics {
        for s in &mut metrics.stages {
            s.total_s *= factor;
            s.avg_s *= factor;
            s.min_s *= factor;
            s.max_s *= factor;
            s.p50_s = s.p50_s.map(|v| v * factor);
            s.p90_s = s.p90_s.map(|v| v * factor);
            s.p99_s = s.p99_s.map(|v| v * factor);
        }
    }
    if let Some(fields) = m.results.as_map() {
        let scaled: Vec<(String, serde_json::Value)> = fields
            .iter()
            .map(|(key, value)| {
                let v = match (key.starts_with("gate_"), value.as_f64()) {
                    (true, Some(x)) => serde_json::Value::F64(x * factor),
                    _ => value.clone(),
                };
                (key.clone(), v)
            })
            .collect();
        m.results = serde_json::Value::Map(scaled);
    }
}

/// Verdict for one compared metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RowStatus {
    /// Within tolerance.
    Pass,
    /// Candidate exceeds baseline by more than the tolerance — fails the gate.
    Regression,
    /// Candidate is faster/leaner by more than the tolerance.
    Improvement,
    /// Baseline below the noise floor; not gated.
    Skipped,
    /// Reported but never gated (counters by default).
    Info,
    /// Present only in the baseline manifest.
    BaselineOnly,
    /// Present only in the candidate manifest.
    CandidateOnly,
}

/// One row of the comparison report.
#[derive(Debug, Clone, Serialize)]
pub struct GateRow {
    /// Metric identifier (see [`extract_metrics`]).
    pub id: String,
    /// Metric kind.
    pub kind: MetricKind,
    /// Baseline value (0 when [`RowStatus::CandidateOnly`]).
    pub baseline: f64,
    /// Candidate value (0 when [`RowStatus::BaselineOnly`]).
    pub candidate: f64,
    /// Relative change in percent, `(candidate - baseline) / baseline * 100`.
    pub delta_pct: f64,
    /// Applied tolerance in percent.
    pub tolerance_pct: f64,
    /// Verdict.
    pub status: RowStatus,
}

/// The full comparison result.
#[derive(Debug, Clone, Serialize)]
pub struct GateReport {
    /// Per-metric rows, in extraction order (baseline order first, then
    /// candidate-only metrics).
    pub rows: Vec<GateRow>,
    /// Number of rows with [`RowStatus::Regression`].
    pub regressions: u64,
    /// Number of rows with [`RowStatus::Improvement`].
    pub improvements: u64,
    /// Number of gated rows that passed.
    pub passed: u64,
}

impl GateReport {
    /// `true` when no gated metric regressed.
    pub fn ok(&self) -> bool {
        self.regressions == 0
    }
}

/// Whether a metric id is a histogram-derived percentile (`p50_s`/`p90_s`/
/// `p99_s`): its value is quantized to the recorder's log-bucket grid, so
/// deltas within one bucket width are noise regardless of tolerance.
fn is_percentile(id: &str) -> bool {
    id.ends_with(".p50_s") || id.ends_with(".p90_s") || id.ends_with(".p99_s")
}

/// Compares `candidate` against `baseline` under `cfg`.
///
/// Percentile metrics come out of a log-bucketed histogram, so their noise
/// threshold is the *baseline's bucket width* — a constant relative
/// fraction ([`hotgauge_telemetry::hist::RELATIVE_BUCKET_WIDTH`]) of the
/// baseline value, not a fixed epsilon: the effective tolerance for those
/// rows widens by one bucket so quantization jitter alone can never trip
/// (or fake) a verdict.
pub fn compare(baseline: &RunManifest, candidate: &RunManifest, cfg: &GateConfig) -> GateReport {
    let base = extract_metrics(baseline);
    let cand = extract_metrics(candidate);
    let mut rows = Vec::with_capacity(base.len());
    for b in &base {
        let row = match cand.iter().find(|c| c.id == b.id) {
            None => GateRow {
                id: b.id.clone(),
                kind: b.kind,
                baseline: b.value,
                candidate: 0.0,
                delta_pct: 0.0,
                tolerance_pct: 0.0,
                status: RowStatus::BaselineOnly,
            },
            Some(c) => {
                let mut tol = cfg.tolerance(&b.id, b.kind);
                if is_percentile(&b.id) {
                    tol += hotgauge_telemetry::hist::RELATIVE_BUCKET_WIDTH;
                }
                let delta = if b.value == 0.0 {
                    if c.value == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (c.value - b.value) / b.value
                };
                let gated = b.kind != MetricKind::Counter || cfg.gates_counter(&b.id);
                let status = if !gated {
                    RowStatus::Info
                } else if b.value < cfg.floor(b.kind) && c.value < cfg.floor(b.kind) {
                    RowStatus::Skipped
                } else if delta > tol {
                    RowStatus::Regression
                } else if delta < -tol {
                    RowStatus::Improvement
                } else {
                    RowStatus::Pass
                };
                GateRow {
                    id: b.id.clone(),
                    kind: b.kind,
                    baseline: b.value,
                    candidate: c.value,
                    delta_pct: if delta.is_finite() {
                        delta * 100.0
                    } else {
                        delta
                    },
                    tolerance_pct: tol * 100.0,
                    status,
                }
            }
        };
        rows.push(row);
    }
    for c in &cand {
        if !base.iter().any(|b| b.id == c.id) {
            rows.push(GateRow {
                id: c.id.clone(),
                kind: c.kind,
                baseline: 0.0,
                candidate: c.value,
                delta_pct: 0.0,
                tolerance_pct: 0.0,
                status: RowStatus::CandidateOnly,
            });
        }
    }
    // Required span-p99 gates: a span named on the command line must be
    // present (two-sided) — a build that silently drops the span would
    // otherwise pass vacuously.
    for (span, tol) in &cfg.gate_span_p99 {
        let id = format!("{span}.p99_s");
        let two_sided = rows.iter().any(|r| {
            r.id == id
                && matches!(
                    r.status,
                    RowStatus::Pass
                        | RowStatus::Regression
                        | RowStatus::Improvement
                        | RowStatus::Skipped
                )
        });
        if !two_sided {
            if let Some(r) = rows.iter_mut().find(|r| r.id == id) {
                r.status = RowStatus::Regression;
            } else {
                rows.push(GateRow {
                    id,
                    kind: MetricKind::Time,
                    baseline: 0.0,
                    candidate: 0.0,
                    delta_pct: 0.0,
                    tolerance_pct: tol * 100.0,
                    status: RowStatus::Regression,
                });
            }
        }
    }
    let count = |st: RowStatus| rows.iter().filter(|r| r.status == st).count() as u64;
    GateReport {
        regressions: count(RowStatus::Regression),
        improvements: count(RowStatus::Improvement),
        passed: count(RowStatus::Pass),
        rows,
    }
}

/// Renders the report as an aligned text table.
pub fn render_report(report: &GateReport) -> String {
    let mut out = String::new();
    let id_w = report
        .rows
        .iter()
        .map(|r| r.id.len())
        .chain(std::iter::once("metric".len()))
        .max()
        .unwrap_or(6);
    out.push_str(&format!(
        "{:<id_w$}  {:>12}  {:>12}  {:>8}  {:>6}  status\n",
        "metric", "baseline", "candidate", "delta", "tol"
    ));
    for r in &report.rows {
        let (delta, tol) = match r.status {
            RowStatus::BaselineOnly | RowStatus::CandidateOnly => {
                ("-".to_string(), "-".to_string())
            }
            _ => (
                format!("{:+.1}%", r.delta_pct),
                format!("{:.0}%", r.tolerance_pct),
            ),
        };
        out.push_str(&format!(
            "{:<id_w$}  {:>12}  {:>12}  {:>8}  {:>6}  {:?}\n",
            r.id,
            fmt_value(r.kind, r.baseline),
            fmt_value(r.kind, r.candidate),
            delta,
            tol,
            r.status,
        ));
    }
    out.push_str(&format!(
        "gate: {} regression(s), {} improvement(s), {} pass(es)\n",
        report.regressions, report.improvements, report.passed
    ));
    out
}

fn fmt_value(kind: MetricKind, v: f64) -> String {
    match kind {
        MetricKind::Time | MetricKind::Result => {
            if v >= 1.0 {
                format!("{v:.3}s")
            } else if v >= 1e-3 {
                format!("{:.3}ms", v * 1e3)
            } else {
                format!("{:.1}us", v * 1e6)
            }
        }
        MetricKind::Allocs | MetricKind::Counter => format!("{v:.0}"),
        MetricKind::AllocBytes => {
            if v >= 1024.0 * 1024.0 {
                format!("{:.1}MiB", v / (1024.0 * 1024.0))
            } else if v >= 1024.0 {
                format!("{:.1}KiB", v / 1024.0)
            } else {
                format!("{v:.0}B")
            }
        }
    }
}

/// Errors surfaced by [`run_cli`].
#[derive(Debug)]
pub enum GateError {
    /// Bad command line; the message explains which flag.
    Usage(String),
    /// A manifest could not be read.
    Io(PathBuf, std::io::Error),
    /// A manifest could not be parsed.
    Parse(PathBuf, String),
}

impl fmt::Display for GateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateError::Usage(msg) => write!(f, "usage error: {msg}"),
            GateError::Io(path, e) => write!(f, "cannot read {}: {e}", path.display()),
            GateError::Parse(path, msg) => write!(f, "cannot parse {}: {msg}", path.display()),
        }
    }
}

impl std::error::Error for GateError {}

/// Loads and parses one manifest file.
pub fn load_manifest(path: &Path) -> Result<RunManifest, GateError> {
    let text = std::fs::read_to_string(path).map_err(|e| GateError::Io(path.to_path_buf(), e))?;
    serde_json::from_str(&text).map_err(|e| GateError::Parse(path.to_path_buf(), e.to_string()))
}

/// Parsed command line for the gate.
#[derive(Debug)]
struct CliArgs {
    baseline: PathBuf,
    candidate: PathBuf,
    cfg: GateConfig,
    slowdown: f64,
    json: Option<PathBuf>,
    quiet: bool,
}

const USAGE: &str = "usage: hotgauge-perfgate <baseline.json> <candidate.json> \
[--time-tol-pct P] [--alloc-tol-pct P] [--time-floor-ms MS] [--gate-counters] \
[--gate-counter PREFIX]... [--gate-span-p99 SPAN=PCT]... \
[--override METRIC=PCT] [--slowdown FACTOR] [--json PATH] [--quiet]
       hotgauge-perfgate --check-store MIN_HIT_RATE <manifest.json>";

fn parse_args(args: &[String]) -> Result<CliArgs, GateError> {
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut cfg = GateConfig::default();
    let mut slowdown = 1.0f64;
    let mut json = None;
    let mut quiet = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| -> Result<&String, GateError> {
            it.next()
                .ok_or_else(|| GateError::Usage(format!("{flag} needs a value\n{USAGE}")))
        };
        match arg.as_str() {
            "--time-tol-pct" => {
                cfg.time_rel = parse_f64(take("--time-tol-pct")?, "--time-tol-pct")? / 100.0
            }
            "--alloc-tol-pct" => {
                cfg.alloc_rel = parse_f64(take("--alloc-tol-pct")?, "--alloc-tol-pct")? / 100.0
            }
            "--time-floor-ms" => {
                cfg.time_floor_s = parse_f64(take("--time-floor-ms")?, "--time-floor-ms")? * 1e-3
            }
            "--gate-counters" => cfg.gate_counters = true,
            "--gate-counter" => {
                let prefix = take("--gate-counter")?;
                if prefix.is_empty() {
                    return Err(GateError::Usage(
                        "--gate-counter expects a non-empty label prefix".to_string(),
                    ));
                }
                cfg.gate_counter_prefixes.push(prefix.clone());
            }
            "--gate-span-p99" => {
                let spec = take("--gate-span-p99")?;
                let (span, pct) = spec.split_once('=').ok_or_else(|| {
                    GateError::Usage(format!("--gate-span-p99 expects SPAN=PCT, got `{spec}`"))
                })?;
                if span.is_empty() {
                    return Err(GateError::Usage(
                        "--gate-span-p99 expects a non-empty span label".to_string(),
                    ));
                }
                cfg.gate_span_p99
                    .push((span.to_string(), parse_f64(pct, "--gate-span-p99")? / 100.0));
            }
            "--override" => {
                let spec = take("--override")?;
                let (name, pct) = spec.split_once('=').ok_or_else(|| {
                    GateError::Usage(format!("--override expects METRIC=PCT, got `{spec}`"))
                })?;
                cfg.overrides
                    .push((name.to_string(), parse_f64(pct, "--override")? / 100.0));
            }
            "--slowdown" => slowdown = parse_f64(take("--slowdown")?, "--slowdown")?,
            "--json" => json = Some(PathBuf::from(take("--json")?)),
            "--quiet" => quiet = true,
            "--help" | "-h" => return Err(GateError::Usage(USAGE.to_string())),
            other if other.starts_with('-') => {
                return Err(GateError::Usage(format!("unknown flag `{other}`\n{USAGE}")))
            }
            other => positional.push(PathBuf::from(other)),
        }
    }
    if positional.len() != 2 {
        return Err(GateError::Usage(format!(
            "expected exactly two manifest paths, got {}\n{USAGE}",
            positional.len()
        )));
    }
    let candidate = positional.pop().unwrap_or_default();
    let baseline = positional.pop().unwrap_or_default();
    Ok(CliArgs {
        baseline,
        candidate,
        cfg,
        slowdown,
        json,
        quiet,
    })
}

fn parse_f64(s: &str, flag: &str) -> Result<f64, GateError> {
    s.parse::<f64>()
        .map_err(|_| GateError::Usage(format!("{flag} expects a number, got `{s}`")))
}

/// Checks a manifest's result-store hit rate against a minimum.
///
/// Returns the achieved hit rate on pass, or a diagnostic on failure
/// (missing store block, or a rate below `min`). Used by the CLI's
/// `--check-store` mode; pure so CI assertions are testable in-process.
pub fn check_store(m: &RunManifest, min: f64) -> Result<f64, String> {
    let Some(store) = &m.store else {
        return Err("manifest has no store block (was the run started with --store?)".to_string());
    };
    if store.hit_rate + f64::EPSILON < min {
        return Err(format!(
            "store hit rate {:.4} below required {:.4} ({} hits / {} misses, {} quarantined)",
            store.hit_rate, min, store.hits, store.misses, store.quarantined
        ));
    }
    Ok(store.hit_rate)
}

/// The `--check-store MIN_HIT_RATE MANIFEST` mode: 0 = pass, 1 = hit rate
/// below the minimum, 2 = usage/IO error.
fn run_check_store(args: &[String]) -> i32 {
    let [min_text, path] = args else {
        eprintln!("--check-store expects MIN_HIT_RATE and one manifest path\n{USAGE}");
        return 2;
    };
    let min = match min_text.parse::<f64>() {
        Ok(v) if (0.0..=1.0).contains(&v) => v,
        _ => {
            eprintln!("--check-store expects a hit rate in 0.0..=1.0, got `{min_text}`");
            return 2;
        }
    };
    let manifest = match load_manifest(Path::new(path)) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    match check_store(&manifest, min) {
        Ok(rate) => {
            println!("store check OK: hit rate {rate:.4} >= {min:.4}");
            0
        }
        Err(msg) => {
            eprintln!("store check FAILED: {msg}");
            1
        }
    }
}

/// Runs the gate end to end and returns the process exit code:
/// 0 = pass, 1 = regression, 2 = usage/IO error.
///
/// `args` excludes the binary name. Shared by the standalone
/// `hotgauge-perfgate` binary and the `hotgauge gate` subcommand.
pub fn run_cli(args: &[String]) -> i32 {
    // `--check-store` is its own mode, not a diff: intercept before the
    // two-manifest argument parser.
    if args.first().map(String::as_str) == Some("--check-store") {
        return run_check_store(&args[1..]);
    }
    let parsed = match parse_args(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let baseline = match load_manifest(&parsed.baseline) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let mut candidate = match load_manifest(&parsed.candidate) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    if parsed.slowdown != 1.0 {
        scale_timings(&mut candidate, parsed.slowdown);
        if !parsed.quiet {
            eprintln!(
                "note: candidate timings synthetically scaled by {:.2}x (--slowdown)",
                parsed.slowdown
            );
        }
    }
    let report = compare(&baseline, &candidate, &parsed.cfg);
    if let Some(path) = &parsed.json {
        if let Err(e) = hotgauge_telemetry::manifest::write_json_atomic(path, &report) {
            eprintln!("cannot write {}: {e}", path.display());
            return 2;
        }
    }
    if !parsed.quiet {
        print!("{}", render_report(&report));
    } else if !report.ok() {
        // Even quiet runs say why they failed.
        for row in report
            .rows
            .iter()
            .filter(|r| r.status == RowStatus::Regression)
        {
            eprintln!(
                "regression: {} {:+.1}% (tolerance {:.0}%)",
                row.id, row.delta_pct, row.tolerance_pct
            );
        }
    }
    if report.ok() {
        0
    } else {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotgauge_telemetry::manifest::{RunMetrics, StageMetrics};

    fn manifest_with(total_s: f64, p99_s: f64, allocs: u64) -> RunManifest {
        let mut m = RunManifest {
            schema_version: 2,
            tool: "perf_rounds".into(),
            args: vec![],
            config: Default::default(),
            results: serde_json::Value::Map(vec![
                ("rounds".to_string(), serde_json::Value::U64(4)),
                (
                    "gate_mean_s".to_string(),
                    serde_json::Value::F64(total_s / 4.0),
                ),
            ]),
            metrics: None,
            store: None,
        };
        m.metrics = Some(RunMetrics {
            stages: vec![StageMetrics {
                label: "stage.thermal".into(),
                calls: 100,
                total_s,
                avg_s: total_s / 100.0,
                min_s: total_s / 200.0,
                max_s: total_s / 50.0,
                p50_s: Some(total_s / 100.0),
                p90_s: Some(total_s / 80.0),
                p99_s: Some(p99_s),
                allocs: Some(allocs),
                alloc_bytes: Some(allocs * 1024),
                share: 1.0,
            }],
            counters: vec![hotgauge_telemetry::manifest::CounterMetrics {
                label: "thermal.cg_iterations".into(),
                calls: 100,
                total: 4000.0,
                avg: 40.0,
                min: 30.0,
                max: 50.0,
            }],
            dropped_events: 0,
        });
        m
    }

    #[test]
    fn identical_manifests_pass() {
        let m = manifest_with(2.0, 0.03, 10_000);
        let report = compare(&m, &m.clone(), &GateConfig::default());
        assert!(report.ok());
        assert_eq!(report.regressions, 0);
        assert!(report.passed > 0, "gated metrics must be compared");
        // Counters are informational by default.
        let counter = report
            .rows
            .iter()
            .find(|r| r.id == "counter.thermal.cg_iterations.total")
            .expect("counter row present");
        assert_eq!(counter.status, RowStatus::Info);
    }

    #[test]
    fn regression_beyond_tolerance_fails() {
        let base = manifest_with(2.0, 0.03, 10_000);
        let cand = manifest_with(3.0, 0.05, 10_000); // +50% time
        let report = compare(&base, &cand, &GateConfig::default());
        assert!(!report.ok());
        let row = report
            .rows
            .iter()
            .find(|r| r.id == "stage.thermal.total_s")
            .expect("total_s row");
        assert_eq!(row.status, RowStatus::Regression);
        assert!((row.delta_pct - 50.0).abs() < 1e-9);
    }

    #[test]
    fn improvement_is_not_a_failure() {
        let base = manifest_with(2.0, 0.03, 10_000);
        let cand = manifest_with(1.0, 0.015, 10_000);
        let report = compare(&base, &cand, &GateConfig::default());
        assert!(report.ok());
        assert!(report.improvements > 0);
    }

    #[test]
    fn alloc_regression_fails_with_alloc_tolerance() {
        let base = manifest_with(2.0, 0.03, 10_000);
        let cand = manifest_with(2.0, 0.03, 12_000); // +20% allocs > 10% tol
        let report = compare(&base, &cand, &GateConfig::default());
        assert!(!report.ok());
        let row = report
            .rows
            .iter()
            .find(|r| r.id == "stage.thermal.allocs")
            .expect("allocs row");
        assert_eq!(row.status, RowStatus::Regression);
        assert!((row.tolerance_pct - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sub_floor_metrics_are_skipped() {
        // 10us of total time: even a 10x regression is noise.
        let base = manifest_with(1e-5, 1e-6, 10);
        let cand = manifest_with(1e-4, 1e-5, 20);
        let report = compare(&base, &cand, &GateConfig::default());
        assert!(report.ok(), "sub-floor timings must not gate");
        assert!(report
            .rows
            .iter()
            .filter(|r| r.kind == MetricKind::Time)
            .all(|r| r.status == RowStatus::Skipped));
    }

    #[test]
    fn exact_override_beats_kind_tolerance() {
        let base = manifest_with(2.0, 0.03, 10_000);
        let cand = manifest_with(2.2, 0.033, 10_000); // +10%
        let mut cfg = GateConfig::default();
        cfg.overrides
            .push(("stage.thermal.total_s".to_string(), 0.05));
        let report = compare(&base, &cand, &cfg);
        let row = report
            .rows
            .iter()
            .find(|r| r.id == "stage.thermal.total_s")
            .expect("total_s row");
        assert_eq!(
            row.status,
            RowStatus::Regression,
            "5% override must gate +10%"
        );
        assert!((row.tolerance_pct - 5.0).abs() < 1e-9);
    }

    #[test]
    fn gate_results_leaves_are_extracted_and_gated() {
        let base = manifest_with(2.0, 0.03, 10_000);
        let cand = manifest_with(4.0, 0.03, 10_000); // gate_mean_s doubles
        let metrics = extract_metrics(&base);
        assert!(metrics.iter().any(|m| m.id == "results.gate_mean_s"));
        assert!(
            !metrics.iter().any(|m| m.id == "results.rounds"),
            "non-gate_ results keys must not be compared"
        );
        let report = compare(&base, &cand, &GateConfig::default());
        let row = report
            .rows
            .iter()
            .find(|r| r.id == "results.gate_mean_s")
            .expect("gate_mean_s row");
        assert_eq!(row.status, RowStatus::Regression);
    }

    #[test]
    fn scale_timings_drives_a_synthetic_regression() {
        let base = manifest_with(2.0, 0.03, 10_000);
        let mut cand = base.clone();
        scale_timings(&mut cand, 1.5);
        let report = compare(&base, &cand, &GateConfig::default());
        assert!(!report.ok(), "1.5x slowdown must fail a 25% gate");
        // Allocations are untouched by the slowdown hook.
        let allocs = report
            .rows
            .iter()
            .find(|r| r.id == "stage.thermal.allocs")
            .expect("allocs row");
        assert_eq!(allocs.status, RowStatus::Pass);
        // gate_* results leaves scale too.
        let gate = report
            .rows
            .iter()
            .find(|r| r.id == "results.gate_mean_s")
            .expect("gate row");
        assert_eq!(gate.status, RowStatus::Regression);
    }

    #[test]
    fn v1_manifest_without_percentiles_still_gates_totals() {
        let mut base = manifest_with(2.0, 0.03, 10_000);
        if let Some(metrics) = &mut base.metrics {
            for s in &mut metrics.stages {
                s.p50_s = None;
                s.p90_s = None;
                s.p99_s = None;
                s.allocs = None;
                s.alloc_bytes = None;
            }
        }
        let cand = base.clone();
        let report = compare(&base, &cand, &GateConfig::default());
        assert!(report.ok());
        assert!(report.rows.iter().any(|r| r.id == "stage.thermal.total_s"));
        assert!(!report.rows.iter().any(|r| r.id == "stage.thermal.p50_s"));
    }

    #[test]
    fn missing_metrics_are_reported_not_gated() {
        let base = manifest_with(2.0, 0.03, 10_000);
        let mut cand = manifest_with(2.0, 0.03, 10_000);
        if let Some(metrics) = &mut cand.metrics {
            metrics.stages[0].label = "stage.renamed".into();
        }
        let report = compare(&base, &cand, &GateConfig::default());
        assert!(report.ok(), "renamed metrics inform, not fail");
        assert!(report
            .rows
            .iter()
            .any(|r| r.id == "stage.thermal.total_s" && r.status == RowStatus::BaselineOnly));
        assert!(report
            .rows
            .iter()
            .any(|r| r.id == "stage.renamed.total_s" && r.status == RowStatus::CandidateOnly));
    }

    fn with_counter(mut m: RunManifest, label: &str, total: f64) -> RunManifest {
        if let Some(metrics) = &mut m.metrics {
            metrics
                .counters
                .push(hotgauge_telemetry::manifest::CounterMetrics {
                    label: label.into(),
                    calls: 10,
                    total,
                    avg: total / 10.0,
                    min: 0.0,
                    max: total,
                });
        }
        m
    }

    #[test]
    fn counter_prefix_gates_matching_counters_only() {
        let base = with_counter(
            manifest_with(2.0, 0.03, 10_000),
            "solver.lockstep_runs",
            133.0,
        );
        // Both counters drift: CG iterations (+50%, a fidelity question)
        // and the lockstep run count (+50%, a batching promise).
        let mut cand = with_counter(
            manifest_with(2.0, 0.03, 10_000),
            "solver.lockstep_runs",
            200.0,
        );
        if let Some(metrics) = &mut cand.metrics {
            metrics.counters[0].total = 6000.0;
        }
        let cfg = GateConfig {
            gate_counter_prefixes: vec!["solver.".to_string()],
            ..GateConfig::default()
        };
        let report = compare(&base, &cand, &cfg);
        assert!(!report.ok(), "prefixed counter drift must fail the gate");
        let row = |id: &str| {
            report
                .rows
                .iter()
                .find(|r| r.id == id)
                .unwrap_or_else(|| panic!("{id} row present"))
        };
        assert_eq!(
            row("counter.solver.lockstep_runs.total").status,
            RowStatus::Regression
        );
        assert_eq!(
            row("counter.thermal.cg_iterations.total").status,
            RowStatus::Info,
            "unmatched counters stay informational"
        );
        // A prefix that matches nothing leaves every counter informational.
        let inert = GateConfig {
            gate_counter_prefixes: vec!["analysis.simd_rows".to_string()],
            ..GateConfig::default()
        };
        assert!(compare(&base, &cand, &inert).ok());
    }

    #[test]
    fn counter_prefix_passes_when_counters_are_stable() {
        let m = with_counter(manifest_with(2.0, 0.03, 10_000), "solver.batch_width", 17.0);
        let cfg = GateConfig {
            gate_counter_prefixes: vec!["solver.".to_string()],
            ..GateConfig::default()
        };
        let report = compare(&m, &m.clone(), &cfg);
        assert!(report.ok());
        let row = report
            .rows
            .iter()
            .find(|r| r.id == "counter.solver.batch_width.total")
            .expect("batch_width row present");
        assert_eq!(row.status, RowStatus::Pass, "gated and equal means Pass");
    }

    #[test]
    fn percentile_deltas_within_bucket_width_are_noise() {
        // +2% on p99 with a 0% tolerance override: below the histogram's
        // ~3.1% bucket width, so it must read as quantization, not signal.
        let base = manifest_with(2.0, 0.0300, 10_000);
        let cand = manifest_with(2.0, 0.0306, 10_000);
        let mut cfg = GateConfig::default();
        cfg.overrides.push(("stage.thermal.p99_s".to_string(), 0.0));
        let report = compare(&base, &cand, &cfg);
        let row = report
            .rows
            .iter()
            .find(|r| r.id == "stage.thermal.p99_s")
            .expect("p99 row");
        assert_eq!(row.status, RowStatus::Pass, "sub-bucket delta must pass");
        // A delta clearly past tolerance + bucket width still regresses.
        let cand = manifest_with(2.0, 0.0320, 10_000); // +6.7%
        let report = compare(&base, &cand, &cfg);
        let row = report
            .rows
            .iter()
            .find(|r| r.id == "stage.thermal.p99_s")
            .expect("p99 row");
        assert_eq!(row.status, RowStatus::Regression);
        // Non-percentile timings keep the exact tolerance: +2% total_s
        // against a 0% override is a regression, no bucket allowance.
        let mut cfg = GateConfig::default();
        cfg.overrides
            .push(("stage.thermal.total_s".to_string(), 0.0));
        let cand = manifest_with(2.04, 0.03, 10_000);
        let report = compare(&base, &cand, &cfg);
        let row = report
            .rows
            .iter()
            .find(|r| r.id == "stage.thermal.total_s")
            .expect("total_s row");
        assert_eq!(row.status, RowStatus::Regression);
    }

    #[test]
    fn span_p99_gate_applies_and_requires_presence() {
        let base = manifest_with(2.0, 0.030, 10_000);
        let cand = manifest_with(2.0, 0.035, 10_000); // +16.7% p99
        let cfg = GateConfig {
            gate_span_p99: vec![("stage.thermal".to_string(), 0.05)],
            ..GateConfig::default()
        };
        // 5% tolerance + 3.1% bucket width < 16.7%: regression.
        let report = compare(&base, &cand, &cfg);
        assert!(!report.ok());
        let row = report
            .rows
            .iter()
            .find(|r| r.id == "stage.thermal.p99_s")
            .expect("p99 row");
        assert_eq!(row.status, RowStatus::Regression);
        // The default 25% tolerance would have let that through.
        assert!(compare(&base, &cand, &GateConfig::default()).ok());
        // A gated span missing from the candidate fails instead of
        // informing as BaselineOnly.
        let mut dropped = base.clone();
        if let Some(metrics) = &mut dropped.metrics {
            metrics.stages.clear();
        }
        let report = compare(&base, &dropped, &cfg);
        assert!(!report.ok(), "missing gated span must fail");
        assert!(report
            .rows
            .iter()
            .any(|r| r.id == "stage.thermal.p99_s" && r.status == RowStatus::Regression));
        // A span absent from both manifests fails too.
        let report = compare(&dropped, &dropped.clone(), &cfg);
        assert!(!report.ok(), "span absent everywhere must fail");
    }

    #[test]
    fn cli_args_parse_and_reject() {
        let ok = parse_args(&[
            "a.json".to_string(),
            "b.json".to_string(),
            "--time-tol-pct".to_string(),
            "30".to_string(),
            "--override".to_string(),
            "stage.thermal.p99_s=50".to_string(),
            "--slowdown".to_string(),
            "1.5".to_string(),
            "--gate-counter".to_string(),
            "solver.".to_string(),
            "--gate-counter".to_string(),
            "analysis.simd_rows".to_string(),
            "--gate-span-p99".to_string(),
            "solver.tri_sweep=10".to_string(),
            "--quiet".to_string(),
        ]);
        let parsed = match ok {
            Ok(p) => p,
            Err(e) => panic!("expected parse success, got {e}"),
        };
        assert!((parsed.cfg.time_rel - 0.30).abs() < 1e-12);
        assert_eq!(parsed.cfg.overrides.len(), 1);
        assert_eq!(
            parsed.cfg.gate_counter_prefixes,
            vec!["solver.".to_string(), "analysis.simd_rows".to_string()]
        );
        assert!(
            !parsed.cfg.gate_counters,
            "prefixes must not gate everything"
        );
        assert_eq!(parsed.cfg.gate_span_p99.len(), 1);
        assert_eq!(parsed.cfg.gate_span_p99[0].0, "solver.tri_sweep");
        assert!((parsed.cfg.gate_span_p99[0].1 - 0.10).abs() < 1e-12);
        assert!((parsed.slowdown - 1.5).abs() < 1e-12);
        assert!(parsed.quiet);
        assert!(parse_args(&["one.json".to_string()]).is_err());
        assert!(parse_args(&[
            "a".to_string(),
            "b".to_string(),
            "--gate-counter".to_string(),
            String::new(),
        ])
        .is_err());
        assert!(parse_args(&["a".to_string(), "b".to_string(), "--bogus".to_string()]).is_err());
        assert!(parse_args(&[
            "a".to_string(),
            "b".to_string(),
            "--gate-span-p99".to_string(),
            "no-equals-sign".to_string(),
        ])
        .is_err());
        assert!(parse_args(&[
            "a".to_string(),
            "b".to_string(),
            "--gate-span-p99".to_string(),
            "=10".to_string(),
        ])
        .is_err());
        assert!(parse_args(&[
            "a".to_string(),
            "b".to_string(),
            "--time-tol-pct".to_string(),
            "abc".to_string()
        ])
        .is_err());
    }

    #[test]
    fn report_renders_and_serializes() {
        let base = manifest_with(2.0, 0.03, 10_000);
        let cand = manifest_with(3.0, 0.05, 12_000);
        let report = compare(&base, &cand, &GateConfig::default());
        let table = render_report(&report);
        assert!(table.contains("stage.thermal.total_s"));
        assert!(table.contains("Regression"));
        assert!(table.contains("regression(s)"));
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"regressions\""));
        assert!(json.contains("\"Regression\""));
    }

    fn manifest_with_store(hits: u64, misses: u64) -> RunManifest {
        let lookups = hits + misses;
        let hit_rate = if lookups == 0 {
            1.0
        } else {
            hits as f64 / lookups as f64
        };
        let mut m = manifest_with(2.0, 0.03, 10_000);
        m.store = Some(hotgauge_telemetry::manifest::StoreManifest {
            hits,
            misses,
            writes: misses,
            quarantined: 0,
            hit_rate,
        });
        m
    }

    #[test]
    fn store_block_extracts_lower_is_better_metrics() {
        let m = manifest_with_store(6, 2);
        let metrics = extract_metrics(&m);
        let misses = metrics.iter().find(|x| x.id == "store.misses").unwrap();
        assert_eq!(misses.kind, MetricKind::Counter);
        assert_eq!(misses.value, 2.0);
        let miss_rate = metrics.iter().find(|x| x.id == "store.miss_rate").unwrap();
        assert!((miss_rate.value - 0.25).abs() < 1e-12);
        // No store block → no store metrics.
        let plain = manifest_with(2.0, 0.03, 10_000);
        assert!(!extract_metrics(&plain)
            .iter()
            .any(|x| x.id.starts_with("store.")));
    }

    #[test]
    fn store_miss_regression_gates_under_counter_prefix() {
        let base = manifest_with_store(8, 0);
        let cand = manifest_with_store(4, 4);
        let cfg = GateConfig {
            gate_counter_prefixes: vec!["store.".to_string()],
            ..GateConfig::default()
        };
        let report = compare(&base, &cand, &cfg);
        assert!(!report.ok(), "a hit-rate collapse must fail the gate");
        // Without the prefix the store metrics stay informational.
        let report = compare(&base, &cand, &GateConfig::default());
        assert!(report.ok());
    }

    #[test]
    fn check_store_thresholds() {
        let m = manifest_with_store(9, 1);
        assert!(check_store(&m, 0.9).is_ok());
        let rate = check_store(&m, 0.5).unwrap();
        assert!((rate - 0.9).abs() < 1e-12);
        assert!(check_store(&m, 0.95).is_err());
        let plain = manifest_with(2.0, 0.03, 10_000);
        assert!(check_store(&plain, 0.0).is_err(), "no store block fails");
        // A full-hit manifest passes the strictest check.
        let all_hits = manifest_with_store(5, 0);
        assert!(check_store(&all_hits, 1.0).is_ok());
    }

    #[test]
    fn check_store_cli_mode() {
        let dir = std::env::temp_dir().join(format!("hotgauge-checkstore-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("good.json");
        hotgauge_telemetry::manifest::write_json_atomic(&good, &manifest_with_store(5, 0)).unwrap();
        let bad = dir.join("bad.json");
        hotgauge_telemetry::manifest::write_json_atomic(&bad, &manifest_with_store(1, 3)).unwrap();
        let cli = |rate: &str, path: &std::path::Path| {
            run_cli(&[
                "--check-store".to_string(),
                rate.to_string(),
                path.display().to_string(),
            ])
        };
        assert_eq!(cli("1.0", &good), 0);
        assert_eq!(cli("0.5", &bad), 1);
        assert_eq!(cli("2.0", &good), 2, "rate above 1.0 is a usage error");
        assert_eq!(cli("1.0", &dir.join("missing.json")), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
