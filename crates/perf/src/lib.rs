//! Interval-model out-of-order core performance simulator — the Rust
//! stand-in for Sniper's instruction-window-centric (ROB) core model.
//!
//! * [`config`] — Table I core and cache parameters;
//! * [`instr`] — the micro-op stream interface ([`instr::InstrSource`]);
//! * [`branch`] — gshare branch predictor;
//! * [`cache`] — set-associative LRU caches and the L1/L2/L3 hierarchy;
//! * [`engine`] — the mechanistic interval core ([`engine::CoreSim`]);
//! * [`smt`] — 2-way SMT stream interleaving;
//! * [`activity`] — per-window unit activity counters consumed by the power
//!   model.
//!
//! # Examples
//!
//! ```
//! use hotgauge_perf::prelude::*;
//!
//! struct Loop(u64);
//! impl InstrSource for Loop {
//!     fn next_instr(&mut self) -> Instr {
//!         self.0 += 4;
//!         Instr::compute(InstrClass::IntSimple, self.0 & 0xFFF)
//!     }
//! }
//!
//! let mut core = CoreSim::new(CoreConfig::default(), MemoryConfig::default());
//! let window = core.run_cycles(&mut Loop(0), 100_000);
//! assert!(window.ipc() > 1.0);
//! ```

// Prefetch hints in the cache model are the one sanctioned use of `unsafe`
// (see `cache::Cache::prefetch_set`); everything else must stay safe, so
// deny-with-local-allow rather than forbid.
// hotgauge-lint: allow(L008, "cache::Cache::prefetch_set carries the sole SAFETY-commented unsafe block; deny + local allow keeps it pinned")
#![deny(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod activity;
pub mod branch;
pub mod cache;
pub mod config;
pub mod engine;
pub mod instr;
pub mod smt;

pub use crate::activity::ActivityCounters;
pub use crate::branch::GsharePredictor;
pub use crate::cache::{AccessResult, Cache, HitLevel, MemoryHierarchy};
pub use crate::config::{CacheConfig, CoreConfig, MemoryConfig};
pub use crate::engine::CoreSim;
pub use crate::instr::{Instr, InstrClass, InstrSource};
pub use crate::smt::SmtInterleaver;

/// Convenient glob import of the most used types.
pub mod prelude {
    pub use crate::activity::ActivityCounters;
    pub use crate::cache::{Cache, HitLevel, MemoryHierarchy};
    pub use crate::config::{CacheConfig, CoreConfig, MemoryConfig};
    pub use crate::engine::CoreSim;
    pub use crate::instr::{Instr, InstrClass, InstrSource};
    pub use crate::smt::SmtInterleaver;
}
