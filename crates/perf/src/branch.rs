//! Branch predictors: gshare, bimodal, and the Alpha-21264-style tournament
//! combination used by the core model.

/// A bimodal predictor: per-PC 2-bit saturating counters. Robust to outcome
/// noise (it learns each branch's bias independent of history).
#[derive(Debug, Clone)]
pub struct BimodalPredictor {
    table: Vec<u8>,
    mask: u64,
}

impl BimodalPredictor {
    /// A predictor with `2^bits` counters.
    pub fn new(bits: u32) -> Self {
        assert!((2..=24).contains(&bits));
        Self {
            table: vec![2u8; 1 << bits],
            mask: (1u64 << bits) - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Predicted direction for `pc`.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    /// Trains with the actual outcome.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let c = self.table[idx];
        self.table[idx] = if taken {
            (c + 1).min(3)
        } else {
            c.saturating_sub(1)
        };
    }
}

/// A tournament predictor: bimodal + gshare with a per-PC chooser, as in the
/// Alpha 21264. The chooser learns, per branch, which component predicts it
/// better — pattern-sensitive branches go to gshare, noisy-but-biased
/// branches to bimodal.
#[derive(Debug, Clone)]
pub struct TournamentPredictor {
    bimodal: BimodalPredictor,
    gshare: GsharePredictor,
    chooser: Vec<u8>,
    chooser_mask: u64,
    lookups: u64,
    mispredicts: u64,
}

impl TournamentPredictor {
    /// A tournament predictor with the given table sizes (in index bits).
    pub fn new(bimodal_bits: u32, gshare_bits: u32, chooser_bits: u32) -> Self {
        Self {
            bimodal: BimodalPredictor::new(bimodal_bits),
            gshare: GsharePredictor::new(gshare_bits),
            chooser: vec![1u8; 1 << chooser_bits], // weakly favor bimodal
            chooser_mask: (1u64 << chooser_bits) - 1,
            lookups: 0,
            mispredicts: 0,
        }
    }

    /// Predicts `pc`, updates all components with `taken`, and returns
    /// whether the prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        self.lookups += 1;
        let b_pred = self.bimodal.predict(pc);
        let g_pred = self.gshare.predict(pc);
        let ci = ((pc >> 2) & self.chooser_mask) as usize;
        let use_gshare = self.chooser[ci] >= 2;
        let pred = if use_gshare { g_pred } else { b_pred };
        let correct = pred == taken;
        if !correct {
            self.mispredicts += 1;
        }
        // Chooser trains toward whichever component was right (when they
        // disagree).
        let b_ok = b_pred == taken;
        let g_ok = g_pred == taken;
        if b_ok != g_ok {
            let c = self.chooser[ci];
            self.chooser[ci] = if g_ok {
                (c + 1).min(3)
            } else {
                c.saturating_sub(1)
            };
        }
        self.bimodal.update(pc, taken);
        self.gshare.update(pc, taken);
        correct
    }

    /// Lookups so far.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Lifetime misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }

    /// Resets statistics (not learned state).
    pub fn reset_stats(&mut self) {
        self.lookups = 0;
        self.mispredicts = 0;
    }
}

/// A gshare predictor: global history XOR PC indexing a table of 2-bit
/// saturating counters.
#[derive(Debug, Clone)]
pub struct GsharePredictor {
    history: u64,
    history_bits: u32,
    table: Vec<u8>,
    lookups: u64,
    mispredicts: u64,
}

impl GsharePredictor {
    /// A predictor with `2^history_bits` two-bit counters.
    pub fn new(history_bits: u32) -> Self {
        assert!((2..=24).contains(&history_bits), "unreasonable table size");
        Self {
            history: 0,
            history_bits,
            table: vec![2u8; 1 << history_bits], // weakly taken
            lookups: 0,
            mispredicts: 0,
        }
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.history_bits) - 1;
        (((pc >> 2) ^ self.history) & mask) as usize
    }

    /// Predicted direction for `pc` under the current global history.
    pub fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)] >= 2
    }

    /// Trains the indexed counter and shifts the outcome into the history.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        let counter = self.table[idx];
        self.table[idx] = if taken {
            (counter + 1).min(3)
        } else {
            counter.saturating_sub(1)
        };
        let mask = (1u64 << self.history_bits) - 1;
        self.history = ((self.history << 1) | taken as u64) & mask;
    }

    /// Predicts and updates with the actual outcome; returns `true` if the
    /// prediction was correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        self.lookups += 1;
        let correct = self.predict(pc) == taken;
        if !correct {
            self.mispredicts += 1;
        }
        self.update(pc, taken);
        correct
    }

    /// Lookups performed so far.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Mispredictions so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction rate over the predictor's lifetime.
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }

    /// Resets counters (not the learned state).
    pub fn reset_stats(&mut self) {
        self.lookups = 0;
        self.mispredicts = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_always_taken() {
        let mut p = GsharePredictor::new(10);
        for _ in 0..1000 {
            p.predict_and_update(0x400, true);
        }
        p.reset_stats();
        for _ in 0..1000 {
            p.predict_and_update(0x400, true);
        }
        assert!(p.mispredict_rate() < 0.01, "{}", p.mispredict_rate());
    }

    #[test]
    fn learns_alternating_pattern_via_history() {
        let mut p = GsharePredictor::new(12);
        let mut taken = false;
        for _ in 0..4000 {
            p.predict_and_update(0x400, taken);
            taken = !taken;
        }
        p.reset_stats();
        for _ in 0..4000 {
            p.predict_and_update(0x400, taken);
            taken = !taken;
        }
        assert!(p.mispredict_rate() < 0.05, "{}", p.mispredict_rate());
    }

    #[test]
    fn random_stream_mispredicts_heavily() {
        let mut p = GsharePredictor::new(10);
        // Deterministic pseudo-random outcomes.
        let mut x = 0x12345678u64;
        for i in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            p.predict_and_update(0x400 + (i % 64) * 4, (x >> 62) & 1 == 1);
        }
        assert!(p.mispredict_rate() > 0.3, "{}", p.mispredict_rate());
    }

    #[test]
    fn tournament_tolerates_noisy_biased_branches() {
        // 10% iid outcome noise on biased branches: gshare's history gets
        // polluted, but the tournament's bimodal side keeps the mispredict
        // rate near the noise floor.
        let mut t = TournamentPredictor::new(12, 12, 12);
        let mut x = 99u64;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..60_000u64 {
            let pc = 0x400 + (i % 200) * 4;
            let bias = (pc / 4) % 3 != 0;
            let flip = rnd() % 10 == 0;
            t.predict_and_update(pc, bias ^ flip);
        }
        t.reset_stats();
        for i in 0..60_000u64 {
            let pc = 0x400 + (i % 200) * 4;
            let bias = (pc / 4) % 3 != 0;
            let flip = rnd() % 10 == 0;
            t.predict_and_update(pc, bias ^ flip);
        }
        assert!(
            t.mispredict_rate() < 0.16,
            "tournament rate {} should be near the 10% noise floor",
            t.mispredict_rate()
        );
    }

    #[test]
    fn tournament_learns_patterns_via_gshare_side() {
        // A strictly alternating branch is hopeless for bimodal but easy for
        // gshare; the chooser must route it there.
        let mut t = TournamentPredictor::new(10, 12, 10);
        let mut taken = false;
        for _ in 0..8_000 {
            t.predict_and_update(0x800, taken);
            taken = !taken;
        }
        t.reset_stats();
        for _ in 0..8_000 {
            t.predict_and_update(0x800, taken);
            taken = !taken;
        }
        assert!(t.mispredict_rate() < 0.05, "{}", t.mispredict_rate());
    }

    #[test]
    fn bimodal_learns_bias() {
        let mut b = BimodalPredictor::new(10);
        for _ in 0..100 {
            b.update(0x40, true);
        }
        assert!(b.predict(0x40));
        for _ in 0..100 {
            b.update(0x40, false);
        }
        assert!(!b.predict(0x40));
    }

    #[test]
    fn stats_accumulate() {
        let mut p = GsharePredictor::new(8);
        for _ in 0..10 {
            p.predict_and_update(0, true);
        }
        assert_eq!(p.lookups(), 10);
        assert!(p.mispredicts() <= 10);
    }
}
