//! Core and memory-hierarchy configuration (Table I of the paper).

use serde::{Deserialize, Serialize};

/// Out-of-order core parameters.
///
/// Defaults reproduce Table I: 224-entry ROB, 72-entry load queue, 56-entry
/// store queue, 97-entry scheduler, 5 GHz, 2-way SMT.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Core clock frequency, GHz (5 GHz turbo operating point).
    pub frequency_ghz: f64,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Load-queue entries.
    pub lq_entries: usize,
    /// Store-queue entries.
    pub sq_entries: usize,
    /// Unified scheduler (instruction window) entries.
    pub scheduler_entries: usize,
    /// Front-end fetch/decode width, instructions per cycle.
    pub fetch_width: usize,
    /// Rename/dispatch width, micro-ops per cycle.
    pub dispatch_width: usize,
    /// Issue width (execution ports).
    pub issue_width: usize,
    /// Retire width.
    pub commit_width: usize,
    /// Branch misprediction penalty, cycles (front-end refill).
    pub mispredict_penalty: u64,
    /// SMT threads per core.
    pub smt_threads: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self {
            frequency_ghz: 5.0,
            rob_entries: 224,
            lq_entries: 72,
            sq_entries: 56,
            scheduler_entries: 97,
            fetch_width: 6,
            dispatch_width: 4,
            issue_width: 8,
            commit_width: 4,
            mispredict_penalty: 16,
            smt_threads: 2,
        }
    }
}

impl CoreConfig {
    /// Cycles per second.
    pub fn hz(&self) -> f64 {
        self.frequency_ghz * 1e9
    }

    /// Seconds represented by `cycles` at this frequency.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.hz()
    }

    /// The paper's simulation time step: 1 M cycles (200 µs at 5 GHz).
    pub const TIME_STEP_CYCLES: u64 = 1_000_000;
}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity, bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways).
    pub ways: usize,
    /// Line size, bytes.
    pub line_bytes: usize,
    /// Access latency, cycles.
    pub latency_cycles: u64,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.capacity_bytes / (self.ways * self.line_bytes)
    }

    /// 32 KiB 8-way private L1 (I or D), Table I.
    pub fn l1_default() -> Self {
        Self {
            capacity_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
            latency_cycles: 4,
        }
    }

    /// 512 KiB 8-way private L2, Table I.
    pub fn l2_default() -> Self {
        Self {
            capacity_bytes: 512 * 1024,
            ways: 8,
            line_bytes: 64,
            latency_cycles: 14,
        }
    }

    /// 16 MiB shared ring L3, Table I.
    pub fn l3_default() -> Self {
        Self {
            capacity_bytes: 16 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
            latency_cycles: 44,
        }
    }
}

/// Full memory-hierarchy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Private L2.
    pub l2: CacheConfig,
    /// Shared L3.
    pub l3: CacheConfig,
    /// DRAM access latency, cycles (at the core clock).
    pub dram_latency_cycles: u64,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        Self {
            l1i: CacheConfig::l1_default(),
            l1d: CacheConfig::l1_default(),
            l2: CacheConfig::l2_default(),
            l3: CacheConfig::l3_default(),
            dram_latency_cycles: 280,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = CoreConfig::default();
        assert_eq!(c.rob_entries, 224);
        assert_eq!(c.lq_entries, 72);
        assert_eq!(c.sq_entries, 56);
        assert_eq!(c.scheduler_entries, 97);
        assert_eq!(c.smt_threads, 2);
        assert!((c.frequency_ghz - 5.0).abs() < 1e-12);
    }

    #[test]
    fn one_m_cycles_is_200us_at_5ghz() {
        let c = CoreConfig::default();
        let s = c.cycles_to_seconds(CoreConfig::TIME_STEP_CYCLES);
        assert!((s - 200e-6).abs() < 1e-12);
    }

    #[test]
    fn cache_sets() {
        assert_eq!(CacheConfig::l1_default().sets(), 64);
        assert_eq!(CacheConfig::l2_default().sets(), 1024);
        assert_eq!(CacheConfig::l3_default().sets(), 16384);
    }

    #[test]
    fn hierarchy_capacities_match_table1() {
        let m = MemoryConfig::default();
        assert_eq!(m.l1i.capacity_bytes, 32 * 1024);
        assert_eq!(m.l1d.capacity_bytes, 32 * 1024);
        assert_eq!(m.l2.capacity_bytes, 512 * 1024);
        assert_eq!(m.l3.capacity_bytes, 16 * 1024 * 1024);
    }
}
