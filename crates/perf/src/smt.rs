//! Simultaneous multi-threading support: interleaves two micro-op streams
//! onto one core (Table I models 2 threads/core).

use crate::instr::{Instr, InstrSource};

/// Round-robin interleaving of two hardware threads onto one core's dispatch
/// bandwidth. The shared structures (caches, predictor) are exercised by
/// both streams, which is the first-order SMT interference effect.
#[derive(Debug)]
pub struct SmtInterleaver<A, B> {
    a: A,
    b: B,
    toggle: bool,
}

impl<A: InstrSource, B: InstrSource> SmtInterleaver<A, B> {
    /// Creates an interleaver over two thread streams.
    pub fn new(a: A, b: B) -> Self {
        Self {
            a,
            b,
            toggle: false,
        }
    }

    /// Consumes the interleaver, returning the thread sources.
    pub fn into_inner(self) -> (A, B) {
        (self.a, self.b)
    }
}

impl<A: InstrSource, B: InstrSource> InstrSource for SmtInterleaver<A, B> {
    fn next_instr(&mut self) -> Instr {
        self.toggle = !self.toggle;
        if self.toggle {
            self.a.next_instr()
        } else {
            self.b.next_instr()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CoreConfig, MemoryConfig};
    use crate::engine::CoreSim;
    use crate::instr::InstrClass;

    struct Tagged {
        pc: u64,
    }
    impl InstrSource for Tagged {
        fn next_instr(&mut self) -> Instr {
            self.pc += 4;
            Instr::compute(InstrClass::IntSimple, self.pc)
        }
    }

    struct FpOnly {
        pc: u64,
    }
    impl InstrSource for FpOnly {
        fn next_instr(&mut self) -> Instr {
            self.pc += 4;
            Instr::compute(InstrClass::FpScalar, self.pc)
        }
    }

    #[test]
    fn interleaves_fairly() {
        let mut s = SmtInterleaver::new(Tagged { pc: 0 }, FpOnly { pc: 0x100000 });
        let mut int_count = 0;
        let mut fp_count = 0;
        for _ in 0..100 {
            match s.next_instr().class {
                InstrClass::IntSimple => int_count += 1,
                InstrClass::FpScalar => fp_count += 1,
                _ => unreachable!(),
            }
        }
        assert_eq!(int_count, 50);
        assert_eq!(fp_count, 50);
    }

    #[test]
    fn smt_window_mixes_unit_activity() {
        let mut core = CoreSim::new(CoreConfig::default(), MemoryConfig::default());
        let mut src = SmtInterleaver::new(Tagged { pc: 0 }, FpOnly { pc: 0x100000 });
        let a = core.run_instructions(&mut src, 10_000);
        assert!(a.simple_alu_ops > 0);
        assert!(a.fpu_ops > 0);
        assert_eq!(a.simple_alu_ops, a.fpu_ops);
    }
}
