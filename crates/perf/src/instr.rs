//! The micro-op representation exchanged between workload generators and the
//! core model.

use serde::{Deserialize, Serialize};

/// Functional class of a micro-op; determines which execution unit it
/// exercises and therefore which floorplan unit its energy lands in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstrClass {
    /// Simple integer op (add/logic/shift).
    IntSimple,
    /// Complex integer op (multiply, divide, CRC...).
    IntComplex,
    /// Scalar floating-point op.
    FpScalar,
    /// 512-bit vector op (AVX-512).
    Avx512,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional or indirect branch.
    Branch,
}

impl InstrClass {
    /// Whether this class reads/writes the floating-point register file.
    pub fn is_fp(&self) -> bool {
        matches!(self, InstrClass::FpScalar | InstrClass::Avx512)
    }

    /// Whether this class accesses data memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, InstrClass::Load | InstrClass::Store)
    }
}

/// One micro-op of the dynamic instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Instr {
    /// Functional class.
    pub class: InstrClass,
    /// Instruction pointer (used for I-cache and branch predictor indexing).
    pub pc: u64,
    /// Effective data address for loads/stores (ignored otherwise).
    pub addr: u64,
    /// Actual branch outcome for branches (taken / not taken).
    pub taken: bool,
    /// Execution latency in cycles beyond 1 (e.g. dividers); usually 0.
    pub extra_latency: u8,
}

impl Instr {
    /// A compute micro-op of the given class at `pc`.
    pub fn compute(class: InstrClass, pc: u64) -> Self {
        Self {
            class,
            pc,
            addr: 0,
            taken: false,
            extra_latency: 0,
        }
    }

    /// A load from `addr`.
    pub fn load(pc: u64, addr: u64) -> Self {
        Self {
            class: InstrClass::Load,
            pc,
            addr,
            taken: false,
            extra_latency: 0,
        }
    }

    /// A store to `addr`.
    pub fn store(pc: u64, addr: u64) -> Self {
        Self {
            class: InstrClass::Store,
            pc,
            addr,
            taken: false,
            extra_latency: 0,
        }
    }

    /// A branch at `pc` with the given outcome.
    pub fn branch(pc: u64, taken: bool) -> Self {
        Self {
            class: InstrClass::Branch,
            pc,
            addr: 0,
            taken,
            extra_latency: 0,
        }
    }
}

/// A source of micro-ops — implemented by the workload generators.
///
/// Sources are infinite: the core pulls as many micro-ops as fit in a
/// simulation window (the paper simulates a fixed 200 M instructions of each
/// benchmark's region of interest, which the caller enforces by counting).
pub trait InstrSource {
    /// Produces the next micro-op of the dynamic stream.
    fn next_instr(&mut self) -> Instr;
}

/// Blanket implementation so `&mut S` is also a source.
impl<S: InstrSource + ?Sized> InstrSource for &mut S {
    fn next_instr(&mut self) -> Instr {
        (**self).next_instr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(InstrClass::FpScalar.is_fp());
        assert!(InstrClass::Avx512.is_fp());
        assert!(!InstrClass::Load.is_fp());
        assert!(InstrClass::Load.is_mem());
        assert!(InstrClass::Store.is_mem());
        assert!(!InstrClass::Branch.is_mem());
    }

    #[test]
    fn constructors() {
        let l = Instr::load(0x400, 0x1000);
        assert_eq!(l.class, InstrClass::Load);
        assert_eq!(l.addr, 0x1000);
        let b = Instr::branch(0x404, true);
        assert!(b.taken);
        assert_eq!(b.class, InstrClass::Branch);
    }
}
