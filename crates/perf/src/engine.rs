//! The interval-model out-of-order core.
//!
//! This is a mechanistic ("interval") core model in the style Sniper uses for
//! its instruction-window-centric simulations: sustained dispatch at the
//! pipeline width, interrupted by *intervals* caused by miss events —
//! branch mispredictions, long-latency loads, and serialized dependency
//! chains. Long-latency misses that fall within one reorder-buffer span of
//! each other overlap (memory-level parallelism); isolated misses stall the
//! window for their full latency minus the ROB drain the OoO engine hides.
//!
//! Every micro-op also increments the per-unit activity counters consumed by
//! the power model, which is what ultimately drives hotspot formation.

use crate::activity::ActivityCounters;
use crate::branch::TournamentPredictor;
use crate::cache::{HitLevel, MemoryHierarchy};
use crate::config::{CoreConfig, MemoryConfig};
use crate::instr::{InstrClass, InstrSource};

/// One simulated out-of-order core.
#[derive(Debug, Clone)]
pub struct CoreSim {
    cfg: CoreConfig,
    /// The core's view of the memory hierarchy.
    pub mem: MemoryHierarchy,
    /// Branch predictor.
    pub bpu: TournamentPredictor,
    last_fetch_line: u64,
    /// Instruction index of the most recent long-latency miss (for the MLP
    /// overlap window).
    last_long_miss: Option<u64>,
    icount: u64,
}

impl CoreSim {
    /// A fresh core with cold caches and an untrained predictor.
    pub fn new(cfg: CoreConfig, mem_cfg: MemoryConfig) -> Self {
        Self {
            cfg,
            mem: MemoryHierarchy::new(mem_cfg),
            bpu: TournamentPredictor::new(13, 13, 12),
            last_fetch_line: u64::MAX,
            last_long_miss: None,
            icount: 0,
        }
    }

    /// The core configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Total instructions executed over the core's lifetime.
    pub fn instruction_count(&self) -> u64 {
        self.icount
    }

    /// Runs instructions (without collecting a window) to warm the caches
    /// and branch predictor, as the paper does before each region of
    /// interest ("cache warm-up is always performed").
    ///
    /// Warm-up discards the activity counters, so it runs the
    /// `COUNT = false` specialization of the executor: every piece of model
    /// state (caches, predictor, MLP window, the workload stream's RNG)
    /// advances exactly as in a counted run — only the dead accounting
    /// stores are compiled out. Every co-simulation pays 2 M warm-up
    /// micro-ops per run before its first sampled window, which made these
    /// stores the hottest dead code in whole-figure sweeps.
    pub fn warm_up<S: InstrSource>(&mut self, src: &mut S, instructions: u64) {
        let mut sink = ActivityCounters::default();
        self.execute::<S, false>(src, WindowLimit::Instructions(instructions), &mut sink);
    }

    /// Runs until at least `cycles` core cycles have elapsed; returns the
    /// window's activity counters. This is the per-time-step entry point
    /// (1 M cycles = 200 µs at 5 GHz).
    pub fn run_cycles<S: InstrSource>(&mut self, src: &mut S, cycles: u64) -> ActivityCounters {
        let mut out = ActivityCounters::default();
        self.execute::<S, true>(src, WindowLimit::Cycles(cycles), &mut out);
        hotgauge_telemetry::counter!("perf.instructions", out.instructions);
        hotgauge_telemetry::counter!("perf.cycles", out.cycles);
        out
    }

    /// Runs exactly `instructions` micro-ops; returns the window counters.
    pub fn run_instructions<S: InstrSource>(
        &mut self,
        src: &mut S,
        instructions: u64,
    ) -> ActivityCounters {
        let mut out = ActivityCounters::default();
        self.execute::<S, true>(src, WindowLimit::Instructions(instructions), &mut out);
        hotgauge_telemetry::counter!("perf.instructions", out.instructions);
        hotgauge_telemetry::counter!("perf.cycles", out.cycles);
        out
    }

    /// The dispatch loop. `COUNT = false` (warm-up) elides the activity
    /// stores while performing the identical state updates, so a counted
    /// window after an uncounted warm-up is bit-identical to one after a
    /// counted warm-up.
    fn execute<S: InstrSource, const COUNT: bool>(
        &mut self,
        src: &mut S,
        limit: WindowLimit,
        out: &mut ActivityCounters,
    ) {
        let width = self.cfg.dispatch_width as u64;
        let mut dispatch_slots: u64 = 0;
        let mut penalty_cycles: u64 = 0;

        loop {
            match limit {
                WindowLimit::Cycles(c) => {
                    let cycles_so_far = dispatch_slots.div_ceil(width) + penalty_cycles;
                    if cycles_so_far >= c {
                        break;
                    }
                }
                WindowLimit::Instructions(n) => {
                    if out.instructions >= n {
                        break;
                    }
                }
            }

            let ins = src.next_instr();
            self.icount += 1;
            out.instructions += 1;
            dispatch_slots += 1;
            if COUNT {
                out.decoded_uops += 1;
                out.rob_dispatches += 1;
                out.rob_retires += 1;
            }

            // Front end: one L1I access per fetched line.
            let line = ins.pc >> 6;
            if line != self.last_fetch_line {
                self.last_fetch_line = line;
                let r = self.mem.access_instr(ins.pc);
                if COUNT {
                    out.l1i_accesses += 1;
                }
                match r.level {
                    HitLevel::L1 => {}
                    HitLevel::L2 => {
                        if COUNT {
                            out.l1i_misses += 1;
                            out.l2_accesses += 1;
                        }
                        penalty_cycles += self.mem.config().l2.latency_cycles / 4;
                    }
                    HitLevel::L3 => {
                        if COUNT {
                            out.l1i_misses += 1;
                            out.l2_accesses += 1;
                            out.l2_misses += 1;
                            out.l3_accesses += 1;
                        }
                        penalty_cycles += self.mem.config().l3.latency_cycles / 4;
                    }
                    HitLevel::Memory => {
                        if COUNT {
                            out.l1i_misses += 1;
                            out.l2_accesses += 1;
                            out.l2_misses += 1;
                            out.l3_accesses += 1;
                            out.l3_misses += 1;
                            out.dram_accesses += 1;
                        }
                        penalty_cycles += self.mem.config().dram_latency_cycles / 4;
                    }
                }
            }

            // Dependency-chain serialization emitted by the workload model.
            penalty_cycles += ins.extra_latency as u64;

            match ins.class {
                InstrClass::Branch => {
                    if COUNT {
                        out.bpu_lookups += 1;
                        out.int_rat_writes += 1;
                        out.int_iwin_issues += 1;
                        out.int_rf_reads += 1;
                        out.simple_alu_ops += 1;
                    }
                    let correct = self.bpu.predict_and_update(ins.pc, ins.taken);
                    if !correct {
                        if COUNT {
                            out.bpu_mispredicts += 1;
                        }
                        penalty_cycles += self.cfg.mispredict_penalty;
                    }
                }
                InstrClass::IntSimple => {
                    if COUNT {
                        out.int_rat_writes += 1;
                        out.int_iwin_issues += 1;
                        out.int_rf_reads += 2;
                        out.int_rf_writes += 1;
                        out.simple_alu_ops += 1;
                    }
                }
                InstrClass::IntComplex => {
                    if COUNT {
                        out.int_rat_writes += 1;
                        out.int_iwin_issues += 1;
                        out.int_rf_reads += 2;
                        out.int_rf_writes += 1;
                        out.complex_alu_ops += 1;
                    }
                }
                InstrClass::FpScalar => {
                    if COUNT {
                        out.fp_rat_writes += 1;
                        out.fp_iwin_issues += 1;
                        out.fp_rf_reads += 2;
                        out.fp_rf_writes += 1;
                        out.fpu_ops += 1;
                    }
                }
                InstrClass::Avx512 => {
                    if COUNT {
                        out.fp_rat_writes += 1;
                        out.fp_iwin_issues += 1;
                        out.fp_rf_reads += 2;
                        out.fp_rf_writes += 1;
                        out.avx_ops += 1;
                    }
                }
                InstrClass::Load | InstrClass::Store => {
                    if COUNT {
                        out.int_rat_writes += 1;
                        out.int_iwin_issues += 1;
                        out.agu_ops += 1;
                        out.lsq_ops += 1;
                        out.dtlb_accesses += 1;
                        out.l1d_accesses += 1;
                        if ins.class == InstrClass::Load {
                            out.int_rf_writes += 1;
                        } else {
                            out.int_rf_reads += 1;
                        }
                    }
                    let r = self.mem.access_data(ins.addr);
                    match r.level {
                        HitLevel::L1 => {}
                        HitLevel::L2 => {
                            if COUNT {
                                out.l1d_misses += 1;
                                out.l2_accesses += 1;
                                // L2 hits are almost entirely hidden by the
                                // OoO window.
                            }
                        }
                        HitLevel::L3 => {
                            if COUNT {
                                out.l1d_misses += 1;
                                out.l2_accesses += 1;
                                out.l2_misses += 1;
                                out.l3_accesses += 1;
                            }
                            if ins.class == InstrClass::Load {
                                penalty_cycles +=
                                    self.charge_long_miss(self.mem.config().l3.latency_cycles / 3);
                            }
                        }
                        HitLevel::Memory => {
                            if COUNT {
                                out.l1d_misses += 1;
                                out.l2_accesses += 1;
                                out.l2_misses += 1;
                                out.l3_accesses += 1;
                                out.l3_misses += 1;
                                out.dram_accesses += 1;
                            }
                            if ins.class == InstrClass::Load {
                                penalty_cycles +=
                                    self.charge_long_miss(self.mem.config().dram_latency_cycles);
                            }
                        }
                    }
                }
            }
        }

        out.cycles += dispatch_slots.div_ceil(width) + penalty_cycles;
    }

    /// Memory-level-parallelism model: a long-latency load stalls the window
    /// for its latency unless another long miss occurred within one ROB span
    /// — in that case they overlap and only the bandwidth-limited share of
    /// the latency is charged (finite miss-handling resources cap the MLP).
    fn charge_long_miss(&mut self, latency: u64) -> u64 {
        /// Maximum effective memory-level parallelism (outstanding misses).
        const MAX_MLP: u64 = 8;
        let overlapped = match self.last_long_miss {
            Some(prev) => self.icount - prev < self.cfg.rob_entries as u64,
            None => false,
        };
        self.last_long_miss = Some(self.icount);
        if overlapped {
            latency / MAX_MLP
        } else {
            latency
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum WindowLimit {
    Cycles(u64),
    Instructions(u64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instr;

    /// A source of pure register compute with perfectly predictable control.
    struct ComputeSource {
        pc: u64,
    }
    impl InstrSource for ComputeSource {
        fn next_instr(&mut self) -> Instr {
            self.pc = (self.pc + 4) & 0xFFF; // small loop, fits in L1I
            Instr::compute(InstrClass::IntSimple, self.pc)
        }
    }

    /// A pointer-chasing source with a huge working set (every load a DRAM
    /// miss once the caches are saturated) and sparse placement so lines
    /// never reuse.
    struct StreamSource {
        pc: u64,
        addr: u64,
        i: u64,
    }
    impl InstrSource for StreamSource {
        fn next_instr(&mut self) -> Instr {
            self.i += 1;
            if self.i.is_multiple_of(4) {
                self.addr = self.addr.wrapping_add(64 * 1024); // new line, new set far away
                Instr::load(0x400, self.addr)
            } else {
                self.pc = (self.pc + 4) & 0xFFF;
                Instr::compute(InstrClass::IntSimple, self.pc)
            }
        }
    }

    #[test]
    fn compute_bound_reaches_dispatch_width() {
        let mut core = CoreSim::new(CoreConfig::default(), MemoryConfig::default());
        let mut src = ComputeSource { pc: 0 };
        core.warm_up(&mut src, 10_000); // absorb cold I-cache misses
        let a = core.run_instructions(&mut src, 100_000);
        let ipc = a.ipc();
        assert!(
            ipc > 3.5 && ipc <= 4.0 + 1e-9,
            "compute-bound IPC should be near the dispatch width, got {ipc}"
        );
    }

    #[test]
    fn memory_bound_is_slower() {
        let mut core = CoreSim::new(CoreConfig::default(), MemoryConfig::default());
        let mut src = StreamSource {
            pc: 0,
            addr: 0,
            i: 0,
        };
        let a = core.run_instructions(&mut src, 200_000);
        assert!(
            a.ipc() < 2.5,
            "streaming loads should cut IPC, got {}",
            a.ipc()
        );
        assert!(a.dram_accesses > 0);
        assert!(a.l1d_mpki() > 100.0);
    }

    #[test]
    fn run_cycles_hits_cycle_target() {
        let mut core = CoreSim::new(CoreConfig::default(), MemoryConfig::default());
        let mut src = ComputeSource { pc: 0 };
        let a = core.run_cycles(&mut src, 10_000);
        assert!(a.cycles >= 10_000);
        assert!(
            a.cycles < 10_100,
            "should not badly overshoot: {}",
            a.cycles
        );
    }

    #[test]
    fn mispredicts_add_penalty() {
        struct RandomBranches {
            x: u64,
            pc: u64,
        }
        impl InstrSource for RandomBranches {
            fn next_instr(&mut self) -> Instr {
                self.x = self
                    .x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                self.pc = (self.pc + 4) & 0xFFF;
                if self.x >> 62 == 0 {
                    Instr::branch(self.pc, (self.x >> 33) & 1 == 1)
                } else {
                    Instr::compute(InstrClass::IntSimple, self.pc)
                }
            }
        }
        let mut core = CoreSim::new(CoreConfig::default(), MemoryConfig::default());
        let mut src = RandomBranches { x: 42, pc: 0 };
        let a = core.run_instructions(&mut src, 100_000);
        assert!(a.bpu_mispredicts > 0);
        assert!(
            a.ipc() < 3.0,
            "random branches must hurt IPC, got {}",
            a.ipc()
        );
    }

    #[test]
    fn activity_counters_are_consistent() {
        let mut core = CoreSim::new(CoreConfig::default(), MemoryConfig::default());
        let mut src = StreamSource {
            pc: 0,
            addr: 0,
            i: 0,
        };
        let a = core.run_instructions(&mut src, 50_000);
        assert_eq!(a.rob_dispatches, a.instructions);
        assert_eq!(a.rob_retires, a.instructions);
        assert_eq!(a.decoded_uops, a.instructions);
        assert_eq!(a.l1d_accesses, a.lsq_ops);
        assert_eq!(a.agu_ops, a.lsq_ops);
        assert!(a.l1d_misses <= a.l1d_accesses);
        assert!(a.l2_misses <= a.l2_accesses);
        assert!(a.l3_misses <= a.l3_accesses);
        // Every uop renames exactly once.
        assert_eq!(a.int_rat_writes + a.fp_rat_writes, a.instructions);
    }

    #[test]
    fn warm_up_trains_structures() {
        let mut core = CoreSim::new(CoreConfig::default(), MemoryConfig::default());
        // Loads over a 16 KiB set (fits in L1D).
        struct SmallSet {
            i: u64,
        }
        impl InstrSource for SmallSet {
            fn next_instr(&mut self) -> Instr {
                self.i += 1;
                Instr::load(0x400, (self.i * 64) % 16384)
            }
        }
        core.warm_up(&mut SmallSet { i: 0 }, 10_000);
        let a = core.run_instructions(&mut SmallSet { i: 0 }, 10_000);
        assert!(
            a.l1d_mpki() < 1.0,
            "after warm-up the small set must hit, mpki {}",
            a.l1d_mpki()
        );
    }

    #[test]
    fn identical_streams_give_identical_windows() {
        let mk_core = || CoreSim::new(CoreConfig::default(), MemoryConfig::default());
        let mut a = mk_core();
        let mut b = mk_core();
        let a_w = a.run_instructions(&mut ComputeSource { pc: 0 }, 30_000);
        let b_w = b.run_instructions(&mut ComputeSource { pc: 0 }, 30_000);
        assert_eq!(a_w, b_w);
        assert_eq!(a.instruction_count(), b.instruction_count());
    }

    #[test]
    fn mlp_overlap_reduces_stalls() {
        // Two cores, same stream; one with a tiny ROB (no overlap window).
        let mut big = CoreSim::new(CoreConfig::default(), MemoryConfig::default());
        let small_cfg = CoreConfig {
            rob_entries: 2,
            ..CoreConfig::default()
        };
        let mut small = CoreSim::new(small_cfg, MemoryConfig::default());
        let mk = || StreamSource {
            pc: 0,
            addr: 0,
            i: 0,
        };
        let a_big = big.run_instructions(&mut mk(), 100_000);
        let a_small = small.run_instructions(&mut mk(), 100_000);
        assert!(
            a_big.ipc() > a_small.ipc() * 1.5,
            "large ROB should overlap misses: {} vs {}",
            a_big.ipc(),
            a_small.ipc()
        );
    }
}
