//! Per-window activity statistics — the interface between the performance
//! and power models (the analog of Sniper's stats post-processed into McPAT
//! input).

use serde::{Deserialize, Serialize};

/// Event counts accumulated over one simulation window (one thermal time
/// step, nominally 1 M cycles).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ActivityCounters {
    /// Cycles the window took.
    pub cycles: u64,
    /// Micro-ops retired.
    pub instructions: u64,

    // ---- Front end ----
    /// L1I fetch-group accesses.
    pub l1i_accesses: u64,
    /// L1I misses.
    pub l1i_misses: u64,
    /// Branch-predictor lookups (== dynamic branches).
    pub bpu_lookups: u64,
    /// Branch mispredictions.
    pub bpu_mispredicts: u64,
    /// Micro-ops decoded.
    pub decoded_uops: u64,

    // ---- Rename / retire ----
    /// Integer RAT write ports exercised (int uops renamed).
    pub int_rat_writes: u64,
    /// FP RAT writes (fp uops renamed).
    pub fp_rat_writes: u64,
    /// ROB dispatches (== uops).
    pub rob_dispatches: u64,
    /// ROB retirements.
    pub rob_retires: u64,

    // ---- Issue / execute ----
    /// Integer scheduler issues.
    pub int_iwin_issues: u64,
    /// FP scheduler issues.
    pub fp_iwin_issues: u64,
    /// Integer register-file reads.
    pub int_rf_reads: u64,
    /// Integer register-file writes.
    pub int_rf_writes: u64,
    /// FP register-file reads.
    pub fp_rf_reads: u64,
    /// FP register-file writes.
    pub fp_rf_writes: u64,
    /// Simple-ALU operations.
    pub simple_alu_ops: u64,
    /// Complex-ALU operations (imul/idiv/...).
    pub complex_alu_ops: u64,
    /// Address-generation operations.
    pub agu_ops: u64,
    /// Scalar FP operations.
    pub fpu_ops: u64,
    /// AVX-512 operations.
    pub avx_ops: u64,

    // ---- Memory ----
    /// L1D accesses (loads + stores).
    pub l1d_accesses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// Load/store-queue occupancies (ops enqueued).
    pub lsq_ops: u64,
    /// Data-TLB lookups.
    pub dtlb_accesses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 accesses.
    pub l3_accesses: u64,
    /// L3 misses.
    pub l3_misses: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
}

impl ActivityCounters {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate.
    pub fn mispredict_rate(&self) -> f64 {
        if self.bpu_lookups == 0 {
            0.0
        } else {
            self.bpu_mispredicts as f64 / self.bpu_lookups as f64
        }
    }

    /// L1D misses per kilo-instruction.
    pub fn l1d_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            1000.0 * self.l1d_misses as f64 / self.instructions as f64
        }
    }

    /// Adds another window's counts onto this one.
    pub fn add(&mut self, other: &ActivityCounters) {
        macro_rules! acc {
            ($($f:ident),* $(,)?) => { $( self.$f += other.$f; )* };
        }
        acc!(
            cycles,
            instructions,
            l1i_accesses,
            l1i_misses,
            bpu_lookups,
            bpu_mispredicts,
            decoded_uops,
            int_rat_writes,
            fp_rat_writes,
            rob_dispatches,
            rob_retires,
            int_iwin_issues,
            fp_iwin_issues,
            int_rf_reads,
            int_rf_writes,
            fp_rf_reads,
            fp_rf_writes,
            simple_alu_ops,
            complex_alu_ops,
            agu_ops,
            fpu_ops,
            avx_ops,
            l1d_accesses,
            l1d_misses,
            lsq_ops,
            dtlb_accesses,
            l2_accesses,
            l2_misses,
            l3_accesses,
            l3_misses,
            dram_accesses,
        );
    }

    /// Wall-clock duration of the window at `frequency_ghz`.
    pub fn seconds(&self, frequency_ghz: f64) -> f64 {
        self.cycles as f64 / (frequency_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_rates() {
        let a = ActivityCounters {
            cycles: 1000,
            instructions: 2000,
            bpu_lookups: 100,
            bpu_mispredicts: 5,
            l1d_misses: 4,
            ..Default::default()
        };
        assert!((a.ipc() - 2.0).abs() < 1e-12);
        assert!((a.mispredict_rate() - 0.05).abs() < 1e-12);
        assert!((a.l1d_mpki() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_window_is_safe() {
        let a = ActivityCounters::default();
        assert_eq!(a.ipc(), 0.0);
        assert_eq!(a.mispredict_rate(), 0.0);
        assert_eq!(a.l1d_mpki(), 0.0);
    }

    #[test]
    fn add_accumulates_all_fields() {
        let mut a = ActivityCounters {
            cycles: 1,
            instructions: 2,
            avx_ops: 3,
            dram_accesses: 4,
            ..Default::default()
        };
        let b = a;
        a.add(&b);
        assert_eq!(a.cycles, 2);
        assert_eq!(a.instructions, 4);
        assert_eq!(a.avx_ops, 6);
        assert_eq!(a.dram_accesses, 8);
    }

    #[test]
    fn seconds_at_5ghz() {
        let a = ActivityCounters {
            cycles: 1_000_000,
            ..Default::default()
        };
        assert!((a.seconds(5.0) - 200e-6).abs() < 1e-15);
    }
}
