//! Set-associative cache model with true LRU replacement, and the three-level
//! hierarchy of Table I.

use crate::config::{CacheConfig, MemoryConfig};

/// Which level of the hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Served by the L1.
    L1,
    /// Served by the private L2.
    L2,
    /// Served by the shared L3.
    L3,
    /// Served by DRAM.
    Memory,
}

/// A single set-associative cache with true-LRU replacement.
///
/// The model state is deliberately compact: `u32` tags and `u32` LRU stamps
/// instead of `u64`s. A 16 MiB L3 model holds 262 144 lines, and its
/// tag/stamp arrays are probed at random set indices on the simulated miss
/// path — at 8 B + 8 B per way that state was 4 MiB per hierarchy and
/// thrashed the *host's* caches, which dominated the simulation cost of
/// memory-bound workloads. At 4 B + 4 B the same exact-LRU model is half the
/// size and a 16-way tag scan touches one host cache line instead of two.
/// The access clock renormalizes stamps (order-preserving, per set) before
/// it can saturate `u32`, so replacement decisions are bit-identical to the
/// wide representation at any access count.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: usize,
    line_shift: u32,
    /// Tag per (set, way); `u32::MAX` = invalid.
    tags: Vec<u32>,
    /// LRU stamp per (set, way) — larger = more recent.
    stamps: Vec<u32>,
    clock: u32,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(cfg.line_bytes.is_power_of_two());
        Self {
            cfg,
            sets,
            line_shift: cfg.line_bytes.trailing_zeros(),
            tags: vec![u32::MAX; sets * cfg.ways],
            stamps: vec![0; sets * cfg.ways],
            clock: 0,
            accesses: 0,
            misses: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Starts the host-memory load of `addr`'s tag line before the model
    /// needs it.
    ///
    /// The three-level lookup serializes one dependent tag-array probe per
    /// level on the simulated miss path, and for memory-bound workloads
    /// those probes are host-LLC misses that dominate simulation time.
    /// Hinting the L2/L3 tag lines before the L1 scan overlaps the three
    /// latencies. A prefetch has no architectural effect, so hit/miss
    /// results are unchanged; off x86-64 this compiles to nothing.
    #[inline]
    fn prefetch_set(&self, addr: u64) {
        #[cfg(target_arch = "x86_64")]
        {
            let line = addr >> self.line_shift;
            let base = ((line as usize) & (self.sets - 1)) * self.cfg.ways;
            // SAFETY: the set mask keeps `base` inside `tags`, and a
            // prefetch hint reads no memory and raises no faults.
            #[allow(unsafe_code)]
            unsafe {
                core::arch::x86_64::_mm_prefetch(
                    self.tags.as_ptr().add(base) as *const i8,
                    core::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
    }

    /// Accesses `addr`; returns `true` on hit. On miss the line is filled
    /// (allocate-on-miss for both reads and writes).
    pub fn access(&mut self, addr: u64) -> bool {
        if self.clock == u32::MAX {
            self.renormalize();
        }
        self.clock += 1;
        self.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let tag64 = line >> self.sets.trailing_zeros();
        // Generated address spaces top out near 2^32, far below the ~2^44
        // where a tag would no longer fit its compact representation.
        assert!(tag64 < u64::from(u32::MAX), "address beyond model range");
        let tag = tag64 as u32;
        let ways = self.cfg.ways;
        let base = set * ways;

        // One bounds check per scan: the way loops run on every simulated
        // access, so they work on set-sized slices instead of indexing the
        // full arrays way by way.
        let tags = &mut self.tags[base..base + ways];
        if let Some(w) = tags.iter().position(|&t| t == tag) {
            self.stamps[base + w] = self.clock;
            return true;
        }
        self.misses += 1;
        // Fill the LRU way (an invalid way first, else the oldest stamp).
        let stamps = &mut self.stamps[base..base + ways];
        let mut victim = 0;
        let mut oldest = u32::MAX;
        for (w, (&t, &s)) in tags.iter().zip(stamps.iter()).enumerate() {
            if t == u32::MAX {
                victim = w;
                break;
            }
            if s < oldest {
                oldest = s;
                victim = w;
            }
        }
        tags[victim] = tag;
        stamps[victim] = self.clock;
        false
    }

    /// Compresses every set's stamps to their ranks `0..ways` and restarts
    /// the clock above them. Recency order within each set is untouched, so
    /// replacement behavior is identical before and after — this only
    /// prevents the compact clock from saturating. At one tick per access it
    /// runs every ~4.3 billion accesses to this cache, i.e. effectively
    /// never inside a single co-simulation.
    #[cold]
    fn renormalize(&mut self) {
        let ways = self.cfg.ways;
        let mut order: Vec<usize> = Vec::with_capacity(ways);
        for set in 0..self.sets {
            let base = set * ways;
            let stamps = &mut self.stamps[base..base + ways];
            order.clear();
            order.extend(0..ways);
            // Stable sort: ties exist only among never-touched invalid ways,
            // whose relative order the victim scan ignores.
            order.sort_by_key(|&w| stamps[w]);
            for (rank, &w) in order.iter().enumerate() {
                stamps[w] = rank as u32;
            }
        }
        self.clock = ways as u32;
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime miss rate.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Resets statistics (not contents).
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }

    /// Invalidates all lines and resets statistics.
    pub fn flush(&mut self) {
        self.tags.fill(u32::MAX);
        self.stamps.fill(0);
        self.reset_stats();
    }
}

/// The private two-level + shared L3 hierarchy of one core's data path.
///
/// The shared L3 is modeled per-core with capacity partitioning when
/// multiple cores are active (a standard approximation for single-socket
/// client workload studies; the paper's runs are single-threaded).
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Private unified L2.
    pub l2: Cache,
    /// Shared L3 (this core's view).
    pub l3: Cache,
    cfg: MemoryConfig,
}

/// Result of a data access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// The level that served the access.
    pub level: HitLevel,
    /// Latency in core cycles.
    pub latency: u64,
}

impl MemoryHierarchy {
    /// An empty hierarchy.
    pub fn new(cfg: MemoryConfig) -> Self {
        Self {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            cfg,
        }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &MemoryConfig {
        &self.cfg
    }

    /// A data-side access (load or store) to `addr`.
    pub fn access_data(&mut self, addr: u64) -> AccessResult {
        self.l2.prefetch_set(addr);
        self.l3.prefetch_set(addr);
        if self.l1d.access(addr) {
            return AccessResult {
                level: HitLevel::L1,
                latency: self.cfg.l1d.latency_cycles,
            };
        }
        if self.l2.access(addr) {
            return AccessResult {
                level: HitLevel::L2,
                latency: self.cfg.l2.latency_cycles,
            };
        }
        if self.l3.access(addr) {
            return AccessResult {
                level: HitLevel::L3,
                latency: self.cfg.l3.latency_cycles,
            };
        }
        AccessResult {
            level: HitLevel::Memory,
            latency: self.cfg.dram_latency_cycles,
        }
    }

    /// An instruction-side access to `pc`. Instruction misses refill through
    /// the unified L2/L3 like data misses.
    pub fn access_instr(&mut self, pc: u64) -> AccessResult {
        if self.l1i.access(pc) {
            return AccessResult {
                level: HitLevel::L1,
                latency: self.cfg.l1i.latency_cycles,
            };
        }
        if self.l2.access(pc) {
            return AccessResult {
                level: HitLevel::L2,
                latency: self.cfg.l2.latency_cycles,
            };
        }
        if self.l3.access(pc) {
            return AccessResult {
                level: HitLevel::L3,
                latency: self.cfg.l3.latency_cycles,
            };
        }
        AccessResult {
            level: HitLevel::Memory,
            latency: self.cfg.dram_latency_cycles,
        }
    }

    /// Flushes every level (cold caches; the paper always warms before ROI).
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
        self.l3.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        Cache::new(CacheConfig {
            capacity_bytes: 1024, // 4 sets x 4 ways x 64 B
            ways: 4,
            line_bytes: 64,
            latency_cycles: 1,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x103F)); // same line
        assert!(!c.access(0x1040)); // next line
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // 4 ways in set 0: lines 0, 4, 8, 12 (stride = sets * line).
        let stride = 4 * 64;
        for i in 0..4u64 {
            assert!(!c.access(i * stride));
        }
        // Touch line 0 to make it MRU; then insert a 5th line -> evicts line 1.
        assert!(c.access(0));
        assert!(!c.access(4 * stride));
        assert!(c.access(0), "MRU line must survive");
        assert!(!c.access(stride), "LRU line must have been evicted");
    }

    #[test]
    fn working_set_within_capacity_has_no_steady_misses() {
        let mut c = tiny();
        // 16 lines = exact capacity.
        for round in 0..4 {
            for i in 0..16u64 {
                let hit = c.access(i * 64);
                if round > 0 {
                    assert!(hit, "round {round}, line {i}");
                }
            }
        }
        assert_eq!(c.misses(), 16);
    }

    #[test]
    fn streaming_misses_every_line() {
        let mut c = tiny();
        for i in 0..1000u64 {
            assert!(!c.access(i * 64 * 8)); // far-apart lines
        }
        assert!((c.miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hierarchy_latencies_ascend() {
        let mut h = MemoryHierarchy::new(MemoryConfig::default());
        let a = h.access_data(0x123456);
        assert_eq!(a.level, HitLevel::Memory);
        let b = h.access_data(0x123456);
        assert_eq!(b.level, HitLevel::L1);
        assert!(a.latency > b.latency);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut h = MemoryHierarchy::new(MemoryConfig::default());
        let sets = h.l1d.config().sets() as u64;
        let line = h.l1d.config().line_bytes as u64;
        // Fill set 0 of L1 with 9 conflicting lines (8 ways) — first one
        // falls out of L1 but stays in the larger L2.
        for i in 0..9u64 {
            h.access_data(i * sets * line);
        }
        let r = h.access_data(0);
        assert_eq!(r.level, HitLevel::L2);
    }

    #[test]
    fn flush_empties() {
        let mut h = MemoryHierarchy::new(MemoryConfig::default());
        h.access_data(0x40);
        h.flush();
        let r = h.access_data(0x40);
        assert_eq!(r.level, HitLevel::Memory);
        assert_eq!(h.l1d.accesses(), 1);
    }
}
