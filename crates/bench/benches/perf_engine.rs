//! Interval-core throughput: simulated instructions per second for several
//! workload characters, plus cache and branch-predictor microbenchmarks.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use hotgauge_perf::branch::TournamentPredictor;
use hotgauge_perf::cache::Cache;
use hotgauge_perf::config::{CacheConfig, CoreConfig, MemoryConfig};
use hotgauge_perf::engine::CoreSim;
use hotgauge_workloads::generator::WorkloadGen;
use hotgauge_workloads::spec2006;

fn bench_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("interval_core");
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));
    for bench in ["hmmer", "gcc", "mcf"] {
        let profile = spec2006::profile(bench).unwrap();
        let mut gen = WorkloadGen::new(profile, 7);
        let mut core = CoreSim::new(CoreConfig::default(), MemoryConfig::default());
        core.warm_up(&mut gen, 1_000_000);
        group.bench_function(bench, |b| {
            b.iter(|| core.run_instructions(black_box(&mut gen), N))
        });
    }
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));
    group.bench_function("l1_hit_stream", |b| {
        let mut cache = Cache::new(CacheConfig::l1_default());
        b.iter(|| {
            for i in 0..N {
                cache.access(black_box((i % 256) * 64));
            }
        })
    });
    group.bench_function("l1_miss_stream", |b| {
        let mut cache = Cache::new(CacheConfig::l1_default());
        let mut a = 0u64;
        b.iter(|| {
            for _ in 0..N {
                a = a.wrapping_add(64 * 513);
                cache.access(black_box(a));
            }
        })
    });
    group.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_predictor");
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));
    group.bench_function("tournament", |b| {
        let mut p = TournamentPredictor::new(13, 13, 12);
        let mut x = 1u64;
        b.iter(|| {
            for i in 0..N {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                p.predict_and_update(black_box(0x400 + (i % 512) * 4), x & 3 != 0);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_core, bench_cache, bench_predictor);
criterion_main!(benches);
