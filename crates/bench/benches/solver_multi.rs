//! Lockstep multi-RHS solver cost: K identical transient steps through
//! `step_lockstep` against the K=1 solo path, for both solver arms at
//! several grid resolutions of the 7 nm client die. The per-run
//! amortization is `K·T(1) / T(K)` — the multi-RHS SpMV and triangular
//! sweeps stream each matrix row's nonzeros once for all K lanes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use hotgauge_floorplan::prelude::*;
use hotgauge_thermal::chol::CholOptions;
use hotgauge_thermal::model::{
    step_lockstep, LockstepScratch, SolverStrategy, ThermalModel, ThermalSim,
};
use hotgauge_thermal::stack::StackDescription;

fn setup(cell_um: f64) -> (ThermalModel, Vec<f64>) {
    let fp = SkylakeProxy::new(TechNode::N7).build();
    let grid = FloorplanGrid::rasterize(&fp, cell_um);
    let stack = StackDescription::client_cpu_with_border(grid.nx, grid.ny, cell_um, 2e-3);
    let model = ThermalModel::new(stack);
    let cells = grid.cell_count();
    let mut power = vec![15.0 / cells as f64; cells];
    for p in power.iter_mut().take(cells / 10) {
        *p = 50.0 / cells as f64;
    }
    (model, power)
}

fn bench_arm(c: &mut Criterion, strategy: SolverStrategy, cells: &[f64]) {
    let mut group = c.benchmark_group("solver_multi");
    group.sample_size(10);
    for &cell in cells {
        let (model, power) = setup(cell);
        let nodes = model.node_count();
        let mut proto = ThermalSim::new(model, 40.0);
        proto.cg.tolerance = 1e-6;
        // Unbounded profile budget so the direct arm really factors at
        // these sizes instead of falling back to CG.
        proto.chol = CholOptions::unbounded();
        proto.set_strategy(strategy);
        // Prime: factor (direct) / build the cached system (cg), and
        // establish a warm start shared by every clone.
        proto.step(&power, 200e-6);
        assert_eq!(proto.active_solver(), Some(strategy));
        for k in [1usize, 4, 8] {
            // Clones share the prepared system matrix through its Arc —
            // the same sharing the sweep executor's batches rely on.
            let mut sims: Vec<ThermalSim> = (0..k).map(|_| proto.clone()).collect();
            let mut scratch = LockstepScratch::new();
            group.bench_with_input(
                BenchmarkId::new(format!("{}_k{k}", strategy.as_str()), nodes),
                &power,
                |b, p| {
                    b.iter(|| {
                        let mut lanes: Vec<&mut ThermalSim> = sims.iter_mut().collect();
                        let powers: Vec<&[f64]> = (0..k).map(|_| p.as_slice()).collect();
                        step_lockstep(&mut lanes, black_box(&powers), 200e-6, &mut scratch).len()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_lockstep_cg(c: &mut Criterion) {
    bench_arm(c, SolverStrategy::Cg, &[400.0, 250.0, 150.0]);
}

fn bench_lockstep_direct(c: &mut Criterion) {
    // The factorization cost profile makes direct a small-grid strategy;
    // 150 µm direct solves are not a configuration the sweeps ever run.
    bench_arm(c, SolverStrategy::DirectCholesky, &[400.0, 250.0]);
}

criterion_group!(benches, bench_lockstep_cg, bench_lockstep_direct);
criterion_main!(benches);
