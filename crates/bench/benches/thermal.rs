//! Thermal-solver cost: steady-state CG solves and warm-started transient
//! steps at several grid resolutions of the 7 nm client die, plus a
//! direct-Cholesky vs CG comparison that exposes the strategy crossover
//! (the factorization is excluded — it is paid once per run).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use hotgauge_floorplan::prelude::*;
use hotgauge_thermal::chol::CholOptions;
use hotgauge_thermal::model::{SolverStrategy, ThermalModel, ThermalSim};
use hotgauge_thermal::solver::CgConfig;
use hotgauge_thermal::stack::StackDescription;

fn setup(cell_um: f64) -> (ThermalModel, Vec<f64>) {
    let fp = SkylakeProxy::new(TechNode::N7).build();
    let grid = FloorplanGrid::rasterize(&fp, cell_um);
    let stack = StackDescription::client_cpu_with_border(grid.nx, grid.ny, cell_um, 2e-3);
    let model = ThermalModel::new(stack);
    // A plausible power map: 20 W spread over the die with a hot column.
    let cells = grid.cell_count();
    let mut power = vec![15.0 / cells as f64; cells];
    for p in power.iter_mut().take(cells / 10) {
        *p = 50.0 / cells as f64;
    }
    (model, power)
}

fn bench_steady(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_steady");
    group.sample_size(10);
    for cell in [400.0, 250.0, 150.0] {
        let (model, power) = setup(cell);
        group.bench_with_input(
            BenchmarkId::new("nodes", model.node_count()),
            &(model, power),
            |b, (m, p)| {
                b.iter(|| {
                    m.steady_state(
                        black_box(p),
                        &CgConfig {
                            tolerance: 1e-8,
                            max_iterations: 50_000,
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_transient_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_transient_step");
    for cell in [400.0, 250.0, 150.0] {
        let (model, power) = setup(cell);
        let nodes = model.node_count();
        let mut sim = ThermalSim::new(model, 40.0);
        sim.cg.tolerance = 1e-6;
        // Prime the cached system matrix and warm start.
        sim.step(&power, 200e-6);
        group.bench_with_input(BenchmarkId::new("nodes", nodes), &power, |b, p| {
            b.iter(|| sim.step(black_box(p), 200e-6))
        });
    }
    group.finish();
}

fn bench_solver_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_solver");
    group.sample_size(10);
    for cell in [400.0, 250.0] {
        for strategy in [SolverStrategy::DirectCholesky, SolverStrategy::Cg] {
            let (model, power) = setup(cell);
            let nodes = model.node_count();
            let mut sim = ThermalSim::new(model, 40.0);
            sim.cg.tolerance = 1e-6;
            // Lift the profile budget so the direct path really factors at
            // these sizes instead of falling back (the default budget would
            // reject them — that crossover is exactly what this group shows).
            sim.chol = CholOptions::unbounded();
            sim.set_strategy(strategy);
            // Prime: factor (direct) / build the cached system (cg).
            sim.step(&power, 200e-6);
            assert_eq!(sim.active_solver(), Some(strategy));
            group.bench_with_input(
                BenchmarkId::new(strategy.as_str(), nodes),
                &power,
                |b, p| b.iter(|| sim.step(black_box(p), 200e-6)),
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_steady,
    bench_transient_step,
    bench_solver_strategies
);
criterion_main!(benches);
